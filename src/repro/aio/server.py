"""The async server: the WorkerPool's ladder as a coroutine, with admission.

Dataflow of one request::

    submit ──► [coalesce onto identical in-flight request?]
           ──► admission control
                 ├─ in-flight budget free ──────────────► dispatch
                 ├─ budget full, queue room ── WFQ park ─► dispatch
                 └─ budget full, queue full ──► typed rejection
                                                (AdmissionRejectedError,
                                                 outcome="rejected")
    dispatch ──► cache lookup ── hit ──► response
             └─ miss: circuit breaker allow?
                   │  per-attempt deadline (handler seam)
                   │  bounded retries (reseeded, async backoff)
                   │  exhausted → forced direct answer
                   │  even that failed → classified error
                   ▼
                cache store ──► response

The retry/breaker/degradation ladder is a line-for-line mirror of
:meth:`repro.serving.pool.WorkerPool._answer_inner` — same attempt
seeds, same breaker protocol, same optional reflexion rung (the shared
:class:`~repro.serving.policy.ReflectionRung`, run thread-side), same
degraded rung (no deadline, request seed), same
:func:`~repro.serving.policy.classify_failure` taxonomy —
so the two paths return bit-identical responses for the same requests
(``tests/aio/test_parity.py``).  What changes is the execution substrate:

* a request is a *coroutine*, not a thread — the in-flight budget
  (``max_inflight``) can be hundreds without hundreds of stacks;
* chain runners (greedy and s-vote) are driven through a per-attempt
  :class:`~repro.aio.batcher.ContinuousBatcher` (voted chains coalesce
  their ticks, the ``REPRO_BATCH_SCHEDULER`` contract); blocking
  tree/execution voters run in worker threads via ``asyncio.to_thread``;
* admission order under backlog is per-tenant weighted fair queueing
  (:class:`~repro.aio.fairness.WeightedFairQueue`), not FIFO: one chatty
  tenant cannot starve the rest;
* overload is *shed*, not buffered without bound: a full queue raises
  :class:`~repro.errors.AdmissionRejectedError` immediately (retryable —
  the client's signal to back off), and :meth:`answer` folds it into an
  ``outcome="rejected"`` response.

Deadlines ride the :class:`~repro.aio.handler.AsyncEffectHandler` seam
(checked at every model boundary), so they bind to *every* chain runner —
no ``runner.model`` monkey-patching; the thread-dispatched voters keep
the pool's :class:`~repro.serving.policy.DeadlineModel` wrap with the
same loud ``deadline_unattached`` metric when a runner can't carry one.

Telemetry: each request's span tree (``request`` → ``attempt`` →
``agent_run``/``vote_run`` → ``model_call``) lives in its own asyncio
task context, so trees stay correctly nested while hundreds of requests
interleave on one loop.
"""

from __future__ import annotations

import asyncio
import time

from repro.aio.batcher import ContinuousBatcher
from repro.aio.driver import drive_chain
from repro.aio.fairness import WeightedFairQueue
from repro.aio.handler import AsyncEffectHandler
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    ExecutionError,
    QueueClosedError,
    ServingError,
    ServingTimeoutError,
    is_retryable,
)
from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.serving.cache import AnswerCache, CachedAnswer, request_fingerprint
from repro.serving.metrics import ServingMetrics
from repro.serving.policy import (
    DeadlineModel,
    ReflectionRung,
    ReflectPolicy,
    RetryPolicy,
    classify_failure,
)
from repro.serving.request import TQARequest, TQAResponse
from repro.table.frame import DataFrame
from repro.telemetry.spans import Telemetry, activate, span

__all__ = ["AsyncServer"]


class AsyncServer:
    """Serve TQA requests as coroutines behind admission control.

    ``spec`` is an :class:`~repro.serving.spec.AgentSpec`-shaped object.
    ``max_inflight`` bounds concurrently *running* requests;
    ``max_queued`` bounds requests parked in the fair queue behind them
    (``None`` = unbounded queue, never reject).  ``tenant_weights`` maps
    :attr:`TQARequest.tenant` names to WFQ weights.  ``on_complete`` is
    an optional observer called as ``on_complete(chain, request,
    response)`` once per settled primary request (rejections included,
    coalesced replicas excluded) — the seam the observability daemon
    uses to drive SLO accounting and tail sampling with the request's
    chain/trace id in hand.  The remaining collaborators (cache,
    policy, metrics, tracer, breakers, telemetry) have
    :class:`~repro.serving.pool.WorkerPool` semantics.

    Use as an async context manager, or call :meth:`close` when done.
    """

    def __init__(self, spec, *, max_inflight: int = 64,
                 max_queued: int | None = 256,
                 cache: AnswerCache | None = None,
                 policy: RetryPolicy | None = None,
                 metrics: ServingMetrics | None = None,
                 tracer=None,
                 breakers: BreakerConfig | None = None,
                 telemetry: Telemetry | None = None,
                 tenant_weights: dict[str, float] | None = None,
                 reflect: ReflectPolicy | bool | None = None,
                 on_complete=None,
                 sleep=asyncio.sleep):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queued is not None and max_queued < 0:
            raise ValueError("max_queued must be >= 0 (or None)")
        self.spec = spec
        self.max_inflight = max_inflight
        self.max_queued = max_queued
        self.cache = cache
        self.policy = policy or RetryPolicy()
        self.metrics = metrics or ServingMetrics()
        self.tracer = tracer
        if telemetry is None and tracer is not None:
            telemetry = getattr(tracer, "telemetry", None)
        self.telemetry = telemetry
        self.queue = WeightedFairQueue(weights=tenant_weights)
        # The reflexion rung, shared-policy with the pool (``None``
        # defers to ``REPRO_REFLECT=1``).
        if reflect is None:
            reflect = ReflectPolicy.from_env()
        elif reflect is True:
            reflect = ReflectPolicy()
        elif reflect is False:
            reflect = None
        self.reflect_policy = reflect
        self._reflect_rung: ReflectionRung | None = None
        if reflect is not None:
            self._reflect_rung = ReflectionRung(
                spec, self.policy, reflect, metrics=self.metrics)
        self.on_complete = on_complete
        self._sleep = sleep
        self._active = 0
        self._inflight: dict[str, asyncio.Future] = {}
        self._request_counter = 0
        self._closed = False
        self._breaker: CircuitBreaker | None = None
        if breakers is not None:
            backend = getattr(spec, "profile", None) or "default"
            self._breaker = CircuitBreaker(
                backend, config=breakers,
                on_transition=self._on_breaker_transition)

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The spec backend's circuit breaker (``None`` when disabled)."""
        return self._breaker

    @property
    def active(self) -> int:
        """Requests currently running (admitted, not finished)."""
        return self._active

    # --- lifecycle ----------------------------------------------------------

    async def __aenter__(self) -> "AsyncServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Refuse new submissions and fail every parked waiter."""
        self._closed = True
        while self.queue:
            gate = self.queue.pop()
            if not gate.done():
                gate.set_exception(QueueClosedError("server is closed"))
        # Let the woken waiters run their cleanup before we return.
        await asyncio.sleep(0)

    # --- submission ---------------------------------------------------------

    async def submit(self, table: DataFrame, question: str, *,
                     seed: int = 0, uid: str = "",
                     tenant: str = "default") -> TQAResponse:
        """Answer one question; raises on admission rejection."""
        return await self.submit_request(TQARequest(
            table=table, question=question, seed=seed, uid=uid,
            tenant=tenant))

    async def answer(self, request: TQARequest) -> TQAResponse:
        """:meth:`submit_request`, with rejection folded into the response.

        The evaluation surface: every request yields a classified
        :class:`TQAResponse` (``outcome="rejected"`` for shed ones), so
        batch callers see the full outcome distribution instead of
        exceptions.
        """
        try:
            return await self.submit_request(request)
        except AdmissionRejectedError as exc:
            return exc.response

    async def submit_request(self, request: TQARequest) -> TQAResponse:
        """Admit, run and answer ``request``.

        Raises :class:`AdmissionRejectedError` (carrying a ``.response``
        with ``outcome="rejected"``) when both the in-flight budget and
        the fair queue are full — the typed backpressure signal.
        """
        if self._closed:
            raise ServingError("server is closed")
        self._request_counter += 1
        chain = self._request_counter
        uid = request.uid or f"req-{chain}"
        key = None
        if self.cache is not None:
            key = request_fingerprint(request, config=self.spec.config_key)
            # Coalesce onto an identical in-flight computation.  shield():
            # one cancelled duplicate must not cancel the shared primary.
            primary = self._inflight.get(key)
            if primary is not None:
                self.metrics.record_coalesced()
                self._trace(chain, "coalesce", uid=uid)
                response = await asyncio.shield(primary)
                return response.replica(uid, coalesced=True)
            self._inflight[key] = asyncio.get_running_loop().create_future()
        self._trace(chain, "enqueue", uid=uid, question=request.question)
        # Admission: run now, park fairly, or shed.  All bookkeeping up
        # to an ``await`` is atomic (single event loop, no locks).
        if self._active >= self.max_inflight:
            if (self.max_queued is not None
                    and len(self.queue) >= self.max_queued):
                self.metrics.record_submit(len(self.queue))
                raise self._reject(chain, uid, key, request)
            gate = asyncio.get_running_loop().create_future()
            self.queue.push(request.tenant, gate)
            self.metrics.record_submit(len(self.queue))
            try:
                # Resolved by _pump() once a slot frees (the slot is
                # charged to us before the wake-up).
                await gate
            except BaseException:
                if (gate.done() and not gate.cancelled()
                        and gate.exception() is None):
                    self._release_slot()
                self._drop_inflight(key)
                raise
            self._trace(chain, "admit", uid=uid, tenant=request.tenant,
                        queue_depth=len(self.queue))
        else:
            self._active += 1
            self.metrics.record_submit(len(self.queue))
        self._trace(chain, "dispatch", uid=uid, queue_depth=len(self.queue))
        response: TQAResponse | None = None
        try:
            try:
                response = await self._answer(chain, uid, key, request)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # last-resort: always classify
                response = TQAResponse(
                    uid=uid, answer=[],
                    error=f"{type(exc).__name__}: {exc}",
                    outcome=classify_failure(exc))
        finally:
            if key is not None:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    if response is not None:
                        future.set_result(response)
                    else:
                        future.cancel()
            self._release_slot()
        self.metrics.record_response(response)
        self._trace(chain, "complete", uid=uid,
                    answer=response.answer_text,
                    cached=response.cached,
                    degraded=response.degraded,
                    outcome=response.outcome,
                    latency=round(response.latency, 6))
        self._notify_complete(chain, request, response)
        return response

    # --- admission internals ------------------------------------------------

    def _reject(self, chain: int, uid: str, key: str | None,
                request: TQARequest) -> AdmissionRejectedError:
        self._drop_inflight(key)
        message = (f"admission rejected: {self._active} in flight, "
                   f"{len(self.queue)} queued (tenant {request.tenant!r})")
        response = TQAResponse(uid=uid, answer=[], attempts=0,
                               error=message, outcome="rejected")
        self.metrics.record_rejection()
        self.metrics.record_response(response)
        self._trace(chain, "rejected", uid=uid, tenant=request.tenant,
                    queue_depth=len(self.queue))
        self._notify_complete(chain, request, response)
        error = AdmissionRejectedError(message)
        error.response = response
        return error

    def _notify_complete(self, chain: int, request: TQARequest,
                         response: TQAResponse) -> None:
        """Tell the observer; a broken observer never fails a request."""
        if self.on_complete is None:
            return
        try:
            self.on_complete(chain, request, response)
        except Exception:
            self.metrics.record_observer_error()

    def _release_slot(self) -> None:
        self._active -= 1
        self._pump()

    def _pump(self) -> None:
        """Hand freed slots to parked waiters in fair-queue order."""
        while self._active < self.max_inflight and self.queue:
            gate = self.queue.pop()
            if gate.done():        # cancelled while parked: skip
                continue
            self._active += 1      # charge the slot before the wake-up
            gate.set_result(None)

    def _drop_inflight(self, key: str | None) -> None:
        if key is None:
            return
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.cancel()

    # --- tracing ------------------------------------------------------------

    def _trace(self, chain: int, kind: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit_for(chain, f"serving_{kind}", 0, **data)

    def _on_breaker_transition(self, backend: str, old_state: str,
                               new_state: str) -> None:
        self.metrics.record_breaker_transition(old_state, new_state)
        self._trace(0, "breaker_transition", backend=backend,
                    old_state=old_state, new_state=new_state)

    # --- the ladder (mirrors WorkerPool._answer_inner) ----------------------

    async def _answer(self, chain: int, uid: str, key: str | None,
                      request: TQARequest) -> TQAResponse:
        with activate(self.telemetry), \
                span("request", trace_id=chain, uid=uid) as request_span:
            response = await self._answer_inner(chain, uid, key, request)
            if request_span is not None:
                request_span.set(outcome=response.outcome,
                                 cached=response.cached,
                                 degraded=response.degraded,
                                 attempts=response.attempts)
            return response

    async def _answer_inner(self, chain: int, uid: str, key: str | None,
                            request: TQARequest) -> TQAResponse:
        started = time.perf_counter()
        if key is not None:
            cached = self.cache.get(key)
            hit = cached is not None
            self.metrics.record_cache(hit)
            self._trace(chain, "cache_hit" if hit else "cache_miss",
                        uid=uid)
            if hit:
                return cached.to_response(
                    uid, latency=time.perf_counter() - started)
        result = None
        last_error = ""
        last_exc: Exception | None = None
        attempts = 0
        breaker = self._breaker
        for attempt in range(self.policy.max_attempts):
            if breaker is not None and not breaker.allow():
                last_exc = CircuitOpenError(
                    f"backend {breaker.backend!r} circuit is open")
                last_error = str(last_exc)
                self.metrics.record_breaker_rejection()
                self._trace(chain, "breaker_reject", uid=uid,
                            attempt=attempt + 1,
                            backend=breaker.backend)
                break
            attempts = attempt + 1
            seed = self.policy.attempt_seed(request.seed, attempt)
            try:
                with span("attempt", index=attempts):
                    result = await self._run_attempt(request, seed)
                if breaker is not None:
                    breaker.record_success()
                break
            except ServingTimeoutError as exc:
                last_exc = exc
                last_error = str(exc)
                self.metrics.record_timeout()
                self._trace(chain, "timeout", uid=uid, attempt=attempts)
            except asyncio.CancelledError:
                raise
            except CircuitOpenError as exc:
                # A circuit opened *mid-attempt*: account it as a
                # rejection, not a fresh backend failure, and stop
                # burning attempts — exactly the pool's treatment.
                last_exc = exc
                last_error = str(exc)
                self.metrics.record_breaker_rejection()
                self._trace(chain, "breaker_reject", uid=uid,
                            attempt=attempts, mid_attempt=True)
                break
            except Exception as exc:
                last_exc = exc
                last_error = f"{type(exc).__name__}: {exc}"
                self._trace(chain, "error", uid=uid, attempt=attempts,
                            error=last_error,
                            retryable=is_retryable(exc))
            if breaker is not None:
                breaker.record_failure()
            if attempt + 1 < self.policy.max_attempts:
                self.metrics.record_retry()
                self._trace(chain, "retry", uid=uid,
                            next_attempt=attempts + 1)
                delay = self.policy.backoff_delay(request.seed, attempt)
                if delay > 0:
                    self.metrics.record_backoff(delay)
                    self._trace(chain, "backoff", uid=uid,
                                delay=round(delay, 6))
                    await self._sleep(delay)
        reflections = 0
        reflected = False
        if self._reflect_rung is not None:
            # The reflexion rung (thread-side: it drives the sync chain
            # engines), sharing the pool's policy and accounting.
            rung = self._reflect_rung
            (result, reflections, reflected, last_exc,
             last_error) = await asyncio.to_thread(
                rung.attempt, request, result, last_exc,
                last_error=last_error, attempts=attempts, breaker=breaker,
                trace=lambda kind, **data: self._trace(
                    chain, kind, uid=uid, **data))
        degraded = False
        if result is None and self.policy.degrade_on_exhaustion:
            # The §3.3 fallback rung: forced direct answer, request seed,
            # no deadline — exactly the pool's degraded contract.
            degraded = True
            self._trace(chain, "degraded", uid=uid)
            try:
                with span("degraded_attempt"):
                    runner = self.spec.build_forced(request.seed)
                    result = await asyncio.to_thread(
                        runner.run, request.table, request.question)
            except Exception as exc:
                last_exc = exc
                last_error = f"{type(exc).__name__}: {exc}"
                result = None
        if result is None:
            return TQAResponse(uid=uid, answer=[], degraded=degraded,
                               attempts=attempts, reflections=reflections,
                               error=last_error,
                               latency=time.perf_counter() - started,
                               outcome=classify_failure(last_exc))
        outcome = ("degraded" if degraded
                   else "reflected" if reflected
                   else "retried" if attempts > 1 else "ok")
        response = TQAResponse(
            uid=uid, answer=list(result.answer),
            iterations=getattr(result, "iterations", 0),
            forced=bool(getattr(result, "forced", False)) or degraded,
            handling_events=list(
                getattr(result, "handling_events", ()) or ()),
            degraded=degraded, attempts=attempts, reflections=reflections,
            error=last_error,
            latency=time.perf_counter() - started, outcome=outcome)
        if key is not None and not degraded:
            self.cache.put(key, CachedAnswer.from_response(response))
        return response

    # --- attempt dispatch ---------------------------------------------------

    async def _run_attempt(self, request: TQARequest, seed: int):
        """One seeded attempt, dispatched by runner capability.

        Chain runners (``engine_for`` / ``chain_engines``) are driven as
        coroutines through a per-attempt continuous batcher with the
        deadline on the handler seam; blocking voters (tree/execution)
        keep the pool's thread-side path via ``asyncio.to_thread``.
        """
        runner = self.spec.build(seed)
        deadline = self.policy.deadline()
        table, question = request.table, request.question
        if hasattr(runner, "chain_engines"):
            # s-vote / ensemble: n chains coalescing their ticks (the
            # REPRO_BATCH_SCHEDULER contract, always on here).  The
            # runner's exception envelope travels with it: voting-family
            # runners swallow branch failures, the greedy chain does not.
            batcher = ContinuousBatcher(AsyncEffectHandler(
                runner.model, runner.registry, deadline=deadline,
                catch=getattr(runner, "handler_catch",
                              (ExecutionError,))))
            engines = runner.chain_engines(table, question)
            for _ in engines:
                batcher.admit()    # whole population before the first tick
            with span("vote_run", method="s-vote", n=runner.n):
                results = await asyncio.gather(
                    *(drive_chain(engine, batcher, pre_admitted=True)
                      for engine in engines))
            return runner.tally(results)
        if hasattr(runner, "engine_for"):
            # Greedy single chain.
            batcher = ContinuousBatcher(AsyncEffectHandler(
                runner.model, runner.registry, deadline=deadline))
            with span("agent_run", trace_id=None) as root:
                if root is not None:
                    root.set(question=question[:120])
                return await drive_chain(
                    runner.engine_for(table, question), batcher)
        return await asyncio.to_thread(
            self._run_blocking, runner, request, deadline)

    def _run_blocking(self, runner, request: TQARequest, deadline):
        """The pool's thread-side attempt for non-chain runners."""
        if deadline is not None:
            if hasattr(runner, "model"):
                runner.model = DeadlineModel(runner.model, deadline)
            else:
                self.metrics.record_deadline_unattached()
                self._trace(0, "deadline_unattached", uid=request.uid,
                            runner=type(runner).__name__)
        return runner.run(request.table, request.question)
