"""Async adapters over the synchronous :class:`LanguageModel` protocol.

Every model in the repo is synchronous (the simulated backends are pure
compute; a real HTTP backend would block).  The async serving core talks
to :class:`AsyncLanguageModel` — the awaitable twin of the completion
protocol — and :class:`SyncModelAdapter` bridges any sync model into it.

Two bridging modes:

* **inline** (default): the sync call runs directly on the event loop.
  Correct and deterministic for the repo's compute-only simulated models
  (microseconds per call, no blocking I/O) and required for bit-exact
  parity with the sync drivers — no thread hops, no reordering.
* **offload** (``offload=True``): the call runs in a worker thread via
  ``asyncio.to_thread`` so a genuinely blocking backend (network I/O,
  a local inference runtime) does not stall the loop.  Only safe when
  the wrapped model is thread-safe; concurrent chains may then interleave
  their draws, so determinism degrades to the thread-pool contract.

This module is, with :mod:`repro.aio.handler`, an allowed home for
direct ``complete``/``complete_batch`` calls (see
``tools/lint_effects.py``) — it *is* the async model boundary.
"""

from __future__ import annotations

import asyncio

from repro.llm.base import Completion, CompletionRequest, LanguageModel

__all__ = ["AsyncLanguageModel", "SyncModelAdapter", "ensure_async_model"]


class AsyncLanguageModel:
    """The awaitable completion protocol.

    Subclasses implement :meth:`complete`; :meth:`complete_batch` has the
    same default contract as the sync protocol (loop per request) and
    should be overridden by backends with a real batch endpoint.
    """

    @property
    def name(self) -> str:  # pragma: no cover - interface default
        return type(self).__name__

    @property
    def supports_logprobs(self) -> bool:  # pragma: no cover - default
        return False

    async def complete(self, prompt: str, *, temperature: float = 0.0,
                       n: int = 1) -> list[Completion]:
        raise NotImplementedError

    async def complete_batch(
            self, requests: list[CompletionRequest]
    ) -> list[list[Completion]]:
        batches = []
        for request in requests:
            batches.append(await self.complete(
                request.prompt, temperature=request.temperature,
                n=request.n))
        return batches


class SyncModelAdapter(AsyncLanguageModel):
    """Awaitable facade over a synchronous :class:`LanguageModel`.

    Exposes the wrapped model as ``.inner`` so sync collaborators (the
    executor registry path, the degraded-rung runner) can reach the real
    model, and forwards ``fork`` for per-attempt reseeding.
    """

    def __init__(self, inner: LanguageModel, *, offload: bool = False):
        self.inner = inner
        self.offload = offload

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def fork(self, seed: int) -> "SyncModelAdapter":
        return SyncModelAdapter(self.inner.fork(seed), offload=self.offload)

    async def complete(self, prompt: str, *, temperature: float = 0.0,
                       n: int = 1) -> list[Completion]:
        if self.offload:
            return await asyncio.to_thread(
                self.inner.complete, prompt, temperature=temperature, n=n)
        return self.inner.complete(prompt, temperature=temperature, n=n)

    async def complete_batch(
            self, requests: list[CompletionRequest]
    ) -> list[list[Completion]]:
        # One sync batch call, not a per-request loop: the inner model's
        # batch endpoint (and its fault-injection wrappers) must see the
        # same call shape as under the sync BatchScheduler.
        if self.offload:
            return await asyncio.to_thread(
                self.inner.complete_batch, requests)
        return self.inner.complete_batch(requests)


def ensure_async_model(model) -> AsyncLanguageModel:
    """Coerce ``model`` to the async protocol (idempotent)."""
    if isinstance(model, AsyncLanguageModel):
        return model
    return SyncModelAdapter(model)
