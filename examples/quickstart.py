"""Quickstart: answer one table question with the ReAcTable agent.

Run with::

    python examples/quickstart.py
"""

from repro import ReActTableAgent, SimulatedTQAModel, generate_dataset


def main() -> None:
    # 1. Generate a small WikiTQ-style benchmark.  Every example carries a
    #    table, a natural-language question and a gold answer; the bank is
    #    the simulated model's "pre-training corpus".
    benchmark = generate_dataset("wikitq", size=25, seed=42)

    # 2. Build the agent: a simulated Codex-class model plus the default
    #    SQL + Python executor registry.
    model = SimulatedTQAModel(benchmark.bank, seed=7)
    agent = ReActTableAgent(model)

    # 3. Answer a few questions and show the reasoning chains.
    correct = 0
    for example in benchmark.examples[:8]:
        result = agent.run(example.table, example.question)
        verdict = "OK " if result.answer == example.gold_answer else "MISS"
        correct += verdict == "OK "
        print(f"[{verdict}] {example.question}")
        for step in result.transcript.steps:
            label = step.action.kind.upper()
            snippet = step.action.payload.replace("\n", " ")[:64]
            print(f"       {label}: {snippet}")
        print(f"       -> {result.answer_text} "
              f"(gold: {'|'.join(example.gold_answer)}, "
              f"{result.iterations} iterations)\n")
    print(f"{correct}/8 correct")


if __name__ == "__main__":
    main()
