"""Tests for the SQL parser (AST shapes and error reporting)."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlengine import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    LikeOp,
    Literal,
    Star,
    UnaryOp,
    parse_expression,
    parse_select,
)


class TestSelectShape:
    def test_minimal(self):
        stmt = parse_select("SELECT a FROM t")
        assert stmt.table == "t"
        assert len(stmt.items) == 1
        assert stmt.items[0].expression == ColumnRef("a")

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, Star)

    def test_trailing_semicolons(self):
        assert parse_select("SELECT a FROM t;;").table == "t"

    def test_multiple_items(self):
        stmt = parse_select("SELECT a, b, a + b FROM t")
        assert len(stmt.items) == 3

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[0].output_name == "x"

    def test_alias_bare(self):
        stmt = parse_select("SELECT COUNT(*) n FROM t")
        assert stmt.items[0].alias == "n"

    def test_output_name_defaults_to_sql(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        assert stmt.items[0].output_name == "COUNT(*)"

    def test_table_alias(self):
        stmt = parse_select("SELECT a FROM t AS u WHERE u.a > 0")
        assert stmt.table_alias == "u"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        stmt = parse_select("SELECT a FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "AND"

    def test_group_by_multiple(self):
        stmt = parse_select("SELECT a, b FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [item.descending for item in stmt.order_by] == \
            [True, False, False]

    def test_limit(self):
        stmt = parse_select("SELECT a FROM t LIMIT 5")
        assert stmt.limit == 5
        assert stmt.offset == 0

    def test_limit_offset(self):
        stmt = parse_select("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert (stmt.limit, stmt.offset) == (5, 2)

    def test_limit_comma_form(self):
        stmt = parse_select("SELECT a FROM t LIMIT 2, 5")
        assert (stmt.limit, stmt.offset) == (5, 2)

    def test_quoted_table_and_columns(self):
        stmt = parse_select('SELECT "My Col" FROM "T 0"')
        assert stmt.table == "T 0"
        assert stmt.items[0].expression == ColumnRef("My Col")


class TestExpressions:
    def test_literals(self):
        assert parse_expression("42") == Literal(42)
        assert parse_expression("2.5") == Literal(2.5)
        assert parse_expression("'x'") == Literal("x")
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)

    def test_precedence_mul_before_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_comparison_chain_with_and(self):
        expr = parse_expression("a > 1 AND b < 2 OR c = 3")
        assert expr.op == "OR"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryOp)

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_like(self):
        expr = parse_expression("a LIKE '%x%'")
        assert isinstance(expr, LikeOp)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNull)
        assert parse_expression("a IS NOT NULL").negated

    def test_function_call(self):
        expr = parse_expression("LOWER(name)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "lower"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT a)").distinct

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr == ColumnRef("col", table="t")

    def test_case_when(self):
        expr = parse_expression(
            "CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, CaseWhen)
        assert expr.default == Literal("neg")

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN a THEN 1 END")
        assert expr.default is None

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert isinstance(expr, Cast)
        assert expr.target == "INTEGER"

    def test_cast_aliases(self):
        assert parse_expression("CAST(a AS INT)").target == "INTEGER"
        assert parse_expression("CAST(a AS FLOAT)").target == "REAL"
        assert parse_expression("CAST(a AS VARCHAR(20))").target == "TEXT"

    def test_concat_operator(self):
        assert parse_expression("a || b").op == "||"


class TestToSql:
    @pytest.mark.parametrize("sql", [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b AS x FROM t WHERE a > 1",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 "
        "ORDER BY a DESC LIMIT 3",
        "SELECT CASE WHEN a IS NULL THEN 0 ELSE a END FROM t",
    ])
    def test_roundtrip_through_to_sql(self, sql):
        stmt = parse_select(sql)
        again = parse_select(stmt.to_sql())
        assert again.to_sql() == stmt.to_sql()


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t LIMIT x",
        "SELECT a FROM t GROUP a",
        "SELECT a FROM t trailing_not_alias extra",
        "SELECT CASE END FROM t",
        "SELECT CAST(a AS BLOB) FROM t",
    ])
    def test_bad_sql_raises(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_select(sql)

    def test_expression_rejects_trailing(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra")
