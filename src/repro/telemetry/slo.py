"""Per-tenant SLO tracking: error budgets and multi-window burn rates.

An SLO ("99.5% of requests succeed", "99% answer within 500 ms") turns
raw counters into an *actionable* signal: how much of the failure budget
is left, and how fast is it burning right now?  The ``repro serve``
daemon records every completed response here and serves the state at
``/slo``; the alert policy is the standard SRE multi-window burn-rate
scheme — an alert fires only when both a long window (is this real?)
and a short window (is it still happening?) burn faster than the
threshold, which pages quickly on hard outages without flapping on
single slow requests.

Everything is driven by an injected monotonic clock (``clock=``), so
seeded-deterministic tests advance time explicitly and never read wall
time.  Events are held in per-tenant deques pruned to the longest
configured window — memory is bounded by traffic in that horizon, and
recording is O(1) amortised.

Vocabulary:

* **objective** — one of ``availability`` (the response outcome is a
  good one) or ``latency`` (the response finished within
  ``latency_threshold`` seconds).  Both are tracked per tenant.
* **error budget** — over ``budget_window``, a target of ``t`` allows
  ``(1 - t)`` of requests to be bad; ``budget_remaining`` is the
  unconsumed fraction of that allowance (1.0 = untouched, 0.0 =
  exhausted or overspent).
* **burn rate** — observed bad fraction divided by the allowed bad
  fraction over a window.  Burning at exactly 1.0 spends the budget in
  one budget window; 14.4 spends a 30-day budget in 2 days (the classic
  page threshold).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "BurnRule",
    "SLOConfig",
    "SLOTracker",
    "GOOD_OUTCOMES",
]

#: Response outcomes that count as *available* for the SLO: the request
#: got a genuine answer (including via retry/reflexion/cache).  The
#: degraded rung, deadline misses, errors and shed requests all consume
#: availability budget.
GOOD_OUTCOMES = frozenset({"ok", "retried", "reflected", "cached"})

#: Alert severity order (index = rank; higher is worse).
_SEVERITY = ("ok", "warn", "page")


@dataclass(frozen=True)
class BurnRule:
    """One multi-window alert rule.

    Fires (contributes ``state``) when the burn rate over *both*
    ``long_window`` and ``short_window`` seconds is at least
    ``threshold``.  The short window makes alerts stop as soon as the
    burn does; the long window keeps one-request blips from paging.
    """

    state: str                 # "page" or "warn"
    long_window: float
    short_window: float
    threshold: float

    def __post_init__(self):
        if self.state not in ("page", "warn"):
            raise ValueError("state must be 'page' or 'warn'")
        if self.short_window > self.long_window:
            raise ValueError("short_window must not exceed long_window")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


@dataclass(frozen=True)
class SLOConfig:
    """Objectives plus the windows that judge them.

    The default burn rules are the SRE-workbook pair scaled to the
    1-hour default budget window: page at 14.4× (long 1/12 of the
    budget window, short 1/144) and warn at 6× (long 1/4, short 1/24).
    Windows are expressed in seconds of the injected clock, so tests
    with a fake clock can use any scale they like.
    """

    availability_target: float = 0.995
    latency_target: float = 0.99
    #: A response slower than this consumes latency budget (seconds).
    latency_threshold: float = 1.0
    #: The budget accounting horizon (seconds).
    budget_window: float = 3600.0
    burn_rules: tuple[BurnRule, ...] = field(default_factory=tuple)

    def __post_init__(self):
        for target in (self.availability_target, self.latency_target):
            if not 0.0 < target <= 1.0:
                raise ValueError("targets must be in (0, 1]")
        if self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")
        if self.budget_window <= 0:
            raise ValueError("budget_window must be positive")
        if not self.burn_rules:
            window = self.budget_window
            object.__setattr__(self, "burn_rules", (
                BurnRule("page", window / 12, window / 144, 14.4),
                BurnRule("warn", window / 4, window / 24, 6.0),
            ))

    @property
    def horizon(self) -> float:
        """Longest window any consumer looks back over (prune bound)."""
        return max([self.budget_window]
                   + [rule.long_window for rule in self.burn_rules])


class _TenantWindow:
    """One tenant's rolling event log: ``(at, avail_good, latency_good)``."""

    __slots__ = ("events", "total", "avail_bad", "latency_bad")

    def __init__(self):
        self.events: deque[tuple[float, bool, bool]] = deque()
        # Lifetime totals (never pruned) for the snapshot.
        self.total = 0
        self.avail_bad = 0
        self.latency_bad = 0

    def prune(self, cutoff: float) -> None:
        events = self.events
        while events and events[0][0] < cutoff:
            events.popleft()

    def window_counts(self, since: float,
                      objective: str) -> tuple[int, int]:
        """``(total, bad)`` for one objective over ``[since, now]``."""
        good_index = 1 if objective == "availability" else 2
        total = 0
        bad = 0
        # Newest events live at the right; walk backwards and stop at
        # the window edge so short windows stay cheap under backlog.
        for event in reversed(self.events):
            if event[0] < since:
                break
            total += 1
            if not event[good_index]:
                bad += 1
        return total, bad


class SLOTracker:
    """Thread-safe per-tenant SLO accountant with burn-rate alerting."""

    def __init__(self, config: SLOConfig | None = None, *,
                 clock=time.monotonic):
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantWindow] = {}

    # --- recording ----------------------------------------------------------

    def record(self, tenant: str, *, outcome: str,
               latency: float) -> None:
        """Account one completed response for ``tenant``."""
        self.record_good(
            tenant,
            available=outcome in GOOD_OUTCOMES,
            fast=latency <= self.config.latency_threshold)

    def record_good(self, tenant: str, *, available: bool,
                    fast: bool) -> None:
        """Account one response by pre-judged goodness bits."""
        now = self._clock()
        with self._lock:
            window = self._tenants.get(tenant)
            if window is None:
                self._tenants[tenant] = window = _TenantWindow()
            window.events.append((now, available, fast))
            window.total += 1
            if not available:
                window.avail_bad += 1
            if not fast:
                window.latency_bad += 1
            window.prune(now - self.config.horizon)

    # --- queries ------------------------------------------------------------

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def _target(self, objective: str) -> float:
        return (self.config.availability_target
                if objective == "availability"
                else self.config.latency_target)

    def burn_rate(self, tenant: str, objective: str,
                  window: float) -> float:
        """Observed bad fraction / allowed bad fraction over ``window``.

        0.0 when the tenant has no traffic in the window.  With a
        target of exactly 1.0 (zero allowance) any bad event burns at
        ``+inf`` — represented as ``float("inf")``.
        """
        now = self._clock()
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return 0.0
            total, bad = state.window_counts(now - window, objective)
        if total == 0 or bad == 0:
            return 0.0
        allowance = 1.0 - self._target(objective)
        if allowance <= 0.0:
            return float("inf")
        return (bad / total) / allowance

    def budget_remaining(self, tenant: str, objective: str) -> float:
        """Unconsumed error-budget fraction over the budget window.

        1.0 with no traffic (nothing spent), clamped at 0.0 once the
        budget is overspent.
        """
        now = self._clock()
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return 1.0
            total, bad = state.window_counts(
                now - self.config.budget_window, objective)
        if total == 0:
            return 1.0
        allowed = (1.0 - self._target(objective)) * total
        if allowed <= 0.0:
            return 0.0 if bad else 1.0
        return max(0.0, 1.0 - bad / allowed)

    def alert_state(self, tenant: str, objective: str) -> str:
        """``"ok"`` | ``"warn"`` | ``"page"`` per the burn rules."""
        worst = "ok"
        for rule in self.config.burn_rules:
            if (self.burn_rate(tenant, objective, rule.long_window)
                    >= rule.threshold
                    and self.burn_rate(tenant, objective,
                                       rule.short_window)
                    >= rule.threshold):
                if _SEVERITY.index(rule.state) > _SEVERITY.index(worst):
                    worst = rule.state
        return worst

    # --- export -------------------------------------------------------------

    def tenant_snapshot(self, tenant: str) -> dict:
        """JSON-ready SLO state for one tenant."""
        with self._lock:
            state = self._tenants.get(tenant)
            totals = {
                "requests": state.total if state else 0,
                "availability_bad": state.avail_bad if state else 0,
                "latency_bad": state.latency_bad if state else 0,
            }
        objectives = {}
        for objective in ("availability", "latency"):
            rules = []
            for rule in self.config.burn_rules:
                rules.append({
                    "state": rule.state,
                    "threshold": rule.threshold,
                    "long_window": rule.long_window,
                    "short_window": rule.short_window,
                    "long_burn": round(self.burn_rate(
                        tenant, objective, rule.long_window), 4),
                    "short_burn": round(self.burn_rate(
                        tenant, objective, rule.short_window), 4),
                })
            objectives[objective] = {
                "target": self._target(objective),
                "budget_remaining": round(
                    self.budget_remaining(tenant, objective), 4),
                "alert_state": self.alert_state(tenant, objective),
                "burn_rules": rules,
            }
        return {"totals": totals, "objectives": objectives}

    def snapshot(self) -> dict:
        """The full ``/slo`` payload: config + per-tenant state."""
        return {
            "config": {
                "availability_target": self.config.availability_target,
                "latency_target": self.config.latency_target,
                "latency_threshold": self.config.latency_threshold,
                "budget_window": self.config.budget_window,
            },
            "tenants": {tenant: self.tenant_snapshot(tenant)
                        for tenant in self.tenants()},
        }

    def publish(self, registry) -> None:
        """Mirror budgets, burn rates, and alert states into gauges.

        Called by the daemon just before rendering ``/metrics`` so the
        SLO state is scrapeable alongside the raw counters.  Alert
        states are exposed as a 0/1/2 severity gauge (ok/warn/page).
        """
        budget = registry.gauge(
            "slo.error_budget_remaining",
            "unconsumed error-budget fraction over the budget window")
        burn = registry.gauge(
            "slo.burn_rate",
            "error-budget burn rate over each alerting window")
        severity = registry.gauge(
            "slo.alert_severity",
            "burn-rate alert state: 0=ok 1=warn 2=page")
        for tenant in self.tenants():
            for objective in ("availability", "latency"):
                budget.set(
                    self.budget_remaining(tenant, objective),
                    tenant=tenant, objective=objective)
                severity.set(
                    float(_SEVERITY.index(
                        self.alert_state(tenant, objective))),
                    tenant=tenant, objective=objective)
                for rule in self.config.burn_rules:
                    burn.set(
                        min(self.burn_rate(tenant, objective,
                                           rule.long_window), 1e9),
                        tenant=tenant, objective=objective,
                        window=rule.state)
