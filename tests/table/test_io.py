"""Tests for the table codecs ([HEAD]/[ROW], CSV, JSON, markdown)."""

import pytest

from repro.errors import TableError
from repro.table import (
    DataFrame,
    decode_head_row,
    encode_head_row,
    from_csv,
    from_json,
    parse_literal,
    to_csv,
    to_json,
    to_markdown,
)


class TestHeadRowCodec:
    def test_header_format(self, cyclists):
        text = encode_head_row(cyclists)
        assert text.splitlines()[0] == \
            "[HEAD]:Rank|Cyclist|Team|Points|Uci_protour_points"

    def test_row_format_one_based(self, cyclists):
        lines = encode_head_row(cyclists).splitlines()
        assert lines[1].startswith("[ROW] 1: 1|Alejandro Valverde (ESP)")

    def test_null_token(self, cyclists):
        text = encode_head_row(cyclists)
        assert "NULL" in text

    def test_roundtrip(self, cyclists):
        decoded = decode_head_row(encode_head_row(cyclists), name="T0")
        assert decoded == cyclists

    def test_roundtrip_real_keeps_type(self):
        frame = DataFrame({"x": [1.0, 2.5]})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded["x"].tolist() == [1.0, 2.5]
        assert all(isinstance(v, float) for v in decoded["x"])

    def test_pipe_in_value_escaped(self):
        frame = DataFrame({"x": ["a|b", "plain"]})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded["x"].tolist() == ["a|b", "plain"]

    def test_backslash_in_value(self):
        frame = DataFrame({"x": ["a\\b"]})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded["x"].tolist() == ["a\\b"]

    def test_newline_in_value_flattened(self):
        frame = DataFrame({"x": ["a\nb"]})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded["x"].tolist() == ["a b"]

    def test_bool_roundtrip(self):
        frame = DataFrame({"x": [True, False]})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded["x"].tolist() == [True, False]

    def test_max_rows_truncation(self, cyclists):
        text = encode_head_row(cyclists, max_rows=2)
        assert "[...]" in text
        assert text.count("[ROW]") == 2

    def test_truncated_text_still_decodes(self, cyclists):
        text = encode_head_row(cyclists, max_rows=2)
        decoded = decode_head_row(text)
        assert decoded.num_rows == 2

    def test_decode_without_value_parsing(self):
        frame = DataFrame({"x": [1]})
        decoded = decode_head_row(encode_head_row(frame),
                                  parse_values=False)
        assert decoded["x"].tolist() == ["1"]

    def test_decode_missing_head_raises(self):
        with pytest.raises(TableError):
            decode_head_row("[ROW] 1: x")

    def test_decode_bad_width_raises(self):
        with pytest.raises(TableError):
            decode_head_row("[HEAD]:a|b\n[ROW] 1: only_one")

    def test_decode_garbage_line_raises(self):
        with pytest.raises(TableError):
            decode_head_row("[HEAD]:a\nnot a row")

    def test_empty_table(self):
        frame = DataFrame({"a": [], "b": []})
        decoded = decode_head_row(encode_head_row(frame))
        assert decoded.columns == ["a", "b"]
        assert decoded.num_rows == 0


class TestParseLiteral:
    @pytest.mark.parametrize("text,expected", [
        ("NULL", None),
        ("true", True),
        ("False", False),
        ("42", 42),
        ("-7", -7),
        ("2.5", 2.5),
        ("plain text", "plain text"),
        ("", ""),
    ])
    def test_values(self, text, expected):
        assert parse_literal(text) == expected


class TestCsv:
    def test_roundtrip(self, cyclists):
        decoded = from_csv(to_csv(cyclists), name="T0")
        assert decoded == cyclists

    def test_missing_roundtrips_via_empty_cell(self):
        frame = DataFrame({"x": [None, 1]})
        text = to_csv(frame)
        assert from_csv(text)["x"].tolist() == [None, 1]

    def test_tsv_delimiter(self, tiny_frame):
        text = to_csv(tiny_frame, delimiter="\t")
        assert "\t" in text
        assert from_csv(text, delimiter="\t") == tiny_frame.with_name("")

    def test_comma_in_value_quoted(self):
        frame = DataFrame({"x": ["a,b"]})
        assert from_csv(to_csv(frame))["x"].tolist() == ["a,b"]

    def test_empty_text_raises(self):
        with pytest.raises(TableError):
            from_csv("")

    def test_file_roundtrip(self, tmp_path, tiny_frame):
        from repro.table import read_csv, write_csv
        path = tmp_path / "t.csv"
        write_csv(tiny_frame, path)
        assert read_csv(path) == tiny_frame.with_name("")


class TestJson:
    def test_roundtrip(self, cyclists):
        assert from_json(to_json(cyclists)) == cyclists

    def test_name_preserved(self, cyclists):
        assert from_json(to_json(cyclists)).name == "T0"

    def test_unicode(self):
        frame = DataFrame({"x": ["café"]})
        assert from_json(to_json(frame))["x"].tolist() == ["café"]


class TestMarkdown:
    def test_contains_header_and_rule(self, tiny_frame):
        text = to_markdown(tiny_frame)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert set(lines[1]) <= set("|- ")

    def test_truncation_note(self, cyclists):
        text = to_markdown(cyclists, max_rows=2)
        assert "more rows" in text

    def test_missing_rendered_empty(self, cyclists):
        text = to_markdown(cyclists)
        assert "None" not in text
