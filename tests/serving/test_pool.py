"""Tests for the worker pool: correctness, caching, coalescing, policy."""

import threading
import time

import pytest

from repro.core import ReActTableAgent
from repro.errors import ServingError, TransientModelError
from repro.llm import SimulatedTQAModel, get_profile
from repro.llm.base import Completion, LanguageModel, ScriptedModel
from repro.retry import ExponentialBackoff
from repro.serving import (
    AgentSpec,
    AnswerCache,
    BreakerConfig,
    RetryPolicy,
    ServingMetrics,
    WorkerPool,
)
from repro.tracing import ChainTracer

ANSWER = "ReAcTable: Answer: ```ok```."


class BlockingModel(LanguageModel):
    """Blocks inside ``complete`` until released; flags when entered."""

    name = "blocking"
    supports_logprobs = False

    def __init__(self, entered: threading.Event,
                 release: threading.Event):
        self.entered = entered
        self.release = release

    def complete(self, prompt, *, temperature=0.0, n=1):
        self.entered.set()
        assert self.release.wait(10)
        return [Completion(ANSWER)] * n


class SleepyModel(LanguageModel):
    """Sleeps longer than any test deadline before answering."""

    name = "sleepy"
    supports_logprobs = False

    def complete(self, prompt, *, temperature=0.0, n=1):
        time.sleep(0.05)
        return [Completion(ANSWER)] * n


class StubSpec:
    """Spec stub whose agents run a caller-provided model factory."""

    def __init__(self, model_factory, config_key="stub"):
        self.model_factory = model_factory
        self.config_key = config_key
        self.built_seeds = []

    def build(self, seed):
        self.built_seeds.append(seed)
        return ReActTableAgent(self.model_factory())

    def build_forced(self, seed):
        return ReActTableAgent(
            ScriptedModel(["ReAcTable: Answer: ```degraded```."]),
            max_iterations=1)


class FailingSpec(StubSpec):
    def build(self, seed):
        raise RuntimeError("cannot build agent")


@pytest.fixture()
def spec(wikitq_small):
    return AgentSpec(bank=wikitq_small.bank)


class TestPoolCorrectness:
    def test_matches_sequential_agent(self, wikitq_small, spec):
        examples = wikitq_small.examples[:8]
        sequential = ReActTableAgent(
            SimulatedTQAModel(wikitq_small.bank,
                              get_profile("codex-sim"), seed=1))
        expected = [sequential.run(ex.table, ex.question)
                    for ex in examples]
        with WorkerPool(spec, workers=4) as pool:
            slots = [pool.submit(ex.table, ex.question, seed=1,
                                 uid=ex.uid) for ex in examples]
            responses = [slot.result(timeout=30) for slot in slots]
        for result, response in zip(expected, responses):
            assert response.answer == result.answer
            assert response.iterations == result.iterations
            assert response.forced == result.forced
            assert response.handling_events == result.handling_events

    def test_responses_keep_request_uids(self, wikitq_small, spec):
        example = wikitq_small.examples[0]
        with WorkerPool(spec, workers=2) as pool:
            slot = pool.submit(example.table, example.question,
                               uid="my-uid")
            assert slot.result(timeout=30).uid == "my-uid"

    def test_submit_before_start_raises(self, wikitq_small, spec):
        pool = WorkerPool(spec, workers=1)
        example = wikitq_small.examples[0]
        with pytest.raises(ServingError):
            pool.submit(example.table, example.question)


class TestPoolCaching:
    def test_resubmission_hits_cache(self, wikitq_small, spec):
        example = wikitq_small.examples[0]
        cache = AnswerCache(16)
        metrics = ServingMetrics()
        with WorkerPool(spec, workers=1, cache=cache,
                        metrics=metrics) as pool:
            first = pool.submit(example.table, example.question,
                                seed=1).result(timeout=30)
            second = pool.submit(example.table, example.question,
                                 seed=1).result(timeout=30)
        assert not first.cached and second.cached
        assert second.answer == first.answer
        assert second.iterations == first.iterations
        assert cache.hits == 1 and cache.misses == 1
        assert metrics.cache_hits == 1

    def test_different_seeds_do_not_share_entries(self, wikitq_small,
                                                  spec):
        example = wikitq_small.examples[0]
        cache = AnswerCache(16)
        with WorkerPool(spec, workers=1, cache=cache) as pool:
            pool.submit(example.table, example.question,
                        seed=1).result(timeout=30)
            second = pool.submit(example.table, example.question,
                                 seed=2).result(timeout=30)
        assert not second.cached
        assert len(cache) == 2

    def test_inflight_duplicates_coalesce(self, tiny_frame):
        entered = threading.Event()
        release = threading.Event()
        spec = StubSpec(lambda: BlockingModel(entered, release))
        metrics = ServingMetrics()
        with WorkerPool(spec, workers=1, cache=AnswerCache(16),
                        metrics=metrics) as pool:
            primary = pool.submit(tiny_frame, "same question?", seed=0)
            assert entered.wait(10)   # worker is inside the chain
            duplicate = pool.submit(tiny_frame, "same question?", seed=0)
            release.set()
            first = primary.result(timeout=30)
            second = duplicate.result(timeout=30)
        assert not first.coalesced
        assert second.coalesced and second.cached
        assert second.answer == first.answer
        assert metrics.coalesced == 1
        # The duplicate never ran a chain of its own.
        assert len(spec.built_seeds) == 1


class TestPoolPolicy:
    def test_timeout_retries_then_degrades(self, tiny_frame):
        spec = StubSpec(SleepyModel)
        metrics = ServingMetrics()
        policy = RetryPolicy(timeout=0.005, max_retries=2)
        with WorkerPool(spec, workers=1, policy=policy,
                        metrics=metrics) as pool:
            response = pool.submit(tiny_frame,
                                   "slow?").result(timeout=30)
        assert response.degraded and response.forced
        assert response.answer == ["degraded"]
        assert response.attempts == 3
        assert metrics.timeouts == 3
        assert metrics.retries == 2
        assert metrics.degraded == 1
        # Each attempt reseeded deterministically.
        assert spec.built_seeds == [policy.attempt_seed(0, a)
                                    for a in range(3)]

    def test_degraded_answers_are_not_cached(self, tiny_frame):
        spec = StubSpec(SleepyModel)
        cache = AnswerCache(16)
        policy = RetryPolicy(timeout=0.005, max_retries=0)
        with WorkerPool(spec, workers=1, cache=cache,
                        policy=policy) as pool:
            pool.submit(tiny_frame, "slow?").result(timeout=30)
        assert len(cache) == 0

    def test_exhaustion_without_degradation_reports_error(self,
                                                          tiny_frame):
        spec = FailingSpec(SleepyModel)
        policy = RetryPolicy(max_retries=1, degrade_on_exhaustion=False)
        metrics = ServingMetrics()
        with WorkerPool(spec, workers=1, policy=policy,
                        metrics=metrics) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.answer == []
        assert "cannot build agent" in response.error
        assert not response.degraded
        assert metrics.errors == 1


class CrashingModel(LanguageModel):
    """Raises a transient error on every completion."""

    name = "crashing"
    supports_logprobs = False

    def complete(self, prompt, *, temperature=0.0, n=1):
        raise TransientModelError("backend down")


class TestPoolOutcomes:
    def test_clean_request_is_ok(self, tiny_frame):
        spec = StubSpec(lambda: ScriptedModel([ANSWER]))
        with WorkerPool(spec, workers=1) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.outcome == "ok"

    def test_recovered_request_is_retried(self, tiny_frame):
        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            if calls["n"] == 1:
                return CrashingModel()
            return ScriptedModel([ANSWER])

        spec = StubSpec(factory)
        with WorkerPool(spec, workers=1,
                        policy=RetryPolicy(max_retries=2)) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.outcome == "retried"
        assert response.attempts == 2

    def test_degraded_request_is_degraded(self, tiny_frame):
        spec = StubSpec(SleepyModel)
        policy = RetryPolicy(timeout=0.005, max_retries=0)
        with WorkerPool(spec, workers=1, policy=policy) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.outcome == "degraded"

    def test_terminal_failure_classified_by_taxonomy(self, tiny_frame):
        spec = StubSpec(CrashingModel)
        policy = RetryPolicy(max_retries=0,
                             degrade_on_exhaustion=False)
        with WorkerPool(spec, workers=1, policy=policy) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.outcome == "error_transient"
        permanent = FailingSpec(SleepyModel)   # RuntimeError: permanent
        with WorkerPool(permanent, workers=1, policy=policy) as pool:
            response = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert response.outcome == "error_permanent"

    def test_cached_response_outcome(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)
        example = wikitq_small.examples[0]
        with WorkerPool(spec, workers=1, cache=AnswerCache(4)) as pool:
            first = pool.submit(example.table, example.question,
                                seed=1).result(timeout=30)
            second = pool.submit(example.table, example.question,
                                 seed=1).result(timeout=30)
        assert first.outcome == "ok"
        assert second.outcome == "cached"


class TestPoolBackoff:
    def test_backoff_sleeps_between_attempts(self, tiny_frame):
        slept = []
        metrics = ServingMetrics()
        spec = StubSpec(CrashingModel)
        policy = RetryPolicy(
            max_retries=2,
            backoff=ExponentialBackoff(base=0.1, factor=2.0, jitter=0.0))
        with WorkerPool(spec, workers=1, policy=policy, metrics=metrics,
                        sleep=slept.append) as pool:
            pool.submit(tiny_frame, "q?").result(timeout=30)
        assert slept == [0.1, 0.2]
        snapshot = metrics.snapshot()
        assert snapshot["backoffs"] == 2
        assert snapshot["backoff_seconds"] == pytest.approx(0.3)

    def test_no_backoff_config_never_sleeps(self, tiny_frame):
        slept = []
        spec = StubSpec(CrashingModel)
        with WorkerPool(spec, workers=1,
                        policy=RetryPolicy(max_retries=2),
                        sleep=slept.append) as pool:
            pool.submit(tiny_frame, "q?").result(timeout=30)
        assert slept == []


class TestPoolBreaker:
    def test_disabled_by_default(self, tiny_frame):
        assert WorkerPool(StubSpec(SleepyModel)).breaker is None

    def test_opens_after_consecutive_failures_then_fails_fast(
            self, tiny_frame):
        metrics = ServingMetrics()
        spec = StubSpec(CrashingModel)
        policy = RetryPolicy(max_retries=0)
        with WorkerPool(spec, workers=1, policy=policy, metrics=metrics,
                        breakers=BreakerConfig(failure_threshold=2,
                                               cooldown=60.0)) as pool:
            for _ in range(2):   # two failures open the circuit
                pool.submit(tiny_frame, "q?").result(timeout=30)
            built_before = len(spec.built_seeds)
            rejected = pool.submit(tiny_frame, "q?").result(timeout=30)
        assert pool.breaker.state == "open"
        # The rejected request never built an agent: it fell straight
        # through to the degradation rung.
        assert len(spec.built_seeds) == built_before
        assert rejected.degraded
        assert rejected.attempts == 0
        assert "circuit is open" in rejected.error
        snapshot = metrics.snapshot()
        assert snapshot["breaker_opened"] == 1
        assert snapshot["breaker_rejections"] == 1

    def test_successes_keep_the_circuit_closed(self, tiny_frame):
        spec = StubSpec(lambda: ScriptedModel([ANSWER]))
        with WorkerPool(spec, workers=1,
                        breakers=BreakerConfig(failure_threshold=1,
                                               cooldown=60.0)) as pool:
            for _ in range(3):
                pool.submit(tiny_frame, "q?").result(timeout=30)
            assert pool.breaker.state == "closed"
        assert pool.breaker.snapshot()["times_opened"] == 0

    def test_breaker_uses_spec_profile_as_backend(self, wikitq_small):
        pool = WorkerPool(AgentSpec(bank=wikitq_small.bank),
                          breakers=BreakerConfig())
        assert pool.breaker.backend == "codex-sim"

    def test_breaker_events_traced(self, tiny_frame):
        tracer = ChainTracer()
        spec = StubSpec(CrashingModel)
        policy = RetryPolicy(max_retries=0)
        with WorkerPool(spec, workers=1, policy=policy, tracer=tracer,
                        breakers=BreakerConfig(failure_threshold=1,
                                               cooldown=60.0)) as pool:
            pool.submit(tiny_frame, "q?").result(timeout=30)
            pool.submit(tiny_frame, "q?").result(timeout=30)
        kinds = tracer.counts()
        assert kinds["serving_breaker_transition"] == 1
        assert kinds["serving_breaker_reject"] == 1
        transition = tracer.of_kind("serving_breaker_transition")[0]
        assert transition.data["new_state"] == "open"


class TestPoolTracing:
    def test_lifecycle_events(self, wikitq_small, spec):
        example = wikitq_small.examples[0]
        tracer = ChainTracer()
        with WorkerPool(spec, workers=1, cache=AnswerCache(16),
                        tracer=tracer) as pool:
            pool.submit(example.table, example.question,
                        seed=1).result(timeout=30)
            pool.submit(example.table, example.question,
                        seed=1).result(timeout=30)
        kinds = tracer.counts()
        assert kinds["serving_enqueue"] == 2
        assert kinds["serving_dispatch"] == 2
        assert kinds["serving_cache_miss"] == 1
        assert kinds["serving_cache_hit"] == 1
        assert kinds["serving_complete"] == 2

    def test_timeout_and_retry_events(self, tiny_frame):
        tracer = ChainTracer()
        spec = StubSpec(SleepyModel)
        policy = RetryPolicy(timeout=0.005, max_retries=1)
        with WorkerPool(spec, workers=1, policy=policy,
                        tracer=tracer) as pool:
            pool.submit(tiny_frame, "slow?").result(timeout=30)
        kinds = tracer.counts()
        assert kinds["serving_timeout"] == 2
        assert kinds["serving_retry"] == 1
        assert kinds["serving_degraded"] == 1
