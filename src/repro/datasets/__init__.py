"""Benchmark datasets: synthetic WikiTQ/TabFact/FeTaQA-style generators.

Example::

    from repro.datasets import generate_dataset
    benchmark = generate_dataset("wikitq", size=200, seed=7)
    benchmark.iteration_histogram()   # {1: ..., 2: ..., ...}
"""

from repro.datasets.generators import (
    DATASET_SIZES,
    Benchmark,
    generate_dataset,
)
from repro.datasets.loaders import (
    WikiTQQuestion,
    load_wikitq_questions,
    load_wikitq_table,
)
from repro.datasets.spec import QuestionBank, TQAExample, table_fingerprint_key
from repro.datasets.tablegen import (
    DOMAINS,
    Domain,
    GeneratedTable,
    generate_table,
)
from repro.datasets.templates import (
    FETAQA_TEMPLATES,
    TABFACT_TEMPLATES,
    WIKITQ_TEMPLATES,
    BuiltQuestion,
    Template,
)

__all__ = [
    "Benchmark",
    "generate_dataset",
    "DATASET_SIZES",
    "QuestionBank",
    "TQAExample",
    "table_fingerprint_key",
    "DOMAINS",
    "Domain",
    "GeneratedTable",
    "generate_table",
    "Template",
    "BuiltQuestion",
    "WIKITQ_TEMPLATES",
    "TABFACT_TEMPLATES",
    "FETAQA_TEMPLATES",
    "WikiTQQuestion",
    "load_wikitq_questions",
    "load_wikitq_table",
]
