"""Tests for trace export: JSONL round-trip and Chrome trace_event."""

import json

from repro.telemetry import (
    FORMAT_VERSION,
    Telemetry,
    load_trace,
    to_chrome_trace,
    trace_to_jsonl,
    write_chrome_trace,
)


def make_telemetry() -> Telemetry:
    telemetry = Telemetry()
    with telemetry.span("request", trace_id=1, uid="q0") as root:
        with telemetry.span("iteration", index=0):
            with telemetry.span("model_call") as call:
                call.add_tokens(prompt=100, completion=10, calls=1)
    root.set(outcome="ok")
    telemetry.event("start", 1, 0, question="who?")
    telemetry.event("answer", 1, 2, value="42")
    return telemetry


class TestJsonl:
    def test_first_line_is_the_meta_header(self):
        lines = trace_to_jsonl(make_telemetry()).splitlines()
        meta = json.loads(lines[0])
        assert meta["type"] == "meta"
        assert meta["format"] == "repro-trace"
        assert meta["version"] == FORMAT_VERSION
        assert meta["spans"] == 3
        assert meta["events"] == 2

    def test_every_line_is_valid_json_with_a_type(self):
        lines = trace_to_jsonl(make_telemetry()).splitlines()
        records = [json.loads(line) for line in lines]
        assert all(r["type"] in {"meta", "span", "event"}
                   for r in records)
        assert sum(r["type"] == "span" for r in records) == 3
        assert sum(r["type"] == "event" for r in records) == 2

    def test_save_load_round_trip(self, tmp_path):
        telemetry = make_telemetry()
        path = telemetry.save(tmp_path / "trace.jsonl")
        trace = load_trace(path)
        assert trace["meta"]["version"] == FORMAT_VERSION
        assert len(trace["spans"]) == 3
        assert len(trace["events"]) == 2
        root = next(s for s in trace["spans"] if s["parent_id"] is None)
        assert root["kind"] == "request"
        assert root["attrs"] == {"uid": "q0", "outcome": "ok"}
        assert root["prompt_tokens"] == 100

    def test_load_tolerates_legacy_events_only_files(self, tmp_path):
        # ChainTracer.save() historically wrote bare event dicts with no
        # "type" field; those must still load as events.
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps({"kind": "start", "chain_id": 1,
                        "iteration": 0, "at": 0.0}) + "\n",
            encoding="utf-8")
        trace = load_trace(path)
        assert trace["spans"] == []
        assert len(trace["events"]) == 1
        assert trace["events"][0]["kind"] == "start"


class TestChromeTrace:
    """Structural assertions on the trace_event JSON (acceptance criterion)."""

    def chrome(self):
        telemetry = make_telemetry()
        return to_chrome_trace(
            {"meta": {}, "spans": [s.to_dict() for s in telemetry.spans],
             "events": [e.to_dict() for e in telemetry.events]})

    def test_top_level_shape(self):
        chrome = self.chrome()
        assert set(chrome) == {"traceEvents", "displayTimeUnit"}
        assert chrome["displayTimeUnit"] == "ms"
        assert isinstance(chrome["traceEvents"], list)

    def test_spans_become_complete_events(self):
        complete = [e for e in self.chrome()["traceEvents"]
                    if e["ph"] == "X"]
        assert len(complete) == 3
        for entry in complete:
            assert set(entry) >= {"name", "ph", "ts", "dur", "pid",
                                  "tid", "cat", "args"}
            assert entry["cat"] == "span"
            assert isinstance(entry["ts"], int)
            assert isinstance(entry["dur"], int)
            assert entry["dur"] >= 1  # zero-width spans stay visible
            assert entry["pid"] == 1  # pid is the trace id

    def test_events_become_instants(self):
        instants = [e for e in self.chrome()["traceEvents"]
                    if e["ph"] == "i"]
        assert len(instants) == 2
        for entry in instants:
            assert entry["cat"] == "event"
            assert entry["s"] == "t"
            assert "dur" not in entry

    def test_model_call_args_carry_token_cost(self):
        call = next(e for e in self.chrome()["traceEvents"]
                    if e.get("name") == "model_call")
        assert call["args"]["prompt_tokens"] == 100
        assert call["args"]["completion_tokens"] == 10
        assert call["args"]["model_calls"] == 1

    def test_events_sorted_by_pid_then_ts(self):
        entries = self.chrome()["traceEvents"]
        keys = [(e["pid"], e["ts"]) for e in entries]
        assert keys == sorted(keys)

    def test_write_chrome_trace_emits_valid_json(self, tmp_path):
        telemetry = make_telemetry()
        trace_path = telemetry.save(tmp_path / "trace.jsonl")
        out = tmp_path / "trace.chrome.json"
        write_chrome_trace(load_trace(trace_path), out)
        parsed = json.loads(out.read_text(encoding="utf-8"))
        assert len(parsed["traceEvents"]) == 5
