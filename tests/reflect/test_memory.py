"""Tests for the verbal-memory store (``repro.reflect.memory``)."""

import pytest

from repro.reflect import ReflectionMemory
from repro.table import DataFrame


def frame(name="T0", values=(1, 2)):
    return DataFrame({"a": list(values)}, name=name)


class TestReflectionMemory:
    def test_recall_empty(self):
        memory = ReflectionMemory()
        assert memory.recall(frame(), "q") == ()

    def test_remember_and_recall_oldest_first(self):
        memory = ReflectionMemory()
        table = frame()
        memory.remember(table, "q", "first")
        memory.remember(table, "q", "second")
        assert memory.recall(table, "q") == ("first", "second")

    def test_per_key_cap_keeps_newest(self):
        memory = ReflectionMemory(per_key=2)
        table = frame()
        for text in ("one", "two", "three"):
            memory.remember(table, "q", text)
        assert memory.recall(table, "q") == ("two", "three")

    def test_key_is_content_digest_not_identity(self):
        memory = ReflectionMemory()
        memory.remember(frame(), "q", "shared")
        # A distinct frame object with equal contents hits the same key.
        assert memory.recall(frame(), "q") == ("shared",)
        # Different contents or question miss.
        assert memory.recall(frame(values=(9,)), "q") == ()
        assert memory.recall(frame(), "other") == ()

    def test_blank_reflections_are_dropped(self):
        memory = ReflectionMemory()
        memory.remember(frame(), "q", "   ")
        assert len(memory) == 0

    def test_capacity_evicts_least_recently_used(self):
        memory = ReflectionMemory(capacity=2)
        memory.remember(frame(), "a", "ra")
        memory.remember(frame(), "b", "rb")
        memory.recall(frame(), "a")          # touch "a" so "b" is LRU
        memory.remember(frame(), "c", "rc")
        assert memory.recall(frame(), "a") == ("ra",)
        assert memory.recall(frame(), "b") == ()
        assert memory.recall(frame(), "c") == ("rc",)

    def test_clear(self):
        memory = ReflectionMemory()
        memory.remember(frame(), "q", "r")
        memory.clear()
        assert len(memory) == 0

    @pytest.mark.parametrize("kwargs", [
        {"per_key": 0}, {"capacity": 0},
    ])
    def test_bad_bounds_raise(self, kwargs):
        with pytest.raises(ValueError):
            ReflectionMemory(**kwargs)
