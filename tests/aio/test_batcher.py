"""Tests for the ContinuousBatcher: dynamic ticks, coalescing, accounting.

The batcher must keep the BatchScheduler's coalescing semantics (merge
identical pending prompts, slice results back in collection order,
starve tails into the forcing ladder) while allowing what lock-step
cannot: chains joining mid-flight, ticks overlapping with round-trips in
flight, and chains retiring without anyone waiting for them.
"""

import asyncio

import pytest

from repro.aio import AsyncEffectHandler, ContinuousBatcher, drive_chain
from repro.core.agent import ReActTableAgent
from repro.engine.effects import ModelCall
from repro.errors import EngineProtocolError, TransientModelError
from repro.executors.registry import default_registry
from repro.llm.base import Completion, LanguageModel, ScriptedModel

ANSWER = "ReAcTable: Answer: ```42```."
SQL = "ReAcTable: SQL: ```SELECT * FROM T0;```."


class TrackingModel(LanguageModel):
    """Records every batched round-trip it serves."""

    name = "tracking"
    supports_logprobs = False

    def __init__(self, inner):
        self.inner = inner
        self.batches = []

    def complete(self, prompt, *, temperature=0.0, n=1):
        return self.inner.complete(prompt, temperature=temperature, n=n)

    def complete_batch(self, requests):
        self.batches.append(list(requests))
        return super().complete_batch(requests)


def batcher_for(model):
    return ContinuousBatcher(
        AsyncEffectHandler(model, default_registry()))


def engines_for(model, table, question, count):
    agent = ReActTableAgent(model)
    return [agent.engine_for(table, question) for _ in range(count)]


async def run_population(batcher, engines):
    for _ in engines:
        batcher.admit()
    return await asyncio.gather(
        *(drive_chain(engine, batcher, pre_admitted=True)
          for engine in engines))


class TestCoalescing:
    def test_identical_prompts_merge_into_one_request(self, cyclists):
        model = TrackingModel(ScriptedModel([ANSWER] * 3))
        batcher = batcher_for(model)
        results = asyncio.run(run_population(
            batcher, engines_for(model, cyclists, "who ranked first?", 3)))
        assert [r.answer for r in results] == [["42"]] * 3
        assert batcher.ticks == 1 and batcher.requests == 1
        (request,) = model.batches[0]
        assert request.n == 3

    def test_chains_desync_and_recoalesce(self, cyclists):
        model = TrackingModel(ScriptedModel([SQL, ANSWER, ANSWER]))
        batcher = batcher_for(model)
        results = asyncio.run(run_population(
            batcher, engines_for(model, cyclists, "who ranked first?", 2)))
        assert batcher.ticks == 2
        assert model.batches[0][0].n == 2     # coalesced first tick
        assert model.batches[1][0].n == 1     # survivor runs alone
        assert [r.answer for r in results] == [["42"], ["42"]]

    def test_population_counters(self, cyclists):
        model = TrackingModel(ScriptedModel([ANSWER] * 2))
        batcher = batcher_for(model)
        asyncio.run(run_population(
            batcher, engines_for(model, cyclists, "who ranked first?", 2)))
        assert batcher.admitted == 2 and batcher.retired == 2
        assert batcher.population == 0
        assert batcher.max_tick_members == 2


class TestMidFlightAdmission:
    def test_late_chain_joins_the_next_tick(self, cyclists):
        """A chain admitted while a tick is in flight batches with the
        *next* tick, not the one already on the wire."""
        model = TrackingModel(ScriptedModel([SQL, ANSWER, ANSWER]))
        batcher = batcher_for(model)

        async def scenario():
            first = engines_for(model, cyclists, "who ranked first?", 1)[0]
            batcher.admit()
            task = asyncio.create_task(
                drive_chain(first, batcher, pre_admitted=True))
            # Let the first chain park and its tick launch.
            await asyncio.sleep(0)
            late = engines_for(model, cyclists, "who ranked first?", 1)[0]
            late_task = asyncio.create_task(drive_chain(late, batcher))
            return await asyncio.gather(task, late_task)

        results = asyncio.run(scenario())
        assert [r.answer for r in results] == [["42"], ["42"]]
        # First tick: the early chain alone.  Later ticks: the late chain
        # (and the early chain's second iteration) — never retroactively
        # merged into the in-flight round-trip.
        assert model.batches[0][0].n == 1
        assert batcher.ticks >= 2

    def test_retire_completes_a_tick(self, cyclists):
        """When the last stepping chain finishes, parked chains must not
        wait for it — its retirement flushes the tick."""
        model = TrackingModel(ScriptedModel([SQL, ANSWER, ANSWER]))
        batcher = batcher_for(model)
        engines = engines_for(model, cyclists, "who ranked first?", 2)
        results = asyncio.run(run_population(batcher, engines))
        # Chain 2 answered on tick 1 and retired; chain 1 (the SQL
        # chain) parked its second call, and the retirement of chain 2
        # let that single-member tick flush.
        assert [r.answer for r in results] == [["42"], ["42"]]
        assert results[0].iterations == 2 and results[1].iterations == 1


class TestFailureAndCancellation:
    def test_failing_tick_raises_in_every_parked_chain(self, cyclists):
        class FailingModel(LanguageModel):
            name = "failing"
            supports_logprobs = False

            def complete(self, prompt, *, temperature=0.0, n=1):
                raise TransientModelError("backend down")

        model = FailingModel()
        batcher = batcher_for(model)
        engines = engines_for(model, cyclists, "who ranked first?", 2)

        async def scenario():
            for _ in engines:
                batcher.admit()
            return await asyncio.gather(
                *(drive_chain(e, batcher, pre_admitted=True)
                  for e in engines),
                return_exceptions=True)

        results = asyncio.run(scenario())
        assert all(isinstance(r, TransientModelError) for r in results)
        # Accounting drained cleanly: no stuck steppers.
        assert batcher.population == 0

    def test_cancelled_chain_does_not_wedge_the_population(self, cyclists):
        model = TrackingModel(ScriptedModel([SQL, ANSWER, ANSWER]))
        batcher = batcher_for(model)

        async def scenario():
            survivor, victim = engines_for(
                model, cyclists, "who ranked first?", 2)
            batcher.admit()
            batcher.admit()
            survivor_task = asyncio.create_task(
                drive_chain(survivor, batcher, pre_admitted=True))
            victim_task = asyncio.create_task(
                drive_chain(victim, batcher, pre_admitted=True))
            await asyncio.sleep(0)          # both park; tick 1 launches
            victim_task.cancel()
            result = await survivor_task
            with pytest.raises(asyncio.CancelledError):
                await victim_task
            return result

        result = asyncio.run(scenario())
        # The survivor still completed its (multi-tick) chain.
        assert result.answer == ["42"]
        assert batcher.population == 0

    def test_underflow_is_a_protocol_error(self):
        batcher = batcher_for(ScriptedModel([]))
        with pytest.raises(EngineProtocolError):
            batcher.retire()


class TestStarvedTail:
    def test_starved_tail_absorbed_by_forcing_ladder(self, cyclists):
        class StarvingModel(LanguageModel):
            """Returns one completion fewer than asked, once."""

            name = "starving"
            supports_logprobs = False

            def __init__(self):
                self.starved = False

            def complete(self, prompt, *, temperature=0.0, n=1):
                if not self.starved and n > 1:
                    self.starved = True
                    n -= 1
                return [Completion(ANSWER)] * n

        model = StarvingModel()
        batcher = batcher_for(model)
        results = asyncio.run(run_population(
            batcher, engines_for(model, cyclists, "who ranked first?", 2)))
        assert results[0].answer == ["42"] and not results[0].forced
        assert results[1].answer == ["42"] and results[1].forced
        assert results[1].handling_events == [
            "empty completion batch; forcing answer"]


class TestDirectCalls:
    def test_call_outside_a_population_is_a_tick_of_one(self, cyclists):
        model = TrackingModel(ScriptedModel([ANSWER]))
        batcher = batcher_for(model)

        async def scenario():
            batcher.admit()
            try:
                return await batcher.call(ModelCall(
                    prompt="who ranked first?", temperature=0.0, n=1,
                    iteration=1, forced=False))
            finally:
                batcher.retire()

        result = asyncio.run(scenario())
        assert len(result.completions) == 1
        assert batcher.ticks == 1
