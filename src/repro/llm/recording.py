"""Record/replay cache and cost accounting around any LanguageModel.

With a real API backend :class:`CachingModel` is the cost-saving layer
(identical prompts are answered from the cache); :class:`CallCounter`
measures what Section 5.3 of the paper calls the "additional prompting
costs" of majority voting — calls, sampled completions and (estimated)
prompt/completion tokens.

Greedy (temperature 0) calls are cached; sampled calls pass through by
default because their whole point is variation.
"""

from __future__ import annotations

from repro.llm.base import Completion, LanguageModel
# The canonical estimator lives in repro.telemetry.cost so the span layer
# and the counters always agree token-for-token; re-exported here because
# this module has always been its public home.
from repro.telemetry.cost import estimate_tokens

__all__ = ["CachingModel", "CallCounter", "estimate_tokens"]


class CachingModel(LanguageModel):
    """Cache greedy completions of an inner model."""

    def __init__(self, inner: LanguageModel, *,
                 cache_sampled: bool = False):
        self.inner = inner
        self.name = inner.name
        self.cache_sampled = cache_sampled
        self._cache: dict[tuple, list[Completion]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        cacheable = temperature <= 0 or self.cache_sampled
        key = (prompt, round(temperature, 4), n)
        if cacheable and key in self._cache:
            self.hits += 1
            return list(self._cache[key])
        result = self.inner.complete(prompt, temperature=temperature, n=n)
        if cacheable:
            self._cache[key] = list(result)
        self.misses += 1
        return result

    def clear(self) -> None:
        self._cache.clear()


class CallCounter(LanguageModel):
    """Pass-through wrapper counting calls, completions and tokens.

    ``prompt_tokens`` accumulates the estimated size of every prompt sent
    (multiplied by *n* only once — an API bills the prompt per request,
    not per sampled completion), ``completion_tokens`` the size of every
    completion received.
    """

    def __init__(self, inner: LanguageModel):
        self.inner = inner
        self.name = inner.name
        self.calls = 0
        self.completions = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        self.calls += 1
        self.completions += n
        self.prompt_tokens += estimate_tokens(prompt)
        result = self.inner.complete(prompt, temperature=temperature,
                                     n=n)
        for completion in result:
            self.completion_tokens += estimate_tokens(completion.text)
        return result

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def reset(self) -> None:
        self.calls = 0
        self.completions = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
