"""Prometheus exposition: rendering, escaping, and round-trip parsing."""

import math

import pytest

from repro.telemetry.metrics import MetricsRegistry, percentile
from repro.telemetry.prom import (
    DEFAULT_BUCKETS,
    escape_label_value,
    format_value,
    metric_name,
    parse_exposition,
    render,
    render_registry,
)


class TestRendering:
    def test_empty_registry_renders_empty_exposition(self):
        assert render(MetricsRegistry()) == ""
        assert parse_exposition("") == {}

    def test_counter_gets_total_suffix_and_help(self):
        registry = MetricsRegistry()
        registry.counter("serving.submitted", "requests in").inc(3)
        text = render(registry)
        assert "# HELP serving_submitted_total requests in\n" in text
        assert "# TYPE serving_submitted_total counter\n" in text
        assert "serving_submitted_total 3\n" in text

    def test_counter_with_existing_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("ops.bytes_total").inc(7)
        text = render(registry)
        assert "ops_bytes_total 7" in text
        assert "total_total" not in text

    def test_registered_but_never_incremented_counter_renders_zero(self):
        registry = MetricsRegistry()
        registry.counter("serving.errors")
        assert "serving_errors_total 0\n" in render(registry)

    def test_dotted_names_become_underscores(self):
        assert metric_name("sql.tier_dispatch") == "sql_tier_dispatch"
        assert metric_name("9weird-name") == "_9weird_name"

    def test_labelled_samples_sorted_deterministically(self):
        registry = MetricsRegistry()
        counter = registry.counter("sql.tier_dispatch")
        counter.inc(tier="vector", stage="where")
        counter.inc(2, tier="compiled", stage="where")
        text = render(registry)
        compiled = text.index('tier="compiled"')
        vector = text.index('tier="vector"')
        assert compiled < vector
        assert render(registry) == text

    def test_gauge_renders_current_value(self):
        registry = MetricsRegistry()
        registry.gauge("daemon.inflight").set(4.0)
        text = render(registry)
        assert "# TYPE daemon_inflight gauge\n" in text
        assert "daemon_inflight 4\n" in text

    def test_render_registry_alias(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        assert render_registry(registry) == render(registry)

    def test_trailing_newline(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        assert render(registry).endswith("\n")

    def test_merged_registries_pool_samples_one_header(self):
        first = MetricsRegistry()
        first.counter("cache.lookups", "lookups").inc(result="hit")
        second = MetricsRegistry()
        second.counter("cache.lookups").inc(result="miss")
        text = render([first, second])
        assert text.count("# TYPE cache_lookups_total counter") == 1
        assert 'result="hit"' in text and 'result="miss"' in text
        parse_exposition(text)  # must stay valid after the merge

    def test_merged_type_conflict_raises(self):
        # The counter exposes as x_y_total — a gauge registered under
        # that literal name in another registry collides with it.
        first = MetricsRegistry()
        first.counter("x.y").inc()
        second = MetricsRegistry()
        second.gauge("x.y_total").set(1.0)
        with pytest.raises(ValueError, match="both"):
            render([first, second])


class TestLabelEscaping:
    def test_escape_rules(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("a\\b") == "a\\\\b"

    @pytest.mark.parametrize("hostile", [
        'quote"inside', "line\nbreak", "back\\slash",
        'all\\three\n"at once"', "\\", "\n", '"',
        "trailing\\", "mixed\\n literal",
    ])
    def test_hostile_label_values_round_trip(self, hostile):
        registry = MetricsRegistry()
        registry.counter("test.hostile").inc(5, tenant=hostile)
        parsed = parse_exposition(render(registry))
        samples = parsed["test_hostile_total"]["samples"]
        assert samples == [("test_hostile_total", {"tenant": hostile},
                            5.0)]

    def test_help_with_newline_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter("a.b", "line one\nline two").inc()
        text = render(registry)
        assert "# HELP a_b_total line one\\nline two\n" in text
        parse_exposition(text)


class TestHistograms:
    def test_buckets_are_cumulative_and_inf_equals_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency")
        values = [0.0005, 0.003, 0.003, 0.2, 5.0, 100.0]
        for value in values:
            histogram.observe(value)
        text = render(registry)
        counts = []
        for line in text.splitlines():
            if line.startswith("test_latency_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)          # cumulative
        assert counts[-1] == len(values)         # +Inf == count
        assert f"test_latency_count {len(values)}" in text
        assert 'le="+Inf"' in text

    def test_observation_above_every_bound_only_in_inf(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency").observe(10_000.0)
        parsed = parse_exposition(render(registry))
        samples = parsed["test_latency"]["samples"]
        finite = [s for s in samples if s[0] == "test_latency_bucket"
                  and s[1]["le"] != "+Inf"]
        assert all(value == 0.0 for _, _, value in finite)
        inf = [s for s in samples if s[1].get("le") == "+Inf"]
        assert inf[0][2] == 1.0

    def test_boundary_observation_counts_into_its_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency").observe(0.005)  # == a bound
        text = render(registry)
        assert 'test_latency_bucket{le="0.005"} 1' in text
        assert 'test_latency_bucket{le="0.0025"} 0' in text

    def test_custom_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency").observe(1.5)
        text = render(registry, buckets=(1.0, 2.0))
        assert 'le="1"} 0' in text
        assert 'le="2"} 1' in text

    def test_labelled_histogram_sum_and_count_per_cell(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency")
        histogram.observe(0.1, tenant="gold")
        histogram.observe(0.3, tenant="gold")
        histogram.observe(0.2, tenant="bronze")
        parsed = parse_exposition(render(registry))
        samples = parsed["test_latency"]["samples"]
        sums = {s[1]["tenant"]: s[2] for s in samples
                if s[0] == "test_latency_sum"}
        assert sums["gold"] == pytest.approx(0.4)
        assert sums["bronze"] == pytest.approx(0.2)

    def test_empty_histogram_renders_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency")
        text = render(registry)
        assert "test_latency_count 0" in text
        assert 'test_latency_bucket{le="+Inf"} 0' in text


class TestPercentileBoundaries:
    """percentile() edges, round-tripped through the renderer."""

    def test_q0_is_min_q1_is_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample_every_quantile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([0.123], q) == 0.123

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_rendered_histogram_agrees_with_percentile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency")
        values = [n / 100.0 for n in range(1, 101)]
        for value in values:
            histogram.observe(value)
        parsed = parse_exposition(render(registry))
        samples = parsed["test_latency"]["samples"]
        p50 = percentile(values, 0.5)
        # The cumulative count at the first bound >= p50 must cover
        # at least half the observations.
        for name, labels, value in samples:
            if name != "test_latency_bucket" or labels["le"] == "+Inf":
                continue
            if float(labels["le"]) >= p50:
                assert value >= len(values) / 2
        count = [s for s in samples if s[0] == "test_latency_count"]
        assert count[0][2] == len(values)

    def test_single_sample_round_trip(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency").observe(0.42)
        parsed = parse_exposition(render(registry))
        samples = parsed["test_latency"]["samples"]
        total = [s for s in samples if s[0] == "test_latency_sum"]
        assert total[0][2] == pytest.approx(0.42)


class TestValueFormatting:
    def test_integral_floats_drop_the_dot(self):
        assert format_value(3.0) == "3"
        assert format_value(3.5) == "3.5"

    def test_special_values(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_special_gauge_values_round_trip(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("test.special")
        gauge.set(math.inf, kind="inf")
        gauge.set(math.nan, kind="nan")
        parsed = parse_exposition(render(registry))
        values = {s[1]["kind"]: s[2]
                  for s in parsed["test_special"]["samples"]}
        assert values["inf"] == math.inf
        assert math.isnan(values["nan"])


class TestParserValidation:
    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("this is not a metric line\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition("metric_name not_a_number\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_exposition('metric{key=unquoted} 1\n')

    def test_duplicate_type_rejected(self):
        text = ("# TYPE m counter\nm_total 1\n"
                "# TYPE m gauge\nm 2\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_exposition(text)

    def test_histogram_series_attributed_to_family(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency").observe(0.1)
        parsed = parse_exposition(render(registry))
        assert set(parsed) == {"test_latency"}
        names = {s[0] for s in parsed["test_latency"]["samples"]}
        assert names == {"test_latency_bucket", "test_latency_sum",
                         "test_latency_count"}

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(b > 0 for b in DEFAULT_BUCKETS)
