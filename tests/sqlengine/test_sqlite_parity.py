"""Parity tests: the native engine must agree with SQLite.

The SQL executor lets callers pick either backend; every query our plan
renderer can generate must produce equivalent results on both.  Includes a
hypothesis sweep over generated plan steps.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.executors.sql_executor import run_sqlite_query
from repro.sqlengine import execute_sql
from repro.table import DataFrame, tables_equivalent


@pytest.fixture
def catalog(cyclists):
    return {"T0": cyclists}


PARITY_QUERIES = [
    "SELECT * FROM T0",
    "SELECT Cyclist FROM T0 WHERE Rank <= 10",
    "SELECT Cyclist, Points FROM T0 WHERE Points > 10 ORDER BY Points DESC",
    "SELECT COUNT(*) FROM T0",
    "SELECT COUNT(Uci_protour_points) FROM T0",
    "SELECT SUM(Points), MIN(Points), MAX(Points) FROM T0",
    "SELECT AVG(Points) FROM T0",
    "SELECT Team, COUNT(*) FROM T0 GROUP BY Team ORDER BY COUNT(*) DESC, Team",
    "SELECT Team, COUNT(*) AS n FROM T0 GROUP BY Team HAVING n >= 1 ORDER BY n DESC, Team",
    "SELECT DISTINCT Team FROM T0 ORDER BY Team",
    "SELECT Rank FROM T0 ORDER BY Rank DESC LIMIT 2",
    "SELECT Rank FROM T0 ORDER BY Rank LIMIT 2 OFFSET 1",
    "SELECT Cyclist FROM T0 WHERE Cyclist LIKE '%(ESP)%'",
    "SELECT Rank FROM T0 WHERE Points BETWEEN 10 AND 30 ORDER BY Rank",
    "SELECT Rank FROM T0 WHERE Rank IN (1, 2, 99)",
    "SELECT Rank FROM T0 WHERE Uci_protour_points IS NULL ORDER BY Rank",
    "SELECT UPPER(Team) FROM T0 ORDER BY 1 LIMIT 1"
    .replace("ORDER BY 1 LIMIT 1", "ORDER BY UPPER(Team) LIMIT 1"),
    "SELECT SUBSTR(Cyclist, -4, 3) AS cc, COUNT(*) FROM T0 GROUP BY cc ORDER BY COUNT(*) DESC, cc",
    "SELECT CASE WHEN Points > 20 THEN 'high' ELSE 'low' END AS tier, COUNT(*) FROM T0 GROUP BY tier ORDER BY tier",
    "SELECT Points * 2 + 1 FROM T0 WHERE Rank = 1",
    "SELECT Cyclist || '!' FROM T0 WHERE Rank = 1",
    "SELECT MAX(CASE WHEN Rank = 1 THEN Points END) - "
    "MAX(CASE WHEN Rank = 2 THEN Points END) AS diff FROM T0",
    "SELECT COALESCE(Uci_protour_points, 0) FROM T0 ORDER BY Rank",
    "SELECT LENGTH(Team) FROM T0 ORDER BY Rank",
    "SELECT REPLACE(Team, ' ', '_') FROM T0 ORDER BY Rank",
]


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_backend_parity(catalog, sql):
    native = execute_sql(sql, catalog)
    sqlite = run_sqlite_query(sql, catalog)
    assert tables_equivalent(native, sqlite, ordered="ORDER BY" in sql), \
        f"backends disagree on {sql!r}:\n{native.to_rows()}\n" \
        f"{sqlite.to_rows()}"


# --- property-based parity over generated plan steps -------------------------

names = st.sampled_from(["Rank", "Points"])
thresholds = st.integers(min_value=0, max_value=45)
comparators = st.sampled_from(["<", "<=", "=", ">=", ">"])
aggregates = st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"])


@given(column=names, op=comparators, threshold=thresholds)
@settings(max_examples=50, deadline=None)
def test_filter_parity(column, op, threshold):
    catalog = {"T0": _cyclists()}
    sql = f"SELECT Cyclist FROM T0 WHERE {column} {op} {threshold}"
    assert tables_equivalent(execute_sql(sql, catalog),
                             run_sqlite_query(sql, catalog))


@given(agg=aggregates, column=names)
@settings(max_examples=40, deadline=None)
def test_aggregate_parity(agg, column):
    catalog = {"T0": _cyclists()}
    sql = f"SELECT {agg}({column}) FROM T0"
    assert tables_equivalent(execute_sql(sql, catalog),
                             run_sqlite_query(sql, catalog))


@given(column=names, descending=st.booleans(),
       limit=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_order_limit_parity(column, descending, limit):
    catalog = {"T0": _cyclists()}
    direction = "DESC" if descending else "ASC"
    sql = (f"SELECT Cyclist, {column} FROM T0 "
           f"ORDER BY {column} {direction}, Cyclist LIMIT {limit}")
    assert tables_equivalent(execute_sql(sql, catalog),
                             run_sqlite_query(sql, catalog),
                             ordered=True)


def _cyclists() -> DataFrame:
    return DataFrame({
        "Rank": [1, 2, 3, 10],
        "Cyclist": ["Alejandro Valverde (ESP)", "Alexandr Kolobnev (RUS)",
                    "Davide Rebellin (ITA)", "David Moncoutie (FRA)"],
        "Points": [40, 30, 25, 1],
    }, name="T0")
