"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Executor failures additionally derive from
:class:`ExecutionError`, which the agent's exception handlers (Section 3.3 of
the paper) dispatch on.

Failure taxonomy
----------------

Every :class:`ReproError` subclass carries an **explicit** ``retryable``
classification (enforced by ``tools/lint_errors.py``, which runs as a
tier-1 test):

* ``retryable = True`` — *transient*: the same call may succeed if simply
  repeated (a backend blip, an expired attempt deadline).  The recovery
  stack (:class:`repro.llm.RetryingModel`, the serving pool's
  :class:`~repro.serving.policy.RetryPolicy`) retries these with
  deterministic exponential backoff.
* ``retryable = False`` — *permanent*: repeating the identical call cannot
  help (a parse bug, a missing column, bad SQL).  Retrying these wastes
  attempts and masks bugs; the degradation ladder moves straight to the
  next rung (re-seeded attempt → forced direct answer → classified error).

Transient errors additionally derive from the :class:`TransientError`
marker so ``except TransientError`` works; :func:`is_retryable` is the one
classification entry point and also covers the retryable builtins
(``ConnectionError``, ``TimeoutError``) a real API client would raise.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TransientError",
    "TableError",
    "ColumnNotFoundError",
    "SchemaError",
    "SQLError",
    "SQLSyntaxError",
    "SQLRuntimeError",
    "ExecutionError",
    "SQLExecutionError",
    "PythonExecutionError",
    "SandboxViolationError",
    "ModuleNotAllowedError",
    "AgentError",
    "ActionParseError",
    "IterationLimitError",
    "EngineProtocolError",
    "PromptError",
    "ModelError",
    "TransientModelError",
    "UnknownQuestionError",
    "DatasetError",
    "EvaluationError",
    "ServingError",
    "ServingTimeoutError",
    "CircuitOpenError",
    "QueueClosedError",
    "AdmissionRejectedError",
    "ReflectionError",
    "ReflectionUnsupportedError",
    "StrategyError",
    "UnknownStrategyError",
    "DuplicateStrategyError",
    "EnsembleSpecError",
    "OperatorParseError",
    "RETRYABLE_BUILTINS",
    "is_retryable",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Whether repeating the failed call may succeed (transient) or cannot
    #: (permanent).  Every subclass must restate this explicitly.
    retryable: bool = False


class TransientError(ReproError):
    """Marker base for transient failures: retrying the call may succeed."""

    retryable = True


class TableError(ReproError):
    """Errors raised by the DataFrame substrate (``repro.table``)."""

    retryable = False


class ColumnNotFoundError(TableError, KeyError):
    """A referenced column does not exist in the frame."""

    retryable = False

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        self.column = column
        self.available = tuple(available)
        message = f"column {column!r} not found"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.args[0]


class SchemaError(TableError):
    """A frame or column was constructed with an inconsistent schema."""

    retryable = False


class SQLError(ReproError):
    """Errors raised by the native SQL engine (``repro.sqlengine``)."""

    retryable = False


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    retryable = False

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SQLRuntimeError(SQLError):
    """The SQL parsed but failed during evaluation."""

    retryable = False


class ExecutionError(ReproError):
    """Base class for failures inside an external code executor."""

    retryable = False

    def __init__(self, message: str, *, code: str = ""):
        self.code = code
        super().__init__(message)


class SQLExecutionError(ExecutionError):
    """The SQL executor failed to run a query against any candidate table."""

    retryable = False


class PythonExecutionError(ExecutionError):
    """The Python executor raised while running generated code."""

    retryable = False


class SandboxViolationError(PythonExecutionError):
    """Generated Python attempted an operation the sandbox forbids."""

    retryable = False


class ModuleNotAllowedError(PythonExecutionError):
    """Generated Python imported a module outside the installable registry."""

    retryable = False

    def __init__(self, module: str, *, code: str = ""):
        self.module = module
        super().__init__(f"module {module!r} is not available and cannot be "
                         f"installed in this sandbox", code=code)


class AgentError(ReproError):
    """Errors raised by the ReAcTable agent loop."""

    retryable = False


class ActionParseError(AgentError):
    """The LLM completion could not be parsed into an action.

    Permanent by classification: the *same* completion will never parse,
    so the agent handles it structurally (force a direct answer) rather
    than re-asking the model for the identical prompt.
    """

    retryable = False


class IterationLimitError(AgentError):
    """The agent exceeded its hard iteration budget without answering."""

    retryable = False


class EngineProtocolError(AgentError):
    """A driver violated the sans-IO engine protocol.

    Raised when a driver sends a reply the engine is not waiting for
    (an :class:`~repro.engine.effects.ExecResult` while a model call is
    pending, a reply to a finished engine, ...).  Always a programming
    bug in the driver, never a runtime condition — repeating the call
    cannot help.
    """

    retryable = False


class PromptError(ReproError):
    """A prompt could not be built or re-parsed."""

    retryable = False


class ModelError(ReproError):
    """Errors raised by the language-model layer."""

    retryable = False


class TransientModelError(TransientError, ModelError):
    """A model backend failure that a retry may clear.

    The shape a wrapped API client (or the fault injector) raises for
    rate limits, 5xx responses, and dropped connections.
    """

    retryable = True


class UnknownQuestionError(ModelError):
    """The simulated model saw a question absent from its question bank."""

    retryable = False


class DatasetError(ReproError):
    """Errors raised while generating or loading benchmark datasets."""

    retryable = False


class EvaluationError(ReproError):
    """Errors raised by the evaluation kit."""

    retryable = False


class ServingError(ReproError):
    """Errors raised by the serving layer (``repro.serving``)."""

    retryable = False


class ServingTimeoutError(TransientError, ServingError):
    """A request attempt exceeded its serving deadline.

    Transient: a re-seeded attempt gets a fresh deadline and may complete.
    """

    retryable = True


class CircuitOpenError(ServingError):
    """A request was refused because the backend's circuit breaker is open.

    Deliberately *not* retryable at the call site: the breaker exists to
    shed load, so the correct response is to fail fast (or degrade), not
    to hammer the open circuit.
    """

    retryable = False


class QueueClosedError(ServingError):
    """An operation was attempted on a closed request queue."""

    retryable = False


class AdmissionRejectedError(TransientError, ServingError):
    """A request was shed by admission control before any work began.

    Raised by the async server when the inflight budget is exhausted and
    the fair queue is full — backpressure made typed.  Transient by
    classification: the overload that caused the shed drains, so the same
    request may succeed if re-submitted later (with client-side backoff).
    Unlike :class:`CircuitOpenError` it never enters the pool's attempt
    ladder — it is raised *to the submitter*, who decides when to retry.
    """

    retryable = True


class ReflectionError(ReproError):
    """Errors raised by the reflexion tier (``repro.reflect``).

    Permanent by classification: a reflection failure is handled
    structurally by the serving ladder (skip the rung, fall through to
    degradation), never by re-running the identical reflection.  The
    *model call* inside a reflection can still fail transiently — that
    surfaces as a :class:`TransientModelError`, not as this class.
    """

    retryable = False


class ReflectionUnsupportedError(ReflectionError):
    """The spec's runner cannot be driven through the reflect engine.

    Raised when a runner exposes neither ``engine_for`` nor
    ``chain_engines`` (tree/execution voters re-sample per step, so a
    chain-level reflection re-run has no seam to inject into).  The
    ladder treats it as "this rung does not apply", not as a failure.
    """

    retryable = False


class StrategyError(ReproError):
    """Errors raised by the strategy registry (``repro.strategies``)."""

    retryable = False


class UnknownStrategyError(StrategyError):
    """A strategy name not present in the registry was requested.

    Permanent by classification: the same lookup will never succeed —
    the caller holds a typo or an unregistered strategy, not a runtime
    condition.
    """

    retryable = False


class DuplicateStrategyError(StrategyError):
    """A strategy name was registered twice without ``replace=True``.

    Always a programming bug (two modules claiming one name), never a
    runtime condition.
    """

    retryable = False


class EnsembleSpecError(StrategyError):
    """A heterogeneous-ensemble spec string could not be parsed.

    Raised for malformed ``ensemble:a+b+c`` specs (empty member list,
    empty member names).  Unknown member *names* raise
    :class:`UnknownStrategyError` instead, at resolution time.
    """

    retryable = False


class OperatorParseError(AgentError):
    """A chain-of-table operator payload could not be parsed.

    The same payload will never parse, so the engine handles it
    structurally — force a direct answer, exactly like
    :class:`ActionParseError` on a malformed completion.
    """

    retryable = False


#: Builtin exception types treated as transient by :func:`is_retryable` —
#: what a real HTTP/API client raises for network blips.  ``TimeoutError``
#: also covers ``socket.timeout`` (an alias since Python 3.10).
RETRYABLE_BUILTINS: tuple[type[BaseException], ...] = (
    ConnectionError,
    TimeoutError,
)


def is_retryable(exc: BaseException) -> bool:
    """Classify one exception against the failure taxonomy.

    :class:`ReproError` instances answer via their explicit ``retryable``
    attribute; the builtins in :data:`RETRYABLE_BUILTINS` are transient;
    everything else (programming errors, ``KeyboardInterrupt``, ...) is
    permanent.
    """
    if isinstance(exc, ReproError):
        return bool(exc.retryable)
    return isinstance(exc, RETRYABLE_BUILTINS)
