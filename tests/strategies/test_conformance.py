"""Strategy conformance: every registered strategy, both serving ladders.

The strategy layer's core claim is substitutability — any registered
strategy (and any ensemble of them) rides the full serving stack with no
strategy-specific code in the ladders.  This suite pins that claim on a
40-question seeded WikiTQ slice, per strategy:

* **ok** — the thread-pool ladder (:class:`BatchEvaluator`) and the
  asyncio ladder (:class:`AsyncBatchEvaluator`) return bit-identical
  responses, all classified ``ok``;
* **degraded** — expired deadlines land every request on the forced
  direct answer, identically on both ladders;
* **deadline_exceeded** — with degradation disabled the terminal class
  is reported, with no answer;
* **fault-injected** — under a 20% per-call fault rate every request
  still terminates with a classified outcome on both ladders.
"""

import pytest

from repro.aio import AsyncBatchEvaluator
from repro.faults import FaultConfig, FaultyAgentSpec
from repro.serving import (
    AgentSpec,
    BatchEvaluator,
    RetryPolicy,
)
from repro.serving.request import OUTCOMES
from repro.strategies import strategy_names

#: Every registered strategy plus one heterogeneous ensemble spec —
#: the full vocabulary `AgentSpec.strategy` accepts.
ALL_STRATEGIES = tuple(strategy_names()) + ("ensemble:react+cot",)

each_strategy = pytest.mark.parametrize(
    "strategy", ALL_STRATEGIES,
    ids=[name.replace("ensemble:", "ens-") for name in ALL_STRATEGIES])


def pool_responses(spec, benchmark, *, policy=None, limit=None,
                   batch_scheduler=None):
    evaluator = BatchEvaluator(spec, workers=4, seed=1, policy=policy,
                               batch_scheduler=batch_scheduler)
    report = evaluator.evaluate(benchmark, limit=limit)
    return report, evaluator.last_responses


def async_responses(spec, benchmark, *, policy=None, limit=None):
    evaluator = AsyncBatchEvaluator(spec, max_inflight=8, seed=1,
                                    policy=policy)
    report = evaluator.evaluate(benchmark, limit=limit)
    return report, evaluator.last_responses


def assert_bit_identical(pool, async_, *, check_errors=True):
    assert len(pool) == len(async_)
    for old, new in zip(pool, async_):
        assert new.uid == old.uid
        assert new.answer == old.answer, new.uid
        assert new.iterations == old.iterations, new.uid
        assert new.forced == old.forced, new.uid
        assert new.degraded == old.degraded, new.uid
        assert new.attempts == old.attempts, new.uid
        assert new.outcome == old.outcome, new.uid
        if check_errors:
            assert new.error == old.error, new.uid


class TestOkOutcomes:
    @each_strategy
    def test_both_ladders_bit_identical(self, wikitq_small, strategy):
        spec = AgentSpec(bank=wikitq_small.bank, strategy=strategy)
        pool_report, pool = pool_responses(spec, wikitq_small)
        async_report, async_ = async_responses(spec, wikitq_small)
        assert_bit_identical(pool, async_)
        assert {r.outcome for r in pool} == {"ok"}
        assert pool_report.accuracy == async_report.accuracy
        # A conformant strategy answers: accuracy above chance, not a
        # silent all-empty run.
        assert pool_report.accuracy > 0
        assert any(r.answer for r in pool)


class TestDegradedOutcomes:
    @each_strategy
    def test_expired_deadlines_degrade_identically(self, wikitq_small,
                                                   strategy):
        spec = AgentSpec(bank=wikitq_small.bank, strategy=strategy)
        policy = RetryPolicy(timeout=1e-9, max_retries=1)
        _, pool = pool_responses(spec, wikitq_small, policy=policy,
                                 limit=10)
        _, async_ = async_responses(spec, wikitq_small, policy=policy,
                                    limit=10)
        # Timeout error strings embed wall-clock remaining time.
        assert_bit_identical(pool, async_, check_errors=False)
        assert {r.outcome for r in pool} == {"degraded"}
        assert all(r.attempts == 2 for r in pool)
        # The forced rung is the react chain regardless of strategy:
        # one iteration, forced direct answer.
        assert all(r.forced for r in pool)


class TestDeadlineExceeded:
    @each_strategy
    def test_terminal_class_with_no_answer(self, wikitq_small, strategy):
        spec = AgentSpec(bank=wikitq_small.bank, strategy=strategy)
        policy = RetryPolicy(timeout=1e-9, max_retries=0,
                             degrade_on_exhaustion=False)
        _, pool = pool_responses(spec, wikitq_small, policy=policy,
                                 limit=10)
        _, async_ = async_responses(spec, wikitq_small, policy=policy,
                                    limit=10)
        assert_bit_identical(pool, async_, check_errors=False)
        assert {r.outcome for r in pool} == {"deadline_exceeded"}
        assert all(r.answer == [] for r in pool)


class TestFaultInjected:
    @each_strategy
    def test_heavy_faults_terminate_classified_on_both_ladders(
            self, wikitq_small, strategy):
        spec = FaultyAgentSpec(
            AgentSpec(bank=wikitq_small.bank, strategy=strategy),
            FaultConfig.uniform(0.2, latency_seconds=0.0),
            model_retries=2)
        policy = RetryPolicy(max_retries=2)
        # Fault schedules are indexed by model-call arrival order, so
        # the pool must coalesce ensemble chain ticks the way the async
        # batcher always does (the voted-parity contract).
        _, pool = pool_responses(spec, wikitq_small, policy=policy,
                                 limit=10,
                                 batch_scheduler="ensemble" in strategy)
        _, async_ = async_responses(spec, wikitq_small, policy=policy,
                                    limit=10)
        assert len(pool) == 10 and len(async_) == 10
        assert all(r.outcome in OUTCOMES for r in pool + async_)
        # Fault plans are seeded per attempt, independent of substrate:
        # both ladders weather the same storm identically.
        assert_bit_identical(pool, async_, check_errors=False)
