"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Executor failures additionally derive from
:class:`ExecutionError`, which the agent's exception handlers (Section 3.3 of
the paper) dispatch on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TableError(ReproError):
    """Errors raised by the DataFrame substrate (``repro.table``)."""


class ColumnNotFoundError(TableError, KeyError):
    """A referenced column does not exist in the frame."""

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        self.column = column
        self.available = tuple(available)
        message = f"column {column!r} not found"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.args[0]


class SchemaError(TableError):
    """A frame or column was constructed with an inconsistent schema."""


class SQLError(ReproError):
    """Errors raised by the native SQL engine (``repro.sqlengine``)."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SQLRuntimeError(SQLError):
    """The SQL parsed but failed during evaluation."""


class ExecutionError(ReproError):
    """Base class for failures inside an external code executor."""

    def __init__(self, message: str, *, code: str = ""):
        self.code = code
        super().__init__(message)


class SQLExecutionError(ExecutionError):
    """The SQL executor failed to run a query against any candidate table."""


class PythonExecutionError(ExecutionError):
    """The Python executor raised while running generated code."""


class SandboxViolationError(PythonExecutionError):
    """Generated Python attempted an operation the sandbox forbids."""


class ModuleNotAllowedError(PythonExecutionError):
    """Generated Python imported a module outside the installable registry."""

    def __init__(self, module: str, *, code: str = ""):
        self.module = module
        super().__init__(f"module {module!r} is not available and cannot be "
                         f"installed in this sandbox", code=code)


class AgentError(ReproError):
    """Errors raised by the ReAcTable agent loop."""


class ActionParseError(AgentError):
    """The LLM completion could not be parsed into an action."""


class IterationLimitError(AgentError):
    """The agent exceeded its hard iteration budget without answering."""


class PromptError(ReproError):
    """A prompt could not be built or re-parsed."""


class ModelError(ReproError):
    """Errors raised by the language-model layer."""


class UnknownQuestionError(ModelError):
    """The simulated model saw a question absent from its question bank."""


class DatasetError(ReproError):
    """Errors raised while generating or loading benchmark datasets."""


class EvaluationError(ReproError):
    """Errors raised by the evaluation kit."""


class ServingError(ReproError):
    """Errors raised by the serving layer (``repro.serving``)."""


class ServingTimeoutError(ServingError):
    """A request attempt exceeded its serving deadline."""


class QueueClosedError(ServingError):
    """An operation was attempted on a closed request queue."""
