"""Deterministic retry backoff: exponential delays with seeded jitter.

Both retry layers — :class:`repro.llm.RetryingModel` at the model boundary
and the serving pool's :class:`~repro.serving.policy.RetryPolicy` between
attempts — share this schedule.  Delays grow exponentially and are
jittered, but the jitter is *seeded*: the same ``(seed, attempt)`` always
produces the same delay, so a chaos run replays bit-identically while a
fleet of requests still de-synchronises (each request seed lands on a
different point of the jitter window, which is what jitter is for).

:func:`seeded_uniform` is the underlying hash-to-[0,1) helper; the fault
injection subsystem (``repro.faults``) reuses it for its schedules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["seeded_uniform", "ExponentialBackoff"]


def seeded_uniform(*parts) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from hashable parts.

    Hashes the ``":"``-joined string forms of ``parts`` with SHA-256 and
    maps the first 8 bytes onto ``[0, 1)``.  Stable across processes and
    platforms (unlike ``hash()``), and free of shared-RNG state.
    """
    digest = hashlib.sha256(
        ":".join(str(part) for part in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ExponentialBackoff:
    """``base * factor**attempt`` capped at ``max_delay``, seeded jitter.

    ``attempt`` is 0-based (the delay before the first *retry*).  With
    ``jitter`` > 0 the delay is scaled by a factor in
    ``[1 - jitter/2, 1 + jitter/2)`` drawn deterministically from
    ``(seed, attempt)``.  ``base = 0`` disables sleeping entirely — the
    default for unit-test-speed configurations.
    """

    base: float = 0.0
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.base < 0:
            raise ValueError("base must be non-negative")
        if self.factor < 1:
            raise ValueError("factor must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, *, seed: int = 0) -> float:
        """Deterministic delay in seconds before retry ``attempt``."""
        if self.base == 0:
            return 0.0
        raw = min(self.max_delay, self.base * self.factor ** attempt)
        if self.jitter == 0:
            return raw
        swing = self.jitter * (seeded_uniform(seed, "backoff", attempt)
                               - 0.5)
        return raw * (1.0 + swing)
