"""Tests for column types, inference, coercion and name normalisation."""

import math

import pytest

from repro.errors import SchemaError
from repro.table.schema import (
    ColumnType,
    coerce_value,
    dedupe_column_names,
    infer_column_type,
    infer_value_type,
    is_missing,
    normalize_column_name,
    widen,
)


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_nan_is_missing(self):
        assert is_missing(float("nan"))

    def test_zero_is_not_missing(self):
        assert not is_missing(0)

    def test_empty_string_is_not_missing(self):
        assert not is_missing("")

    def test_false_is_not_missing(self):
        assert not is_missing(False)


class TestInferValueType:
    def test_bool(self):
        assert infer_value_type(True) is ColumnType.BOOL

    def test_int(self):
        assert infer_value_type(7) is ColumnType.INTEGER

    def test_float(self):
        assert infer_value_type(2.5) is ColumnType.REAL

    def test_str(self):
        assert infer_value_type("abc") is ColumnType.TEXT

    def test_none(self):
        assert infer_value_type(None) is ColumnType.NULL

    def test_unsupported_type_raises(self):
        with pytest.raises(SchemaError):
            infer_value_type(object())

    def test_date_becomes_text(self):
        import datetime
        assert infer_value_type(
            datetime.date(2020, 1, 1)) is ColumnType.TEXT


class TestWiden:
    def test_same_type(self):
        assert widen(ColumnType.INTEGER,
                     ColumnType.INTEGER) is ColumnType.INTEGER

    def test_null_widens_to_other(self):
        assert widen(ColumnType.NULL, ColumnType.REAL) is ColumnType.REAL
        assert widen(ColumnType.TEXT, ColumnType.NULL) is ColumnType.TEXT

    def test_int_real(self):
        assert widen(ColumnType.INTEGER,
                     ColumnType.REAL) is ColumnType.REAL

    def test_bool_int(self):
        assert widen(ColumnType.BOOL,
                     ColumnType.INTEGER) is ColumnType.INTEGER

    def test_mixed_falls_to_text(self):
        assert widen(ColumnType.INTEGER,
                     ColumnType.TEXT) is ColumnType.TEXT


class TestInferColumnType:
    def test_all_ints(self):
        assert infer_column_type([1, 2, 3]) is ColumnType.INTEGER

    def test_ints_with_none(self):
        assert infer_column_type([1, None, 3]) is ColumnType.INTEGER

    def test_empty(self):
        assert infer_column_type([]) is ColumnType.NULL

    def test_all_none(self):
        assert infer_column_type([None, None]) is ColumnType.NULL

    def test_mixed_numeric(self):
        assert infer_column_type([1, 2.5]) is ColumnType.REAL

    def test_mixed_types_text(self):
        assert infer_column_type([1, "a"]) is ColumnType.TEXT


class TestCoerceValue:
    def test_missing_stays_none(self):
        assert coerce_value(None, ColumnType.INTEGER) is None

    def test_string_to_int(self):
        assert coerce_value("42", ColumnType.INTEGER) == 42

    def test_string_with_commas_to_int(self):
        assert coerce_value("1,463", ColumnType.INTEGER) == 1463

    def test_float_to_int_when_integral(self):
        assert coerce_value(3.0, ColumnType.INTEGER) == 3

    def test_fractional_float_to_int_raises(self):
        with pytest.raises(SchemaError):
            coerce_value(3.5, ColumnType.INTEGER)

    def test_string_to_real(self):
        assert coerce_value("2.5", ColumnType.REAL) == 2.5

    def test_int_to_text(self):
        assert coerce_value(7, ColumnType.TEXT) == "7"

    def test_integral_float_to_text_drops_decimal(self):
        assert coerce_value(7.0, ColumnType.TEXT) == "7"

    def test_bool_to_text(self):
        assert coerce_value(True, ColumnType.TEXT) == "true"

    def test_yes_to_bool(self):
        assert coerce_value("yes", ColumnType.BOOL) is True

    def test_no_to_bool(self):
        assert coerce_value("No", ColumnType.BOOL) is False

    def test_bad_bool_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("maybe", ColumnType.BOOL)

    def test_bad_number_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("abc", ColumnType.REAL)

    def test_coerce_to_null_raises(self):
        with pytest.raises(SchemaError):
            coerce_value(1, ColumnType.NULL)


class TestNormalizeColumnName:
    def test_spaces_become_underscores(self):
        assert normalize_column_name("UCI ProTour Points") == \
            "uci_protour_points"

    def test_leading_digits_stripped(self):
        assert normalize_column_name("2008 Results") == "results"

    def test_special_characters_stripped(self):
        assert normalize_column_name("Time (s)!") == "time_s"

    def test_empty_falls_back(self):
        assert normalize_column_name("###") == "col"

    def test_repeated_separators_collapse(self):
        assert normalize_column_name("a -- b") == "a_b"

    def test_idempotent(self):
        once = normalize_column_name("Rank #1")
        assert normalize_column_name(once) == once


class TestDedupeColumnNames:
    def test_no_duplicates_unchanged(self):
        assert dedupe_column_names(["a", "b"]) == ["a", "b"]

    def test_duplicates_suffixed(self):
        assert dedupe_column_names(["a", "a", "a"]) == ["a", "a_2", "a_3"]

    def test_suffix_collision_avoided(self):
        assert dedupe_column_names(["a", "a_2", "a"]) == \
            ["a", "a_2", "a_3"]

    def test_empty(self):
        assert dedupe_column_names([]) == []


class TestColumnTypeProperties:
    def test_numeric_flags(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.REAL.is_numeric
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.BOOL.is_numeric

    def test_str(self):
        assert str(ColumnType.TEXT) == "text"

    def test_nan_column_is_null_typed(self):
        assert infer_column_type(
            [float("nan"), float("nan")]) is ColumnType.NULL
        assert math.isnan(float("nan"))
