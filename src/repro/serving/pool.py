"""The worker pool: N concurrent agents behind one bounded queue.

Dataflow of one request::

    submit ──► [coalesce onto identical in-flight request?]
           ──► RequestQueue ──► worker thread
                                  ├─ AnswerCache lookup ── hit ──► response
                                  └─ miss: circuit breaker allow?
                                        │  fresh agent (request seed)
                                        │  attempt deadline (DeadlineModel)
                                        │  bounded retries (reseeded,
                                        │    deterministic backoff)
                                        │  exhausted → forced direct answer
                                        │  even that failed → classified
                                        │    error (taxonomy)
                                        ▼
                                     cache store ──► response

Determinism: each attempt builds a fresh runner from the spec with a seed
derived only from the request seed and attempt number, so responses do not
depend on worker count or dispatch order.

Every request terminates with a **classified outcome** on the degradation
ladder (``ok`` → ``retried`` → ``reflected`` → ``degraded`` →
``deadline_exceeded`` / ``error_transient`` / ``error_permanent``;
see :data:`repro.serving.request.OUTCOMES`) — no
exception escapes a worker.  The optional reflexion rung
(``reflect=ReflectPolicy(...)`` or ``REPRO_REFLECT=1``; see
:class:`~repro.serving.policy.ReflectionRung`) sits between the retry
ladder and degradation: it harvests the failure, generates a verbal
reflection through the effect seam, and re-runs the chains with the
reflection injected into every prompt.  A per-backend
:class:`~repro.serving.breaker.CircuitBreaker` (enabled via
``breakers=BreakerConfig(...)``) fails requests fast while the backend is
down instead of queueing retries behind it.

Lifecycle events (``enqueue``, ``dispatch``, ``cache_hit``,
``cache_miss``, ``coalesce``, ``timeout``, ``retry``, ``backoff``,
``breaker_reject``, ``breaker_transition``, ``degraded``, ``error``,
``complete``) are emitted to an optional
:class:`~repro.tracing.ChainTracer`.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import (
    CircuitOpenError,
    QueueClosedError,
    ServingError,
    ServingTimeoutError,
    is_retryable,
)
from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.serving.cache import AnswerCache, CachedAnswer, request_fingerprint
from repro.serving.metrics import ServingMetrics
from repro.serving.policy import (
    DeadlineModel,
    ReflectionRung,
    ReflectPolicy,
    RetryPolicy,
    classify_failure,
)
from repro.serving.request import (
    PendingResponse,
    RequestQueue,
    TQARequest,
    TQAResponse,
)
from repro.table.frame import DataFrame
from repro.telemetry.spans import Telemetry, activate, span

__all__ = ["WorkerPool"]


class WorkerPool:
    """Serve TQA requests over ``workers`` concurrent agent threads.

    ``spec`` is an :class:`~repro.serving.spec.AgentSpec` (or any object
    with ``build(seed)`` / ``build_forced(seed)`` / ``config_key``).
    Optional collaborators: an :class:`AnswerCache` (enables caching *and*
    in-flight request coalescing), a :class:`RetryPolicy`, a
    :class:`ServingMetrics` aggregator, a
    :class:`~repro.tracing.ChainTracer`, and a
    :class:`~repro.serving.breaker.BreakerConfig` (``breakers=``) that
    arms a circuit breaker for the spec's backend.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`.
    """

    def __init__(self, spec, *, workers: int = 4,
                 cache: AnswerCache | None = None,
                 policy: RetryPolicy | None = None,
                 metrics: ServingMetrics | None = None,
                 tracer=None, queue_capacity: int = 256,
                 breakers: BreakerConfig | None = None,
                 telemetry: Telemetry | None = None,
                 batch_scheduler: bool | None = None,
                 reflect: ReflectPolicy | bool | None = None,
                 sleep=time.sleep):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workers = workers
        self.cache = cache
        self.policy = policy or RetryPolicy()
        self.metrics = metrics or ServingMetrics()
        self.tracer = tracer
        # Span store for the request/attempt/agent tree.  Defaults to the
        # tracer's store so flat serving events and hierarchical spans
        # land in one trace file.
        if telemetry is None and tracer is not None:
            telemetry = getattr(tracer, "telemetry", None)
        self.telemetry = telemetry
        # Batched-driver flag: voted runners that support the sans-IO
        # BatchScheduler (``use_scheduler``) coalesce their per-chain
        # model calls into batched completions.  ``None`` defers to the
        # ``REPRO_BATCH_SCHEDULER=1`` environment switch.
        if batch_scheduler is None:
            batch_scheduler = (
                os.environ.get("REPRO_BATCH_SCHEDULER", "0") == "1")
        self.batch_scheduler = batch_scheduler
        # The reflexion rung: ``None`` defers to ``REPRO_REFLECT=1``,
        # ``True`` arms the default policy, ``False`` forces it off.
        if reflect is None:
            reflect = ReflectPolicy.from_env()
        elif reflect is True:
            reflect = ReflectPolicy()
        elif reflect is False:
            reflect = None
        self.reflect_policy = reflect
        self._reflect_rung: ReflectionRung | None = None
        if reflect is not None:
            self._reflect_rung = ReflectionRung(
                spec, self.policy, reflect, metrics=self.metrics)
        self.queue = RequestQueue(queue_capacity)
        self._sleep = sleep
        self._threads: list[threading.Thread] = []
        self._inflight: dict[str, PendingResponse] = {}
        self._inflight_lock = threading.Lock()
        self._request_counter = 0
        self._started = False
        self._breaker: CircuitBreaker | None = None
        if breakers is not None:
            backend = getattr(spec, "profile", None) or "default"
            self._breaker = CircuitBreaker(
                backend, config=breakers,
                on_transition=self._on_breaker_transition)

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The spec backend's circuit breaker (``None`` when disabled)."""
        return self._breaker

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"tqa-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, *, wait: bool = True) -> None:
        """Close the queue; with ``wait``, join workers after it drains."""
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # --- submission ---------------------------------------------------------

    def submit(self, table: DataFrame, question: str, *, seed: int = 0,
               uid: str = "") -> PendingResponse:
        """Enqueue one question; returns a :class:`PendingResponse`."""
        return self.submit_request(
            TQARequest(table=table, question=question, seed=seed, uid=uid))

    def submit_request(self, request: TQARequest) -> PendingResponse:
        if not self._started:
            raise ServingError("pool is not running (call start())")
        with self._inflight_lock:
            self._request_counter += 1
            chain = self._request_counter
        uid = request.uid or f"req-{chain}"
        key = None
        if self.cache is not None:
            key = request_fingerprint(request, config=self.spec.config_key)
            # Coalesce onto an identical in-flight computation: the
            # duplicate never reaches the queue.
            with self._inflight_lock:
                primary = self._inflight.get(key)
                if primary is not None:
                    slot = PendingResponse()
                    primary.add_listener(slot, uid)
                    self.metrics.record_coalesced()
                    self._trace(chain, "coalesce", uid=uid)
                    return slot
                slot = PendingResponse()
                self._inflight[key] = slot
        else:
            slot = PendingResponse()
        self._trace(chain, "enqueue", uid=uid,
                    question=request.question)
        try:
            self.queue.put((chain, uid, key, request, slot))
        except QueueClosedError:
            self._forget_inflight(key)
            raise
        self.metrics.record_submit(self.queue.depth)
        return slot

    # --- worker internals ---------------------------------------------------

    def _trace(self, chain: int, kind: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit_for(chain, f"serving_{kind}", 0, **data)

    def _on_breaker_transition(self, backend: str, old_state: str,
                               new_state: str) -> None:
        self.metrics.record_breaker_transition(old_state, new_state)
        self._trace(0, "breaker_transition", backend=backend,
                    old_state=old_state, new_state=new_state)

    def _forget_inflight(self, key: str | None) -> None:
        if key is None:
            return
        with self._inflight_lock:
            self._inflight.pop(key, None)

    def _worker_loop(self) -> None:
        while True:
            try:
                chain, uid, key, request, slot = self.queue.get()
            except QueueClosedError:
                return
            self._trace(chain, "dispatch", uid=uid,
                        queue_depth=self.queue.depth)
            try:
                response = self._answer(chain, uid, key, request)
            except Exception as exc:  # last-resort: never drop a slot
                response = TQAResponse(
                    uid=uid, answer=[],
                    error=f"{type(exc).__name__}: {exc}",
                    outcome=self._classify_failure(exc))
            slot.set(response)
            self._forget_inflight(key)
            self.metrics.record_response(response)
            self._trace(chain, "complete", uid=uid,
                        answer=response.answer_text,
                        cached=response.cached,
                        degraded=response.degraded,
                        outcome=response.outcome,
                        latency=round(response.latency, 6))

    #: Terminal-error classification, shared with the async server so
    #: both paths classify identically (differential parity contract).
    _classify_failure = staticmethod(classify_failure)

    def _answer(self, chain: int, uid: str, key: str | None,
                request: TQARequest) -> TQAResponse:
        # One span per request roots the tree: the attempt ladder, the
        # agent run inside it, and the SQL/Python stages below all nest
        # under this span (and their token totals fold into it).
        with activate(self.telemetry), \
                span("request", trace_id=chain, uid=uid) as request_span:
            response = self._answer_inner(chain, uid, key, request)
            if request_span is not None:
                request_span.set(outcome=response.outcome,
                                 cached=response.cached,
                                 degraded=response.degraded,
                                 attempts=response.attempts)
            return response

    def _answer_inner(self, chain: int, uid: str, key: str | None,
                      request: TQARequest) -> TQAResponse:
        started = time.perf_counter()
        if key is not None:
            cached = self.cache.get(key)
            hit = cached is not None
            self.metrics.record_cache(hit)
            self._trace(chain, "cache_hit" if hit else "cache_miss",
                        uid=uid)
            if hit:
                return cached.to_response(
                    uid, latency=time.perf_counter() - started)
        result = None
        last_error = ""
        last_exc: Exception | None = None
        attempts = 0
        breaker = self._breaker
        for attempt in range(self.policy.max_attempts):
            if breaker is not None and not breaker.allow():
                # Fail fast: no point burning reseeded attempts against
                # an open circuit — drop to the degradation rung.
                last_exc = CircuitOpenError(
                    f"backend {breaker.backend!r} circuit is open")
                last_error = str(last_exc)
                self.metrics.record_breaker_rejection()
                self._trace(chain, "breaker_reject", uid=uid,
                            attempt=attempt + 1,
                            backend=breaker.backend)
                break
            attempts = attempt + 1
            seed = self.policy.attempt_seed(request.seed, attempt)
            try:
                with span("attempt", index=attempts):
                    result = self._run_attempt(request, seed)
                if breaker is not None:
                    breaker.record_success()
                break
            except ServingTimeoutError as exc:
                last_exc = exc
                last_error = str(exc)
                self.metrics.record_timeout()
                self._trace(chain, "timeout", uid=uid, attempt=attempts)
            except CircuitOpenError as exc:
                # A circuit opened *mid-attempt* (e.g. a nested serving
                # layer): account it as a rejection, not a fresh backend
                # failure, and stop burning attempts — same treatment as
                # the pre-attempt allow() refusal above.
                last_exc = exc
                last_error = str(exc)
                self.metrics.record_breaker_rejection()
                self._trace(chain, "breaker_reject", uid=uid,
                            attempt=attempts, mid_attempt=True)
                break
            except Exception as exc:
                last_exc = exc
                last_error = f"{type(exc).__name__}: {exc}"
                self._trace(chain, "error", uid=uid, attempt=attempts,
                            error=last_error,
                            retryable=is_retryable(exc))
            if breaker is not None:
                breaker.record_failure()
            if attempt + 1 < self.policy.max_attempts:
                self.metrics.record_retry()
                self._trace(chain, "retry", uid=uid,
                            next_attempt=attempts + 1)
                delay = self.policy.backoff_delay(request.seed, attempt)
                if delay > 0:
                    self.metrics.record_backoff(delay)
                    self._trace(chain, "backoff", uid=uid,
                                delay=round(delay, 6))
                    self._sleep(delay)
        reflections = 0
        reflected = False
        if self._reflect_rung is not None:
            # The reflexion rung: harvest the failure, reflect verbally,
            # re-run the chains with the reflection injected.
            result, reflections, reflected, last_exc, last_error = (
                self._reflect_rung.attempt(
                    request, result, last_exc, last_error=last_error,
                    attempts=attempts, breaker=breaker,
                    trace=lambda kind, **data: self._trace(
                        chain, kind, uid=uid, **data)))
        degraded = False
        if result is None and self.policy.degrade_on_exhaustion:
            # The §3.3 fallback rung: one-iteration forced direct answer.
            degraded = True
            self._trace(chain, "degraded", uid=uid)
            try:
                with span("degraded_attempt"):
                    result = self.spec.build_forced(request.seed).run(
                        request.table, request.question)
            except Exception as exc:
                last_exc = exc
                last_error = f"{type(exc).__name__}: {exc}"
                result = None
        if result is None:
            # The final rung: a terminal error, classified.
            return TQAResponse(uid=uid, answer=[], degraded=degraded,
                               attempts=attempts, reflections=reflections,
                               error=last_error,
                               latency=time.perf_counter() - started,
                               outcome=self._classify_failure(last_exc))
        outcome = ("degraded" if degraded
                   else "reflected" if reflected
                   else "retried" if attempts > 1 else "ok")
        response = TQAResponse(
            uid=uid, answer=list(result.answer),
            iterations=getattr(result, "iterations", 0),
            forced=bool(getattr(result, "forced", False)) or degraded,
            handling_events=list(
                getattr(result, "handling_events", ()) or ()),
            degraded=degraded, attempts=attempts, reflections=reflections,
            error=last_error,
            latency=time.perf_counter() - started, outcome=outcome)
        # Only clean first-class results are reusable; degraded answers
        # depend on wall-clock luck and must not poison the cache.
        if key is not None and not degraded:
            self.cache.put(key, CachedAnswer.from_response(response))
        return response

    def _run_attempt(self, request: TQARequest, seed: int):
        runner = self.spec.build(seed)
        if self.batch_scheduler and hasattr(runner, "use_scheduler"):
            runner.use_scheduler = True
        deadline = self.policy.deadline()
        if deadline is not None:
            if hasattr(runner, "model"):
                runner.model = DeadlineModel(runner.model, deadline)
            else:
                # A configured timeout that cannot be enforced must not
                # pass silently: the request would run unbounded.  Count
                # it (alarmable) and trace it, then run anyway — shedding
                # the request entirely would be worse than running it.
                self.metrics.record_deadline_unattached()
                self._trace(0, "deadline_unattached", uid=request.uid,
                            runner=type(runner).__name__)
        return runner.run(request.table, request.question)
