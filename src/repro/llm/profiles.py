"""Model profiles: the behavioural parameters of the simulated LLMs.

Three profiles stand in for the three GPT-series models of Section 4.4.
The *mechanisms* are shared (grounding bonus from intermediate tables,
error compounding in one-shot CoT, temperature sensitivity, log-prob
calibration); the profiles differ only in parameter values, the way real
models differ in capability:

* ``codex-sim``   — strong code model, well-calibrated, exposes log-probs.
* ``davinci-sim`` — instruction model: weaker code skill, more syntax
  errors, but sharply calibrated log-probs (execution-based voting helps
  it most, as the paper observes for text-davinci-003).
* ``turbo-sim``   — chat model: lowest skill, wraps answers in prose that
  breaks the structured WikiTQ evaluator, and exposes **no** log-probs
  (execution-based voting is N.A., as the paper notes for gpt-3.5-turbo).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.corruption import ErrorMode

__all__ = ["ModelProfile", "PROFILES", "get_profile",
           "CODEX_SIM", "DAVINCI_SIM", "TURBO_SIM"]


@dataclass(frozen=True)
class ModelProfile:
    """All knobs of one simulated model."""

    name: str

    # --- step success model (logit scale) ---------------------------------
    #: Base competence; higher = more steps succeed.
    skill: float
    #: Multiplier applied to the example's latent difficulty.
    difficulty_scale: float = 5.2
    #: Std-dev of the per-question latent noise (correlated across samples;
    #: this is what keeps majority voting honest).
    question_noise: float = 1.1
    #: Scale of the per-sample noise (the step logit is divided by this
    #: before the Bernoulli draw); 1.0 = a standard logistic link.
    sample_noise: float = 1.0
    #: Probability that a completion inside one n>1 batch is sampled
    #: independently of its batch mates.  Real n-sampling at a single step
    #: is sharply peaked — most of the batch is near-identical — which is
    #: why step-level voting (t-vote/e-vote) amplifies far less than
    #: running n independent chains (s-vote), as Tables 1/2 show.
    batch_diversity: float = 0.26
    #: Logit bonus per intermediate table already produced (capped at 3) —
    #: the paper's core mechanism: progressive refinement grounds later
    #: steps.
    grounding_bonus: float = 0.55
    #: Logit penalty per step when generating the whole program in one
    #: completion (Codex-CoT mode): no grounding, compounding context drift.
    cot_penalty: float = 0.95
    #: Logit penalty per unit of sampling temperature.
    temperature_sensitivity: float = 0.65
    #: Additional temperature penalty in one-shot CoT mode — without
    #: intermediate tables to re-anchor on, sampling noise compounds
    #: (this is why Codex-CoT *loses* accuracy under s-vote, Table 4).
    cot_temperature_sensitivity: float = 0.55
    #: Extra penalty when a Python-affine step must be attempted in SQL
    #: (the Tables 8/9 executor ablation).
    sql_fallback_penalty: float = 2.8
    #: Probability the model skips the awkward SQL reformulation entirely
    #: and answers directly (the Section 4.3.3 "Spain" failure mode).
    fallback_giveup_rate: float = 0.65
    #: Fraction of the CoT penalty relieved when the one-shot program is
    #: written with a plan comment before each block (the commented-code
    #: strategy, arxiv 2602.00543): the comments scaffold the plan the
    #: way intermediate tables ground the chain, but only partially —
    #: the program is still generated blind.
    commented_relief: float = 0.35

    # --- answer step -------------------------------------------------------
    #: Base competence for reading the final table into an answer.
    answer_skill: float = 3.4
    #: Probability of answering before the plan is complete.
    premature_answer_rate: float = 0.02
    #: Extra logit penalty for *mental execution* on top of the CoT
    #: penalty — when forced to answer early the model simulates the
    #: remaining steps in its head at CoT-like reliability (this is why an
    #: iteration limit of 1 scores close to the Codex-CoT baseline:
    #: 49.2%% vs 49.4%% in the paper).  0 = exactly CoT reliability.
    mental_penalty: float = 0.0

    # --- behavioural quirks -------------------------------------------------
    #: Chance a *correct* final answer is wrapped in a natural-language
    #: sentence (chat-model behaviour; breaks the WikiTQ evaluator).
    verbose_answer_rate: float = 0.0
    #: Chance a correct Python step gratuitously imports an installable
    #: module (rescued by the runtime-install handler).
    module_quirk_rate: float = 0.03
    #: Logit bonus scaled by the similarity of the most relevant few-shot
    #: demonstration to the live question.  0 for the stock paper
    #: profiles (their demonstrations are static); the few-shot-selection
    #: extension (core.fewshot) raises it via dataclasses.replace.
    demo_affinity: float = 0.0
    #: Logit bonus per verbal reflection prepended to the prompt (capped
    #: at 2) — the Reflexion mechanism: a diagnosis of the previous
    #: failure steers the re-run away from the same mistake.  Inert on
    #: every plain chain (no reflections -> no term), so the stock
    #: differential suites are unaffected by its presence.
    reflection_bonus: float = 0.9

    # --- error modes ---------------------------------------------------------
    error_mode_weights: dict = field(default_factory=lambda: {
        ErrorMode.WRONG_CONSTANT: 0.30,
        ErrorMode.WRONG_AGGREGATE: 0.16,
        ErrorMode.FLIPPED_ORDER: 0.12,
        ErrorMode.WRONG_COLUMN: 0.14,
        ErrorMode.STALE_COLUMN: 0.14,
        ErrorMode.SYNTAX_ERROR: 0.08,
        ErrorMode.MODULE_HALLUCINATION: 0.06,
    })

    # --- log-probabilities ----------------------------------------------------
    provides_logprobs: bool = True
    logprob_correct_mean: float = -1.2
    logprob_wrong_mean: float = -4.5
    logprob_std: float = 0.6


CODEX_SIM = ModelProfile(
    name="codex-sim",
    skill=1.82,
    answer_skill=3.4,
    verbose_answer_rate=0.0,
)

DAVINCI_SIM = ModelProfile(
    name="davinci-sim",
    skill=1.62,
    answer_skill=3.2,
    temperature_sensitivity=0.45,
    batch_diversity=0.30,
    verbose_answer_rate=0.02,
    # Weaker code generation: more outright syntax errors; but tight
    # log-prob calibration, so execution-based voting filters well.
    error_mode_weights={
        ErrorMode.WRONG_CONSTANT: 0.24,
        ErrorMode.WRONG_AGGREGATE: 0.14,
        ErrorMode.FLIPPED_ORDER: 0.10,
        ErrorMode.WRONG_COLUMN: 0.16,
        ErrorMode.STALE_COLUMN: 0.12,
        ErrorMode.SYNTAX_ERROR: 0.18,
        ErrorMode.MODULE_HALLUCINATION: 0.06,
    },
    logprob_correct_mean=-1.4,
    logprob_wrong_mean=-4.2,
    logprob_std=0.7,
)

TURBO_SIM = ModelProfile(
    name="turbo-sim",
    skill=1.25,
    answer_skill=2.6,
    temperature_sensitivity=0.62,
    # The chat-model failure mode Section 4.4 highlights: technically
    # correct answers in prose the structured evaluator rejects.
    verbose_answer_rate=0.08,
    premature_answer_rate=0.05,
    provides_logprobs=False,
)

PROFILES = {
    profile.name: profile
    for profile in (CODEX_SIM, DAVINCI_SIM, TURBO_SIM)
}

#: Aliases matching the paper's model identifiers.
_ALIASES = {
    "code-davinci-002": "codex-sim",
    "codex": "codex-sim",
    "text-davinci-003": "davinci-sim",
    "gpt-3.5-turbo": "turbo-sim",
    "gpt3.5-turbo": "turbo-sim",
}


def get_profile(name: str) -> ModelProfile:
    """Resolve a profile by name or paper alias."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return PROFILES[key]
    except KeyError:
        raise KeyError(
            f"unknown model profile {name!r} "
            f"(known: {', '.join(sorted(PROFILES))})") from None
