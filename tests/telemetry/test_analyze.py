"""Tests for TraceAnalyzer: tree queries, breakdowns, text rendering."""

import pytest

from repro.telemetry import TraceAnalyzer


def span(span_id, *, kind, trace_id=1, parent_id=None, start=0.0,
         end=0.0, attrs=None, prompt=0, completion=0, calls=0):
    return {
        "type": "span", "span_id": span_id, "trace_id": trace_id,
        "parent_id": parent_id, "kind": kind, "start": start, "end": end,
        "status": "ok", "attrs": attrs or {},
        "prompt_tokens": prompt, "completion_tokens": completion,
        "model_calls": calls,
    }


def make_trace():
    """Two requests; request 1 has a deep tree with known timings."""
    spans = [
        span(1, kind="request", trace_id=1, start=0.0, end=1.0,
             attrs={"uid": "q0"}, prompt=200, completion=20, calls=2),
        span(2, kind="iteration", trace_id=1, parent_id=1,
             start=0.0, end=0.6),
        span(3, kind="model_call", trace_id=1, parent_id=2,
             start=0.0, end=0.5, prompt=200, completion=20, calls=2),
        span(4, kind="execute", trace_id=1, parent_id=2,
             start=0.5, end=0.6),
        span(5, kind="iteration", trace_id=1, parent_id=1,
             start=0.6, end=0.9),
        span(6, kind="request", trace_id=2, start=0.0, end=0.2,
             attrs={"uid": "q1"}, prompt=50, completion=5, calls=1),
    ]
    events = [{"kind": "start", "chain_id": 1, "iteration": 0, "at": 0.0}]
    return {"meta": {}, "spans": spans, "events": events}


class TestTreeQueries:
    def test_roots_in_start_order(self):
        analyzer = TraceAnalyzer(make_trace())
        assert [r["trace_id"] for r in analyzer.roots()] == [1, 2]

    def test_children_sorted_by_start(self):
        analyzer = TraceAnalyzer(make_trace())
        root = analyzer.roots()[0]
        assert [c["span_id"] for c in analyzer.children(root)] == [2, 5]

    def test_depth_counts_levels(self):
        analyzer = TraceAnalyzer(make_trace())
        roots = analyzer.roots()
        assert analyzer.depth(roots[0]) == 3
        assert analyzer.depth(roots[1]) == 1

    def test_self_time_subtracts_direct_children(self):
        analyzer = TraceAnalyzer(make_trace())
        root = analyzer.roots()[0]
        # 1.0s total, children cover 0.6 + 0.3.
        assert analyzer.self_time(root) == pytest.approx(0.1)


class TestBreakdownsAndSummaries:
    def test_stage_breakdown_counts_and_totals(self):
        analyzer = TraceAnalyzer(make_trace())
        stages = analyzer.stage_breakdown(analyzer.roots()[0])
        assert stages["iteration"]["count"] == 2
        assert stages["iteration"]["total"] == 0.9
        assert stages["model_call"]["total"] == 0.5
        assert stages["execute"]["count"] == 1

    def test_request_summary_fields(self):
        analyzer = TraceAnalyzer(make_trace())
        summary = analyzer.request_summary(analyzer.roots()[0])
        assert summary["trace_id"] == 1
        assert summary["depth"] == 3
        assert summary["spans"] == 5
        assert summary["prompt_tokens"] == 200
        assert summary["total_tokens"] == 220
        assert summary["model_calls"] == 2
        assert summary["attrs"]["uid"] == "q0"

    def test_trace_summary_totals(self):
        analyzer = TraceAnalyzer(make_trace())
        summary = analyzer.summary()
        assert summary["total_requests"] == 2
        assert summary["total_spans"] == 6
        assert summary["total_events"] == 1
        assert summary["prompt_tokens"] == 250
        assert summary["completion_tokens"] == 25
        assert summary["model_calls"] == 3

    def test_critical_path_follows_longest_child(self):
        analyzer = TraceAnalyzer(make_trace())
        path = analyzer.critical_path(analyzer.roots()[0])
        assert [s["kind"] for s in path] == \
            ["request", "iteration", "model_call"]

    def test_empty_trace_degrades_gracefully(self):
        analyzer = TraceAnalyzer({"meta": {}, "spans": [], "events": []})
        assert analyzer.roots() == []
        assert analyzer.summary()["total_requests"] == 0
        assert analyzer.critical_path_text() == "no spans in trace"
        assert analyzer.flamegraph_text() == "no spans in trace"


class TestTextRendering:
    def test_summary_text_mentions_requests_and_tokens(self):
        text = TraceAnalyzer(make_trace()).summary_text()
        assert "trace: 2 request(s), 6 spans, 1 events" in text
        assert "tokens: 250 prompt + 25 completion (3 model calls)" in text
        assert "request q0 [request]" in text
        assert "depth=3" in text

    def test_critical_path_text_renders_hops(self):
        text = TraceAnalyzer(make_trace()).critical_path_text()
        assert "request q0:" in text
        assert "-> request" in text
        assert "-> model_call" in text

    def test_flamegraph_bars_scale_with_duration(self):
        text = TraceAnalyzer(make_trace()).flamegraph_text(width=10)
        lines = text.splitlines()
        root_line = next(l for l in lines if l.startswith("request q0"))
        assert "1000.00ms" in root_line
        bar_of = {l.split()[0]: l.split("|")[1] for l in lines if "|" in l}
        # model_call is half the request: about half the bar width.
        assert len(bar_of["request"]) == 10
        assert len(bar_of["model_call"]) == 5
