"""Cross-strategy evaluation matrix: every strategy × every suite.

The ``repro bench strategies`` subcommand (and the tier-2 benchmark
``benchmarks/bench_strategy_matrix.py``) runs every registered strategy
plus the heterogeneous ensemble over seeded WikiTQ and TabFact suites
and renders one accuracy matrix.  The interesting shape, mirroring the
paper's voting tables: approach diversity is a second axis of ensembling
— the ensemble row should match or beat the best single strategy on at
least one suite, because majority across *approaches* votes down the
failure modes idiosyncratic to each.
"""

from __future__ import annotations

from repro.datasets import generate_dataset
from repro.evalkit import evaluate_agent
from repro.llm import SimulatedTQAModel, get_profile
from repro.strategies.agent import StrategyAgent
from repro.strategies.ensemble import HeterogeneousEnsemble
from repro.strategies.registry import strategy_names

__all__ = ["DATASETS", "ENSEMBLE_ROW", "run_matrix", "render_matrix",
           "best_single"]

DATASETS = ("wikitq", "tabfact")
#: Key of the synthetic matrix row holding the heterogeneous ensemble.
ENSEMBLE_ROW = "ensemble"
#: Benchmark seed shared with ``benchmarks/harness.py``.
DATASET_SEED = 11
MODEL_SEED = 1


def run_matrix(*, datasets: tuple[str, ...] = DATASETS, size: int = 60,
               seed: int = DATASET_SEED, model_seed: int = MODEL_SEED,
               profile: str = "codex-sim",
               strategies: tuple[str, ...] | None = None,
               use_scheduler: bool = False) -> dict[str, dict[str, float]]:
    """Accuracy per ``{dataset: {strategy: accuracy}}`` cell.

    Each cell gets a fresh model (same seed), so strategies see identical
    stochastic conditions and the columns are directly comparable.  The
    ensemble votes across *all* the evaluated strategies.
    """
    names = tuple(strategies) if strategies else strategy_names()
    results: dict[str, dict[str, float]] = {}
    for dataset in datasets:
        benchmark = generate_dataset(dataset, size=size, seed=seed)
        cells: dict[str, float] = {}
        for name in names:
            model = SimulatedTQAModel(benchmark.bank, get_profile(profile),
                                      seed=model_seed)
            agent = StrategyAgent(model, strategy=name)
            cells[name] = evaluate_agent(agent, benchmark).accuracy
        model = SimulatedTQAModel(benchmark.bank, get_profile(profile),
                                  seed=model_seed)
        ensemble = HeterogeneousEnsemble(model, names,
                                         use_scheduler=use_scheduler)
        cells[ENSEMBLE_ROW] = evaluate_agent(ensemble, benchmark).accuracy
        results[dataset] = cells
    return results


def best_single(cells: dict[str, float]) -> tuple[str, float]:
    """The best non-ensemble row of one dataset column."""
    singles = {name: acc for name, acc in cells.items()
               if name != ENSEMBLE_ROW}
    name = max(singles, key=singles.get)
    return name, singles[name]


def render_matrix(results: dict[str, dict[str, float]], *, size: int,
                  profile: str = "codex-sim") -> str:
    """ASCII matrix: strategy rows × dataset columns."""
    datasets = list(results)
    rows = list(next(iter(results.values())))
    title = (f"Cross-strategy evaluation matrix "
             f"({profile}, {size} questions/suite)")
    header = f"{'Strategy':<18}" + "".join(
        f"{dataset:>10}" for dataset in datasets)
    lines = [title, "=" * max(len(title), len(header)), header,
             "-" * len(header)]
    for row in rows:
        label = row if row != ENSEMBLE_ROW else "ensemble (all)"
        cells = "".join(f"{results[dataset][row]:>10.1%}"
                        for dataset in datasets)
        lines.append(f"{label:<18}{cells}")
    lines.append("-" * len(header))
    best = "".join(f"{best_single(results[dataset])[0]:>10}"
                   for dataset in datasets)
    lines.append(f"{'best single':<18}{best}")
    lines.append("")
    lines.append("The ensemble row votes one branch per strategy "
                 "(majority across the\nextracted answers); approach "
                 "diversity complements sampling diversity.")
    return "\n".join(lines)
