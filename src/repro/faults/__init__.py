"""Deterministic fault injection (the chaos-engineering subsystem).

Everything the robustness story rests on: seeded per-call fault schedules
(:mod:`~repro.faults.plan`), injector wrappers for the model and executor
boundaries (:mod:`~repro.faults.injectors`), a single-seam injector for
sans-IO engine drivers (:mod:`~repro.faults.effects`), and a spec harness
that installs them behind the serving pool (:mod:`~repro.faults.harness`).
Schedules are pure functions of ``(seed, site, call index)`` — chaos runs
replay bit-identically, and a zero-rate injector is a pure pass-through.

Drive it from the CLI: ``python -m repro chaos wikitq --rates 0,0.05,0.2``.
"""

from repro.faults.effects import FaultyEffectHandler
from repro.faults.harness import FaultyAgentSpec
from repro.faults.injectors import FaultyExecutor, FaultyModel
from repro.faults.plan import (
    EXECUTOR_FAULT_KINDS,
    MODEL_FAULT_KINDS,
    FaultConfig,
    FaultPlan,
)

__all__ = [
    "MODEL_FAULT_KINDS",
    "EXECUTOR_FAULT_KINDS",
    "FaultConfig",
    "FaultPlan",
    "FaultyModel",
    "FaultyExecutor",
    "FaultyEffectHandler",
    "FaultyAgentSpec",
]
