"""Tests for the Codex-CoT baseline agent."""

from repro.core import CodexCoTAgent
from repro.llm import ScriptedModel


QUESTION = "which country had the most cyclists finish in the top 10?"


class TestCodexCoT:
    def test_single_completion_chain(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0 "
            "WHERE Rank <= 10;```.\n"
            "ReAcTable: Python: ```T1['Country'] = T1.apply(lambda x: "
            "re.search(r\"\\((\\w+)\\)\", x['Cyclist']).group(1), "
            "axis=1)```.\n"
            "ReAcTable: Answer: ```ESP```.",
        ])
        result = CodexCoTAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["ESP"]
        assert result.iterations == 1           # one LLM call
        assert len(model.prompts) == 1
        assert len(result.transcript.tables) == 3  # blocks executed

    def test_prompt_is_cot_style(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```x```."])
        CodexCoTAgent(model).run(cyclists, QUESTION)
        assert "in a single response" in model.prompts[0]
        assert "Intermediate table" not in model.prompts[0]

    def test_crashing_block_does_not_stop_answer(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Nope FROM T0;```.\n"
            "ReAcTable: Answer: ```blind guess```.",
        ])
        result = CodexCoTAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["blind guess"]
        assert any("failed" in event
                   for event in result.handling_events)

    def test_no_answer_line_yields_empty(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
        ])
        result = CodexCoTAgent(model).run(cyclists, QUESTION)
        assert result.answer == []

    def test_blank_and_garbage_lines_skipped(self, cyclists):
        model = ScriptedModel([
            "\nsome reasoning prose\n"
            "ReAcTable: Answer: ```fine```.\n",
        ])
        result = CodexCoTAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["fine"]

    def test_stops_at_first_answer(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: Answer: ```first```.\n"
            "ReAcTable: Answer: ```second```.",
        ])
        result = CodexCoTAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["first"]
