"""The result record one chain produces.

Historically this lived in ``repro.core.agent``; it moved here with the
sans-IO refactor because every driver (sync agent, CoT baseline, batch
scheduler) finishes a chain by reading the same record off the engine.
``repro.core.agent`` re-exports it, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.prompt import Transcript

__all__ = ["AgentResult"]


@dataclass
class AgentResult:
    """Everything one chain produced."""

    answer: list[str]                 # predicted answer values
    transcript: Transcript
    iterations: int                   # LLM calls made (code steps + answer)
    forced: bool = False              # answer was forced by error/limit
    handling_events: list[str] = field(default_factory=list)

    @property
    def answer_text(self) -> str:
        return "|".join(self.answer)
