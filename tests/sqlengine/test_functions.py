"""Tests for the scalar SQL functions."""

import pytest

from repro.errors import SQLRuntimeError
from repro.sqlengine.functions import call_scalar, is_aggregate_name


class TestDispatch:
    def test_case_insensitive(self):
        assert call_scalar("LOWER", ["AbC"]) == "abc"

    def test_unknown_function(self):
        with pytest.raises(SQLRuntimeError):
            call_scalar("nope", [1])

    def test_aggregate_names(self):
        assert is_aggregate_name("COUNT")
        assert is_aggregate_name("sum")
        assert not is_aggregate_name("lower")


class TestAbs:
    def test_basic(self):
        assert call_scalar("abs", [-3]) == 3

    def test_null(self):
        assert call_scalar("abs", [None]) is None

    def test_numeric_string(self):
        assert call_scalar("abs", ["-2.5"]) == 2.5

    def test_non_numeric_raises(self):
        with pytest.raises(SQLRuntimeError):
            call_scalar("abs", ["abc"])

    def test_wrong_arity(self):
        with pytest.raises(SQLRuntimeError):
            call_scalar("abs", [1, 2])


class TestStringFunctions:
    def test_lower_upper(self):
        assert call_scalar("lower", ["AbC"]) == "abc"
        assert call_scalar("upper", ["AbC"]) == "ABC"

    def test_lower_of_number(self):
        assert call_scalar("lower", [42]) == "42"

    def test_length(self):
        assert call_scalar("length", ["abc"]) == 3
        assert call_scalar("length", [None]) is None

    def test_substr_one_based(self):
        assert call_scalar("substr", ["hello", 2]) == "ello"

    def test_substr_with_length(self):
        assert call_scalar("substr", ["hello", 2, 3]) == "ell"

    def test_substr_negative_start(self):
        assert call_scalar("substr", ["hello", -3]) == "llo"

    def test_substr_negative_start_with_length(self):
        # The paper's SQL-fallback extraction pattern.
        assert call_scalar("substr", ["Valverde (ESP)", -4, 3]) == "ESP"

    def test_substr_zero_start(self):
        assert call_scalar("substr", ["abc", 0]) == "abc"

    def test_substr_negative_length(self):
        assert call_scalar("substr", ["abc", 1, -1]) == ""

    def test_substring_alias(self):
        assert call_scalar("substring", ["abc", 2]) == "bc"

    def test_replace(self):
        assert call_scalar("replace", ["a-b-c", "-", "+"]) == "a+b+c"

    def test_replace_empty_needle(self):
        assert call_scalar("replace", ["abc", "", "x"]) == "abc"

    def test_trim_variants(self):
        assert call_scalar("trim", ["  x  "]) == "x"
        assert call_scalar("ltrim", ["  x "]) == "x "
        assert call_scalar("rtrim", [" x  "]) == " x"

    def test_trim_with_chars(self):
        assert call_scalar("trim", ["xxaxx", "x"]) == "a"

    def test_instr_one_based(self):
        assert call_scalar("instr", ["hello", "ll"]) == 3
        assert call_scalar("instr", ["hello", "zz"]) == 0


class TestNumericFunctions:
    def test_round(self):
        assert call_scalar("round", [2.567, 1]) == 2.6

    def test_round_default_digits(self):
        assert call_scalar("round", [2.5]) == 2  # banker's rounding

    def test_sqrt(self):
        assert call_scalar("sqrt", [9]) == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(SQLRuntimeError):
            call_scalar("sqrt", [-1])

    def test_floor_ceil(self):
        assert call_scalar("floor", [2.7]) == 2
        assert call_scalar("ceil", [2.1]) == 3
        assert call_scalar("ceiling", [2.1]) == 3


class TestNullHandlers:
    def test_coalesce(self):
        assert call_scalar("coalesce", [None, None, 3, 4]) == 3
        assert call_scalar("coalesce", [None]) is None

    def test_nullif(self):
        assert call_scalar("nullif", [1, 1]) is None
        assert call_scalar("nullif", [1, 2]) == 1

    def test_ifnull(self):
        assert call_scalar("ifnull", [None, 5]) == 5
        assert call_scalar("ifnull", [3, 5]) == 3
