"""Unified metrics: named, labelled Counter/Gauge/Histogram instruments.

One :class:`MetricsRegistry` holds every instrument a subsystem reports
into, keyed by a dotted name (``serving.submitted``,
``cache.lookups``, ...).  Instruments support optional labels —
``counter.inc(cache="sql_plan", result="hit")`` — so one instrument can
carry a small cardinality of breakdowns without one-name-per-variant
sprawl.  Everything is thread-safe and dependency-free.

Two scopes exist:

* per-run registries (``ServingMetrics`` builds one per instance, so a
  serving run's snapshot is self-contained), and
* the process-global :data:`GLOBAL_REGISTRY`, which long-lived
  infrastructure (the SQL plan cache, the prompt-encode cache, the
  circuit breaker, the model retry stack, the expression compiler)
  reports into.

Snapshots are plain JSON-ready dicts; nothing here reads the wall clock,
so recording is safe inside seeded-deterministic runs.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_REGISTRY",
    "global_registry",
]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1]).

    ``q=0`` is the minimum, ``q=1`` the maximum; an empty list yields
    0.0 so dashboards render zeros instead of crashing.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _label_text(key: tuple) -> str:
    return ",".join(f"{name}={value}" for name, value in key)


class _Instrument:
    """Shared base: a named instrument with per-label-set cells."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._cells: dict[tuple, object] = {}

    def labelsets(self) -> list[dict]:
        """Every label combination observed so far."""
        with self._lock:
            return [dict(key) for key in self._cells]


class Counter(_Instrument):
    """A monotonically increasing sum (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._cells.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._cells.values())

    def values(self) -> dict[tuple, float]:
        """``label-key tuple -> value`` for every observed label set."""
        with self._lock:
            return dict(self._cells)

    def snapshot(self):
        with self._lock:
            if set(self._cells) <= {()}:
                return self._cells.get((), 0.0)
            return {_label_text(key): value
                    for key, value in sorted(self._cells.items())}


class Gauge(_Instrument):
    """A value that can go up, down, or track a high-water mark."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._cells[_label_key(labels)] = value

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels) -> None:
        """Keep the maximum of the current and the new value."""
        key = _label_key(labels)
        with self._lock:
            current = self._cells.get(key)
            if current is None or value > current:
                self._cells[key] = value

    def value(self, **labels) -> float:
        with self._lock:
            return self._cells.get(_label_key(labels), 0.0)

    def snapshot(self):
        with self._lock:
            if set(self._cells) <= {()}:
                return self._cells.get((), 0.0)
            return {_label_text(key): value
                    for key, value in sorted(self._cells.items())}


class Histogram(_Instrument):
    """A distribution: every observation retained, percentile-queryable.

    Observations are kept raw (bounded workloads: one serving run, one
    evaluation) rather than bucketed, so snapshots report exact
    nearest-rank percentiles — matching what ``ServingMetrics`` always
    promised for latency.
    """

    kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                self._cells[key] = cell = []
            cell.append(value)

    def values(self, **labels) -> list[float]:
        with self._lock:
            return list(self._cells.get(_label_key(labels), ()))

    def count(self, **labels) -> int:
        with self._lock:
            return len(self._cells.get(_label_key(labels), ()))

    def total(self, **labels) -> float:
        with self._lock:
            return sum(self._cells.get(_label_key(labels), ()))

    def quantile(self, q: float, **labels) -> float:
        return percentile(self.values(**labels), q)

    def _summary(self, values: list[float]) -> dict:
        return {
            "count": len(values),
            "sum": round(sum(values), 6),
            "p50": round(percentile(values, 0.50), 6),
            "p95": round(percentile(values, 0.95), 6),
            "p99": round(percentile(values, 0.99), 6),
        }

    def snapshot(self):
        with self._lock:
            cells = {key: list(values)
                     for key, values in self._cells.items()}
        if set(cells) <= {()}:
            return self._summary(cells.get((), []))
        return {_label_text(key): self._summary(values)
                for key, values in sorted(cells.items())}


class MetricsRegistry:
    """Get-or-create home for named instruments; snapshot to JSON."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, cls, name: str, help: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                self._instruments[name] = instrument = cls(name, help)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {instrument.kind}, not a "
                    f"{cls.kind}")
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, sorted by name.

        The exposition layer (:mod:`repro.telemetry.prom`) iterates
        this instead of :meth:`snapshot` because rendering needs the
        per-label-set cells and raw histogram observations, not the
        summarised dict.
        """
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """``name -> value`` (scalar, labelled dict, or histogram summary)."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instrument.snapshot()
                for name, instrument in sorted(instruments.items())}

    def reset(self) -> None:
        """Drop every instrument (tests and process-global hygiene)."""
        with self._lock:
            self._instruments.clear()


#: Process-wide registry the infrastructure layers report into.
GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (caches, breaker, compiler, retries)."""
    return GLOBAL_REGISTRY
