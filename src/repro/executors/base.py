"""Executor protocol shared by the SQL and Python code executors.

An executor receives the generated code plus the *history* of tables
``[T0, T1, ..., Tk]`` (original table first) and returns the next
intermediate table.  The :class:`ExecutionOutcome` records which table the
code actually ran against and any exception handling that was applied —
the agent logs this and the ablation benchmarks switch it off.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.table.frame import DataFrame

__all__ = ["CodeExecutor", "ExecutionOutcome"]


@dataclass
class ExecutionOutcome:
    """The result of running one generated code block."""

    table: DataFrame
    #: Human-readable notes about recovery actions (retries, installs).
    handling_notes: list[str] = field(default_factory=list)
    #: Name of the table the code ultimately executed against.
    executed_against: str = ""

    @property
    def recovered(self) -> bool:
        """True if exception handling was needed to produce the result."""
        return bool(self.handling_notes)


class CodeExecutor(abc.ABC):
    """Interface for the external tools of the ReAcTable loop."""

    #: Language tag matched against the LLM action ("sql", "python", ...).
    language: str = ""

    @abc.abstractmethod
    def execute(self, code: str,
                tables: Sequence[DataFrame]) -> ExecutionOutcome:
        """Run ``code`` against the table history and return the new table.

        ``tables`` is ordered oldest-first (``tables[0]`` is T0,
        ``tables[-1]`` the latest intermediate table).  Raises a subclass of
        :class:`repro.errors.ExecutionError` on failure.
        """

    def describe(self) -> str:
        """One-line description used in prompts and documentation."""
        return f"{self.language} code executor"
