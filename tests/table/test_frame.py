"""Tests for the DataFrame substrate (construction, access, mutation)."""

import pytest

from repro.errors import ColumnNotFoundError, SchemaError, TableError
from repro.table import Column, ColumnType, DataFrame


class TestColumn:
    def test_length_and_iteration(self):
        col = Column("x", [1, 2, 3])
        assert len(col) == 3
        assert list(col) == [1, 2, 3]

    def test_dtype_inferred(self):
        assert Column("x", [1, 2]).dtype is ColumnType.INTEGER
        assert Column("x", ["a"]).dtype is ColumnType.TEXT

    def test_indexing_and_slicing(self):
        col = Column("x", [10, 20, 30])
        assert col[1] == 20
        assert col[-1] == 30
        sliced = col[:2]
        assert isinstance(sliced, Column)
        assert sliced.tolist() == [10, 20]

    def test_elementwise_comparison_returns_bool_column(self):
        col = Column("x", [1, 5, 3])
        mask = col > 2
        assert isinstance(mask, Column)
        assert mask.tolist() == [False, True, True]
        assert mask.dtype is ColumnType.BOOL

    def test_comparison_with_missing_is_false(self):
        col = Column("x", [1, None, 3])
        assert (col > 0).tolist() == [True, False, True]

    def test_comparison_between_columns(self):
        left = Column("x", [1, 5])
        right = Column("y", [2, 4])
        assert (left < right).tolist() == [True, False]

    def test_comparison_length_mismatch_raises(self):
        with pytest.raises(TableError):
            Column("x", [1]) == Column("y", [1, 2])  # noqa: B015

    def test_mixed_type_comparison_falls_back_to_text(self):
        col = Column("x", ["b", "a"])
        assert (col == "a").tolist() == [False, True]

    def test_map(self):
        col = Column("x", [1, 2]).map(lambda v: v * 10)
        assert col.tolist() == [10, 20]

    def test_astype(self):
        col = Column("x", ["1", "2"]).astype(ColumnType.INTEGER)
        assert col.tolist() == [1, 2]
        assert col.dtype is ColumnType.INTEGER

    def test_rename(self):
        assert Column("x", [1]).rename("y").name == "y"

    def test_unique_preserves_order(self):
        assert Column("x", [3, 1, 3, 2, 1]).unique() == [3, 1, 2]

    def test_unique_distinguishes_types(self):
        assert Column("x", [1, "1"]).unique() == [1, "1"]

    def test_non_missing(self):
        assert Column("x", [1, None, 2]).non_missing() == [1, 2]

    def test_columns_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column("x", [1]))


class TestDataFrameConstruction:
    def test_from_mapping(self):
        frame = DataFrame({"a": [1], "b": ["x"]})
        assert frame.columns == ["a", "b"]
        assert frame.num_rows == 1

    def test_from_columns(self):
        frame = DataFrame([Column("a", [1, 2])])
        assert frame.shape == (2, 1)

    def test_empty_frame(self):
        frame = DataFrame()
        assert frame.num_rows == 0
        assert frame.columns == []
        assert not frame

    def test_length_mismatch_raises(self):
        with pytest.raises(SchemaError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_duplicate_column_raises(self):
        with pytest.raises(SchemaError):
            DataFrame([Column("a", [1]), Column("a", [2])])

    def test_from_rows(self):
        frame = DataFrame.from_rows([(1, "x"), (2, "y")], ["n", "s"])
        assert frame.column("s").tolist() == ["x", "y"]

    def test_from_rows_bad_width_raises(self):
        with pytest.raises(SchemaError):
            DataFrame.from_rows([(1, 2)], ["only"])

    def test_from_records(self):
        frame = DataFrame.from_records(
            [{"a": 1, "b": 2}, {"a": 3}])
        assert frame.columns == ["a", "b"]
        assert frame.column("b").tolist() == [2, None]

    def test_from_records_explicit_columns(self):
        frame = DataFrame.from_records([{"a": 1, "b": 2}],
                                       columns=["b", "a"])
        assert frame.columns == ["b", "a"]

    def test_empty_constructor(self):
        frame = DataFrame.empty(["a", "b"])
        assert frame.shape == (0, 2)


class TestDataFrameAccess:
    def test_column_by_name(self, tiny_frame):
        assert tiny_frame.column("a").tolist() == [1, 2, 3]

    def test_column_case_insensitive(self, tiny_frame):
        assert tiny_frame.column("A").tolist() == [1, 2, 3]

    def test_missing_column_raises_with_alternatives(self, tiny_frame):
        with pytest.raises(ColumnNotFoundError) as exc_info:
            tiny_frame.column("zzz")
        assert "a" in str(exc_info.value)

    def test_getitem_string(self, tiny_frame):
        assert tiny_frame["b"].tolist() == ["x", "y", "z"]

    def test_getitem_column_list(self, tiny_frame):
        sub = tiny_frame[["b"]]
        assert sub.columns == ["b"]

    def test_getitem_boolean_mask(self, tiny_frame):
        filtered = tiny_frame[tiny_frame["a"] >= 2]
        assert filtered.column("a").tolist() == [2, 3]

    def test_getitem_plain_mask_list(self, tiny_frame):
        filtered = tiny_frame[[True, False, True]]
        assert filtered.column("b").tolist() == ["x", "z"]

    def test_getitem_bad_type_raises(self, tiny_frame):
        with pytest.raises(TableError):
            tiny_frame[3.14]

    def test_contains(self, tiny_frame):
        assert "a" in tiny_frame
        assert "zzz" not in tiny_frame

    def test_cell(self, tiny_frame):
        assert tiny_frame.cell(1, "b") == "y"

    def test_dtypes(self, tiny_frame):
        assert tiny_frame.dtypes == {
            "a": ColumnType.INTEGER, "b": ColumnType.TEXT}


class TestDataFrameMutation:
    def test_setitem_new_column(self, tiny_frame):
        tiny_frame["c"] = [True, False, True]
        assert tiny_frame.columns == ["a", "b", "c"]

    def test_setitem_replace_column(self, tiny_frame):
        tiny_frame["a"] = [9, 9, 9]
        assert tiny_frame["a"].tolist() == [9, 9, 9]
        assert tiny_frame.columns == ["a", "b"]

    def test_setitem_scalar_broadcast(self, tiny_frame):
        tiny_frame["k"] = 5
        assert tiny_frame["k"].tolist() == [5, 5, 5]

    def test_setitem_column_object_is_renamed(self, tiny_frame):
        tiny_frame["c"] = Column("other_name", [1, 2, 3])
        assert tiny_frame["c"].name == "c"

    def test_setitem_wrong_length_raises(self, tiny_frame):
        with pytest.raises(SchemaError):
            tiny_frame["c"] = [1]


class TestRowAccess:
    def test_row_mapping_interface(self, cyclists):
        row = cyclists.row(0)
        assert row["Rank"] == 1
        assert row["Cyclist"].endswith("(ESP)")
        assert len(row) == 5
        assert set(row) == set(cyclists.columns)

    def test_row_attribute_access(self, cyclists):
        assert cyclists.row(1).Rank == 2

    def test_row_attribute_missing_raises(self, cyclists):
        with pytest.raises(AttributeError):
            cyclists.row(0).nope

    def test_negative_row_index(self, cyclists):
        assert cyclists.row(-1)["Rank"] == 10

    def test_row_out_of_range(self, cyclists):
        with pytest.raises(TableError):
            cyclists.row(99)

    def test_iter_rows(self, tiny_frame):
        values = [row["a"] for row in tiny_frame.iter_rows()]
        assert values == [1, 2, 3]

    def test_to_rows(self, tiny_frame):
        assert tiny_frame.to_rows() == [(1, "x"), (2, "y"), (3, "z")]

    def test_to_records(self, tiny_frame):
        assert tiny_frame.to_records()[0] == {"a": 1, "b": "x"}


class TestApply:
    def test_apply_axis1(self, cyclists):
        codes = cyclists.apply(
            lambda row: row["Cyclist"][-4:-1], axis=1)
        assert codes.tolist() == ["ESP", "RUS", "ITA", "FRA"]

    def test_apply_axis0_unsupported(self, tiny_frame):
        with pytest.raises(TableError):
            tiny_frame.apply(lambda row: row, axis=0)

    def test_apply_assign_idiom(self, cyclists):
        cyclists["Country"] = cyclists.apply(
            lambda x: x["Cyclist"].split("(")[1].rstrip(")"), axis=1)
        assert cyclists["Country"].tolist() == \
            ["ESP", "RUS", "ITA", "FRA"]


class TestFrameOperations:
    def test_take_reorders(self, tiny_frame):
        taken = tiny_frame.take([2, 0])
        assert taken["a"].tolist() == [3, 1]

    def test_filter_length_mismatch(self, tiny_frame):
        with pytest.raises(TableError):
            tiny_frame.filter([True])

    def test_select_reorders_columns(self, tiny_frame):
        assert tiny_frame.select(["b", "a"]).columns == ["b", "a"]

    def test_drop_single(self, tiny_frame):
        assert tiny_frame.drop("a").columns == ["b"]

    def test_drop_list(self, cyclists):
        remaining = cyclists.drop(["Team", "Points"])
        assert "Team" not in remaining.columns

    def test_rename(self, tiny_frame):
        renamed = tiny_frame.rename({"a": "alpha"})
        assert renamed.columns == ["alpha", "b"]
        assert tiny_frame.columns == ["a", "b"]  # original untouched

    def test_with_name(self, tiny_frame):
        assert tiny_frame.with_name("T7").name == "T7"

    def test_head(self, tiny_frame):
        assert tiny_frame.head(2).num_rows == 2
        assert tiny_frame.head(99).num_rows == 3

    def test_copy_is_independent(self, tiny_frame):
        clone = tiny_frame.copy()
        clone["c"] = [0, 0, 0]
        assert "c" not in tiny_frame.columns

    def test_equality(self, tiny_frame):
        assert tiny_frame == tiny_frame.copy()
        other = tiny_frame.copy()
        other["a"] = [9, 9, 9]
        assert tiny_frame != other

    def test_equality_column_order_matters(self):
        left = DataFrame({"a": [1], "b": [2]})
        right = DataFrame({"b": [2], "a": [1]})
        assert left != right

    def test_frames_not_hashable(self, tiny_frame):
        with pytest.raises(TypeError):
            hash(tiny_frame)

    def test_repr_mentions_shape(self, tiny_frame):
        assert "3x2" in repr(tiny_frame)
