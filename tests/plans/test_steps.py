"""Tests for plan step rendering and answer derivation."""

import pytest

from repro.plans import (
    AggregateStep,
    AnswerStep,
    CountWhereStep,
    DiffStep,
    ExtractStep,
    FilterStep,
    GroupAggStep,
    GroupCountStep,
    ProjectStep,
    SuperlativeStep,
    quote_sql_string,
)
from repro.executors import PythonExecutor, SQLExecutor
from repro.table import DataFrame


class TestRenderedSqlExecutes:
    """Every SQL step's rendering must run on the real executor."""

    @pytest.fixture
    def run(self, cyclists):
        executor = SQLExecutor("sqlite")

        def _run(step):
            return executor.execute(step.render("T0"), [cyclists]).table

        return _run

    def test_filter(self, run):
        out = run(FilterStep(condition="Rank <= 2",
                             columns=("Cyclist",), reads=("Rank",)))
        assert out.num_rows == 2

    def test_filter_select_star(self, run, cyclists):
        out = run(FilterStep(condition="Points > 20"))
        assert out.columns == cyclists.columns

    def test_project(self, run):
        out = run(ProjectStep(columns=("Team", "Rank")))
        assert out.columns == ["Team", "Rank"]

    def test_project_distinct(self, run):
        out = run(ProjectStep(columns=("Team",), distinct=True))
        assert out.num_rows == 4

    def test_group_count(self, run):
        out = run(GroupCountStep(key="Team", limit=None))
        assert out.num_rows == 4

    def test_group_agg_with_alias(self, run):
        out = run(GroupAggStep(key="Team", agg="sum", value="Points",
                               alias="total"))
        assert "total" in out.columns

    def test_superlative(self, run):
        out = run(SuperlativeStep(target="Cyclist", by="Points"))
        assert out.to_rows() == [("Alejandro Valverde (ESP)",)]

    def test_superlative_ascending(self, run):
        out = run(SuperlativeStep(target="Cyclist", by="Points",
                                  descending=False))
        assert out.to_rows() == [("David Moncoutie (FRA)",)]

    def test_superlative_extra_columns(self, run):
        out = run(SuperlativeStep(target="Cyclist", by="Points",
                                  extra_columns=("Points",)))
        assert out.to_rows() == [("Alejandro Valverde (ESP)", 40)]

    def test_aggregate(self, run):
        out = run(AggregateStep(agg="sum", column="Points"))
        assert out.to_rows() == [(96,)]

    def test_aggregate_count_star(self, run):
        out = run(AggregateStep(agg="count", column="*"))
        assert out.to_rows() == [(4,)]

    def test_count_where(self, run):
        out = run(CountWhereStep(condition="Points > 20",
                                 reads=("Points",)))
        assert out.to_rows() == [(3,)]

    def test_diff(self, run):
        out = run(DiffStep(key="Cyclist", value="Points",
                           left="Alejandro Valverde (ESP)",
                           right="Alexandr Kolobnev (RUS)"))
        assert out.to_rows() == [(10,)]


class TestExtractStep:
    def test_renders_executable_python(self, cyclists):
        step = ExtractStep(source="Cyclist", target="Country",
                           pattern=r"\((\w+)\)")
        outcome = PythonExecutor().execute(step.render("T0"), [cyclists])
        assert outcome.table["Country"].tolist() == \
            ["ESP", "RUS", "ITA", "FRA"]

    def test_cast_numeric(self):
        frame = DataFrame({"Film": ["A (1994)", "B (2001)"]}, name="T0")
        step = ExtractStep(source="Film", target="Year",
                           pattern=r"\((\d{4})\)", cast_numeric=True)
        outcome = PythonExecutor().execute(step.render("T0"), [frame])
        assert outcome.table["Year"].tolist() == [1994.0, 2001.0]

    def test_non_matching_rows_yield_none(self):
        frame = DataFrame({"x": ["has (Y)", "no code"]}, name="T0")
        step = ExtractStep(source="x", target="c", pattern=r"\((\w+)\)")
        outcome = PythonExecutor().execute(step.render("T0"), [frame])
        assert outcome.table["c"].tolist() == ["Y", None]


class TestStepMetadata:
    def test_languages(self):
        assert FilterStep(condition="x > 1").language == "sql"
        assert ExtractStep("a", "b", r"(x)").language == "python"
        assert AnswerStep().language == "answer"

    def test_input_columns(self):
        step = FilterStep(condition="Rank <= 2", columns=("Cyclist",),
                          reads=("Rank",))
        assert set(step.input_columns()) == {"Cyclist", "Rank"}
        assert GroupAggStep("k", "sum", "v").input_columns() == ("k", "v")
        assert AggregateStep("count", "*").input_columns() == ()

    def test_describe_is_informative(self):
        assert "Rank" in FilterStep(condition="Rank <= 2").describe()


class TestQuoting:
    def test_quote_sql_string(self):
        assert quote_sql_string("o'brien") == "'o''brien'"

    def test_non_identifier_columns_quoted(self):
        step = ProjectStep(columns=("My Col",))
        assert '"My Col"' in step.render("T0")


class TestAnswerStep:
    def test_cell(self):
        final = DataFrame({"x": ["ITA", "ESP"]})
        assert AnswerStep(kind="cell").derive(final) == ["ITA"]

    def test_cell_on_empty_table(self):
        assert AnswerStep(kind="cell").derive(DataFrame({"x": []})) == []

    def test_list(self):
        final = DataFrame({"x": ["a", "b"]})
        assert AnswerStep(kind="list").derive(final) == ["a", "b"]

    def test_named_column(self):
        final = DataFrame({"n": [1], "x": ["yes"]})
        assert AnswerStep(kind="cell", column="x").derive(final) == ["yes"]

    def test_literal_overrides_table(self):
        final = DataFrame({"x": ["ignored"]})
        step = AnswerStep(kind="cell", literal=("the answer",))
        assert step.derive(final) == ["the answer"]

    def test_integral_floats_rendered_as_ints(self):
        final = DataFrame({"x": [3.0]})
        assert AnswerStep(kind="cell").derive(final) == ["3"]

    @pytest.mark.parametrize("op,constant,expected", [
        (">", 5, "yes"), (">", 50, "no"), ("=", 10, "yes"),
        ("<>", 10, "no"), ("<=", 10, "yes"), ("<", 10, "no"),
        (">=", 11, "no"),
    ])
    def test_boolean(self, op, constant, expected):
        final = DataFrame({"x": [10]})
        step = AnswerStep(kind="boolean", op=op, constant=constant)
        assert step.derive(final) == [expected]

    def test_boolean_string_comparison(self):
        final = DataFrame({"x": ["Harvey"]})
        step = AnswerStep(kind="boolean", op="=", constant="harvey")
        assert step.derive(final) == ["yes"]

    def test_boolean_on_empty_is_no(self):
        step = AnswerStep(kind="boolean", op="=", constant=1)
        assert step.derive(DataFrame({"x": []})) == ["no"]

    def test_boolean_unknown_op_raises(self):
        step = AnswerStep(kind="boolean", op="~", constant=1)
        with pytest.raises(ValueError):
            step.derive(DataFrame({"x": [1]}))

    def test_sentence(self):
        final = DataFrame({"who": ["Harvey"], "margin": [1463]})
        step = AnswerStep(kind="sentence",
                          template="{0} beat Royds by {1} votes.")
        assert step.derive(final) == ["Harvey beat Royds by 1463 votes."]

    def test_derive_slots(self):
        final = DataFrame({"a": [1], "b": ["x"]})
        assert AnswerStep(kind="sentence",
                          template="").derive_slots(final) == ["1", "x"]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            AnswerStep(kind="essay").derive(DataFrame({"x": [1]}))
