"""Property-based tests (hypothesis) for the DataFrame substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.table import (
    DataFrame,
    decode_head_row,
    distinct,
    encode_head_row,
    from_csv,
    from_json,
    sort_by,
    table_fingerprint,
    to_csv,
    to_json,
)

# Cell values the codecs must round-trip exactly.
cell = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e9, max_value=1e9),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N", "P", "S", "Zs")),
        max_size=24,
    ).filter(lambda s: s.strip() == s and s != "NULL"
             and s.lower() not in ("true", "false")
             and not _parses_as_number(s)),
)


def _parses_as_number(text: str) -> bool:
    for caster in (int, float):
        try:
            caster(text)
            return True
        except ValueError:
            continue
    return False


@st.composite
def frames(draw, max_columns=4, max_rows=6):
    num_columns = draw(st.integers(1, max_columns))
    num_rows = draw(st.integers(0, max_rows))
    names = [f"c{i}" for i in range(num_columns)]
    columns = {
        name: draw(st.lists(cell, min_size=num_rows, max_size=num_rows))
        for name in names
    }
    return DataFrame(columns)


@given(frames())
@settings(max_examples=60, deadline=None)
def test_head_row_codec_roundtrip(frame):
    decoded = decode_head_row(encode_head_row(frame))
    assert decoded == frame


@given(frames())
@settings(max_examples=60, deadline=None)
def test_json_roundtrip(frame):
    assert from_json(to_json(frame)) == frame


@given(frames())
@settings(max_examples=40, deadline=None)
def test_csv_roundtrip_modulo_empty_strings(frame):
    # CSV cannot distinguish "" from None; normalise both sides.
    def canon(f):
        rows = [
            tuple(None if v == "" else v for v in row)
            for row in f.to_rows()
        ]
        return (f.columns, rows)

    decoded = from_csv(to_csv(frame))
    assert canon(decoded) == canon(frame)


@given(frames())
@settings(max_examples=40, deadline=None)
def test_sort_is_permutation(frame):
    out = sort_by(frame, [frame.columns[0]])
    assert sorted(map(repr, out.to_rows())) == \
        sorted(map(repr, frame.to_rows()))


@given(frames())
@settings(max_examples=40, deadline=None)
def test_sort_descending_reverses_keys(frame):
    column = frame.columns[0]
    ascending = sort_by(frame, [column])
    descending = sort_by(frame, [column], descending=True)
    from repro.table.ops import _sort_key_for
    from repro.table.schema import is_missing
    key = _sort_key_for(frame[column].tolist())
    asc_keys = [key(v) for v in ascending[column] if not is_missing(v)]
    desc_keys = [key(v) for v in descending[column] if not is_missing(v)]
    assert asc_keys == sorted(asc_keys)
    assert desc_keys == sorted(desc_keys, reverse=True)
    # Missing values sort last in both directions.
    for out in (ascending, descending):
        flags = [is_missing(v) for v in out[column]]
        assert flags == sorted(flags)


@given(frames())
@settings(max_examples=40, deadline=None)
def test_distinct_idempotent(frame):
    once = distinct(frame)
    assert distinct(once) == once


@given(frames())
@settings(max_examples=40, deadline=None)
def test_distinct_never_grows(frame):
    assert distinct(frame).num_rows <= frame.num_rows


@given(frames(), st.data())
@settings(max_examples=40, deadline=None)
def test_take_preserves_values(frame, data):
    if frame.num_rows == 0:
        return
    indexes = data.draw(st.lists(
        st.integers(0, frame.num_rows - 1), max_size=8))
    taken = frame.take(indexes)
    for out_pos, src in enumerate(indexes):
        assert taken.to_rows()[out_pos] == frame.to_rows()[src]


@given(frames())
@settings(max_examples=40, deadline=None)
def test_fingerprint_invariant_under_row_shuffle(frame):
    reversed_frame = frame.take(list(range(frame.num_rows))[::-1])
    assert table_fingerprint(frame) == table_fingerprint(reversed_frame)


@given(frames())
@settings(max_examples=40, deadline=None)
def test_copy_equals_original(frame):
    assert frame.copy() == frame
