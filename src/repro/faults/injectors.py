"""Injector wrappers: drop scheduled faults into the system's boundaries.

:class:`FaultyModel` wraps any :class:`~repro.llm.base.LanguageModel`;
:class:`FaultyExecutor` wraps any
:class:`~repro.executors.base.CodeExecutor`.  Each keeps a per-instance
call counter and asks its :class:`~repro.faults.plan.FaultPlan` whether
the current call faults.  When the plan says ``None`` (always, at rate
zero) the call is delegated untouched — same objects in, same objects
out — so an installed-but-idle injector cannot perturb results.

Injected faults are *real* failures of the types the production stack
must classify: transient backend errors, latency spikes, truncated or
garbage completions, wrong-sized batches, executor exceptions, sandbox
violations, and silently corrupted intermediate tables.  An optional
``on_fault(site, kind, index)`` hook reports every injection (the chaos
CLI wires it into :class:`~repro.serving.metrics.ServingMetrics` and
:class:`~repro.tracing.ChainTracer`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

from repro.errors import (
    PythonExecutionError,
    SandboxViolationError,
    SQLExecutionError,
    TransientModelError,
)
from repro.executors.base import CodeExecutor, ExecutionOutcome
from repro.faults.plan import FaultPlan
from repro.llm.base import Completion, LanguageModel
from repro.table.frame import DataFrame

__all__ = ["FaultyModel", "FaultyExecutor", "apply_completion_fault",
           "executor_fault_error", "corrupt_outcome"]

#: Signature of the fault-observation hook: ``(site, kind, index)``.
FaultHook = Callable[[str, str, int], None]


# --- shared fault-application core -------------------------------------------
# One implementation of each fault's *effect*, used both by the wrapper
# classes below and by the effect-boundary injector in
# :mod:`repro.faults.effects`, so the two injection styles cannot drift.

def apply_completion_fault(kind: str, completions: Sequence[Completion],
                           plan: FaultPlan, site: str, index: int, *,
                           salt: str) -> list[Completion]:
    """Damage a completion batch per a post-call model fault kind."""
    if kind == "truncate":
        return [Completion(c.text[:max(1, len(c.text) // 2)],
                           c.logprob) for c in completions]
    if kind == "garbage":
        noise = plan.garbage_text(site, index, salt=salt)
        return [Completion(noise, c.logprob) for c in completions]
    # wrong_n: the backend mis-sized the batch (one short).
    return list(completions[:-1])


def executor_fault_error(kind: str, language: str, code: str,
                         index: int) -> Exception:
    """The exception an injected executor fault raises."""
    if kind == "sandbox":
        return SandboxViolationError(
            f"injected sandbox violation (call {index})", code=code)
    error_type = (SQLExecutionError if language == "sql"
                  else PythonExecutionError)
    return error_type(
        f"injected {language} executor failure (call {index})", code=code)


def corrupt_outcome(outcome: ExecutionOutcome) -> ExecutionOutcome:
    """Silently damage a real execution result (drop the last row)."""
    table = outcome.table
    if table.num_rows > 0:
        table = table.take(range(table.num_rows - 1))
    return ExecutionOutcome(
        table=table,
        handling_notes=list(outcome.handling_notes),
        executed_against=outcome.executed_against)


class FaultyModel(LanguageModel):
    """Inject model-boundary faults on a deterministic schedule."""

    def __init__(self, inner: LanguageModel, plan: FaultPlan, *,
                 site: str = "model", sleep: Callable = time.sleep,
                 on_fault: FaultHook | None = None):
        self.inner = inner
        self.plan = plan
        self.site = site
        self._sleep = sleep
        self.on_fault = on_fault
        self._calls = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def fork(self, seed: int) -> "FaultyModel":
        """Fork the inner model *and* the fault schedule from ``seed``."""
        return FaultyModel(self.inner.fork(seed), self.plan.fork(seed),
                           site=self.site, sleep=self._sleep,
                           on_fault=self.on_fault)

    def _notify(self, kind: str, index: int) -> None:
        if self.on_fault is not None:
            self.on_fault(self.site, kind, index)

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        index = self._calls
        self._calls += 1
        kind = self.plan.decide(self.site, index, salt=prompt)
        if kind is None:
            return self.inner.complete(prompt, temperature=temperature,
                                       n=n)
        self._notify(kind, index)
        if kind == "transient":
            raise TransientModelError(
                f"injected transient backend failure (call {index})")
        if kind == "latency":
            self._sleep(self.plan.config.latency_seconds)
            return self.inner.complete(prompt, temperature=temperature,
                                       n=n)
        completions = self.inner.complete(prompt,
                                          temperature=temperature, n=n)
        return apply_completion_fault(kind, completions, self.plan,
                                      self.site, index, salt=prompt)


class FaultyExecutor(CodeExecutor):
    """Inject executor-boundary faults on a deterministic schedule."""

    def __init__(self, inner: CodeExecutor, plan: FaultPlan, *,
                 on_fault: FaultHook | None = None):
        self.inner = inner
        self.plan = plan
        self.language = inner.language
        self.on_fault = on_fault
        self._calls = 0

    @property
    def site(self) -> str:
        return f"executor:{self.language}"

    def describe(self) -> str:
        return self.inner.describe()

    def _notify(self, kind: str, index: int) -> None:
        if self.on_fault is not None:
            self.on_fault(self.site, kind, index)

    def execute(self, code: str,
                tables: Sequence[DataFrame]) -> ExecutionOutcome:
        index = self._calls
        self._calls += 1
        kind = self.plan.decide(self.site, index, salt=code)
        if kind is None:
            return self.inner.execute(code, tables)
        self._notify(kind, index)
        if kind in ("error", "sandbox"):
            raise executor_fault_error(kind, self.language, code, index)
        # corrupt: execute for real, then silently damage the result.
        return corrupt_outcome(self.inner.execute(code, tables))
