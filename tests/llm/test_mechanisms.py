"""Probability-level tests of the simulated model's mechanisms.

These pin the *directions* that carry the paper's findings: grounding
helps, CoT hurts, temperature hurts, SQL-fallback hurts, demonstrations
help.  Each is a deterministic inequality on the step-probability model,
so a regression here means a paper-shape regression downstream.
"""

import dataclasses

import pytest

from repro.datasets import generate_dataset
from repro.llm import CODEX_SIM, SimulatedTQAModel


@pytest.fixture(scope="module")
def setup():
    benchmark = generate_dataset("wikitq", size=20, seed=88)
    model = SimulatedTQAModel(benchmark.bank, seed=4)
    example = benchmark.examples[0]
    return model, example


def p(model, example, **kwargs):
    defaults = dict(grounding=0, cot=False, temperature=0.0,
                    sql_fallback=False)
    defaults.update(kwargs)
    return model._step_probability(example, 0, **defaults)


class TestStepProbabilityDirections:
    def test_grounding_bonus_monotone(self, setup):
        model, example = setup
        values = [p(model, example, grounding=g) for g in range(4)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_grounding_bonus_capped(self, setup):
        model, example = setup
        assert p(model, example, grounding=3) == \
            p(model, example, grounding=9)

    def test_cot_penalty(self, setup):
        model, example = setup
        assert p(model, example, cot=True) < p(model, example)

    def test_temperature_penalty(self, setup):
        model, example = setup
        assert p(model, example, temperature=0.6) < p(model, example)

    def test_cot_more_temperature_sensitive(self, setup):
        model, example = setup
        react_drop = (p(model, example)
                      - p(model, example, temperature=0.6))
        cot_drop = (p(model, example, cot=True)
                    - p(model, example, cot=True, temperature=0.6))
        # cot_temperature_sensitivity adds to the base effect... in CoT
        # mode only the cot-specific term applies, so compare slopes
        # directly via the profile parameters instead.
        assert model.profile.cot_temperature_sensitivity > 0
        assert react_drop > 0 and cot_drop > 0

    def test_sql_fallback_penalty(self, setup):
        model, example = setup
        assert p(model, example, sql_fallback=True) < p(model, example)

    def test_mental_penalty_defaults_to_cot_level(self, setup):
        model, example = setup
        assert p(model, example, cot=True, mental=True) == \
            p(model, example, cot=True)

    def test_demo_similarity_bonus_needs_affinity(self, setup):
        model, example = setup
        # Stock profile: affinity is zero, similarity changes nothing.
        assert p(model, example) == pytest.approx(
            model._step_probability(
                example, 0, grounding=0, cot=False, temperature=0.0,
                sql_fallback=False, demo_similarity=1.0))

    def test_affinity_profile_rewards_similarity(self, setup):
        _, example = setup
        benchmark = generate_dataset("wikitq", size=5, seed=88)
        profile = dataclasses.replace(CODEX_SIM, demo_affinity=1.0)
        model = SimulatedTQAModel(benchmark.bank, profile, seed=4)
        low = model._step_probability(
            example, 0, grounding=0, cot=False, temperature=0.0,
            sql_fallback=False, demo_similarity=0.0)
        high = model._step_probability(
            example, 0, grounding=0, cot=False, temperature=0.0,
            sql_fallback=False, demo_similarity=1.0)
        assert high > low


class TestAnswerProbability:
    def test_harder_questions_answer_worse(self, setup):
        model, _ = setup
        benchmark = generate_dataset("wikitq", size=40, seed=88)
        easy = min(benchmark.examples, key=lambda e: e.difficulty)
        hard = max(benchmark.examples, key=lambda e: e.difficulty)
        # Remove per-question noise from the comparison by a large
        # difficulty gap.
        if hard.difficulty - easy.difficulty > 0.5:
            assert model._answer_probability(
                hard, temperature=0.0, cot=False) < \
                model._answer_probability(
                    easy, temperature=0.0, cot=False) + 0.5


class TestDeterminismContract:
    def test_question_noise_is_stable(self, setup):
        model, example = setup
        assert model._question_noise(example) == \
            model._question_noise(example)

    def test_noise_differs_across_questions(self, setup):
        model, _ = setup
        benchmark = generate_dataset("wikitq", size=10, seed=88)
        noises = {round(model._question_noise(e), 9)
                  for e in benchmark.examples}
        assert len(noises) > 1

    def test_noise_differs_across_models(self, setup):
        _, example = setup
        benchmark = generate_dataset("wikitq", size=5, seed=88)
        from repro.llm import TURBO_SIM
        codex = SimulatedTQAModel(benchmark.bank, seed=4)
        turbo = SimulatedTQAModel(benchmark.bank, TURBO_SIM, seed=4)
        assert codex._question_noise(example) != \
            turbo._question_noise(example)
