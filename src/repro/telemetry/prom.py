"""Prometheus text exposition (v0.0.4) over :class:`MetricsRegistry`.

``render`` turns one or more registries into the plain-text format every
Prometheus-compatible scraper understands — the ``repro serve`` daemon
mounts it at ``/metrics`` so the existing instruments (``serving.*``,
``cache.*``, ``sqlengine.*``, ``breaker.*``, ``llm.*``, ``sql.*``)
become live scrape targets instead of post-hoc JSON dumps.

Mapping rules, chosen so nothing about the in-process model leaks into
an invalid exposition:

* **names** — dotted instrument names become underscore-joined metric
  names (``serving.latency_seconds`` → ``serving_latency_seconds``);
  any character outside ``[a-zA-Z0-9_:]`` is replaced by ``_`` and a
  leading digit is prefixed.  Counters gain the conventional ``_total``
  suffix (unless already present).
* **labels** — label names are sanitised the same way; label *values*
  are escaped per the spec (``\\`` → ``\\\\``, ``"`` → ``\\"``, newline
  → ``\\n``) so arbitrary strings survive the round trip.  HELP text
  escapes ``\\`` and newline.
* **histograms** — the registry keeps raw observations (that is what
  makes exact percentiles possible); exposition buckets them into the
  cumulative ``_bucket{le="..."}`` series Prometheus expects, with a
  ``+Inf`` bucket always equal to ``_count``, plus ``_sum``.  Bucket
  bounds are deterministic (:data:`DEFAULT_BUCKETS`, overridable per
  call) — no wall clock, no randomness.
* **merging** — rendering several registries (a per-run
  ``ServingMetrics`` registry plus :data:`~repro.telemetry.metrics.
  GLOBAL_REGISTRY`) concatenates their families; a family name that
  appears in more than one registry keeps one ``HELP``/``TYPE`` header
  and pools the sample lines, so the output never declares a metric
  twice (which scrapers reject).

:func:`parse_exposition` is the matching validating parser — tests and
the daemon's self-checks use it to prove a scrape is well-formed without
needing a real Prometheus binary in the container.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "render",
    "render_registry",
    "parse_exposition",
]

#: Deterministic histogram bounds: latency-shaped, 100 µs to 60 s.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str) -> str:
    """Sanitise a dotted instrument name into a legal metric name."""
    sanitised = _NAME_BAD_CHARS.sub("_", name)
    if not sanitised or not _NAME_OK.match(sanitised):
        sanitised = "_" + sanitised
    return sanitised


def label_name(name: str) -> str:
    """Sanitise a label name (no colons allowed, unlike metric names)."""
    sanitised = _LABEL_BAD_CHARS.sub("_", name)
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def escape_label_value(value) -> str:
    """Escape a label value per the text-format spec."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Format a sample value: integral floats print without the dot."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(pairs: list[tuple[str, object]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{label_name(name)}="{escape_label_value(value)}"'
        for name, value in pairs)
    return "{" + body + "}"


def _counter_samples(exposed: str, instrument: Counter) -> list[str]:
    lines = []
    for key, value in sorted(instrument.values().items()):
        lines.append(f"{exposed}{_label_text(list(key))} "
                     f"{format_value(value)}")
    if not lines:
        lines.append(f"{exposed} 0")
    return lines


def _gauge_samples(exposed: str, instrument: Gauge) -> list[str]:
    with instrument._lock:
        cells = dict(instrument._cells)
    lines = []
    for key, value in sorted(cells.items()):
        lines.append(f"{exposed}{_label_text(list(key))} "
                     f"{format_value(value)}")
    if not lines:
        lines.append(f"{exposed} 0")
    return lines


def _histogram_samples(exposed: str, instrument: Histogram,
                       buckets: tuple[float, ...]) -> list[str]:
    with instrument._lock:
        cells = {key: list(values)
                 for key, values in instrument._cells.items()}
    if not cells:
        cells = {(): []}
    lines = []
    for key, values in sorted(cells.items()):
        pairs = list(key)
        ordered = sorted(values)
        position = 0
        for bound in buckets:
            while position < len(ordered) and ordered[position] <= bound:
                position += 1
            le = _label_text(pairs + [("le", format_value(bound))])
            lines.append(f"{exposed}_bucket{le} {position}")
        le = _label_text(pairs + [("le", "+Inf")])
        lines.append(f"{exposed}_bucket{le} {len(ordered)}")
        lines.append(f"{exposed}_sum{_label_text(pairs)} "
                     f"{format_value(sum(ordered))}")
        lines.append(f"{exposed}_count{_label_text(pairs)} "
                     f"{len(ordered)}")
    return lines


def _family(instrument, buckets: tuple[float, ...]):
    """``(exposed_name, type, help, sample_lines)`` for one instrument."""
    base = metric_name(instrument.name)
    if isinstance(instrument, Counter):
        exposed = base if base.endswith("_total") else base + "_total"
        return exposed, "counter", instrument.help, \
            _counter_samples(exposed, instrument)
    if isinstance(instrument, Histogram):
        return base, "histogram", instrument.help, \
            _histogram_samples(base, instrument, buckets)
    return base, "gauge", instrument.help, \
        _gauge_samples(base, instrument)


def render(registries, *,
           buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> str:
    """Render one registry (or an iterable of them) to exposition text.

    Families are emitted in sorted-name order; a family present in
    several registries keeps the first non-empty HELP and pools its
    samples.  The result always ends with a newline (scrapers require
    it) — an input with no instruments renders as the empty string,
    which is also a valid (empty) exposition.
    """
    if isinstance(registries, MetricsRegistry):
        registries = (registries,)
    families: dict[str, dict] = {}
    order: list[str] = []
    for registry in registries:
        for instrument in registry.instruments():
            exposed, kind, help_text, samples = _family(instrument,
                                                        buckets)
            family = families.get(exposed)
            if family is None:
                families[exposed] = {"type": kind, "help": help_text,
                                     "samples": list(samples)}
                order.append(exposed)
            else:
                if family["type"] != kind:
                    raise ValueError(
                        f"metric {exposed!r} exposed as both "
                        f"{family['type']} and {kind}")
                if not family["help"]:
                    family["help"] = help_text
                family["samples"].extend(samples)
    lines: list[str] = []
    for exposed in sorted(order):
        family = families[exposed]
        if family["help"]:
            lines.append(f"# HELP {exposed} "
                         f"{escape_help(family['help'])}")
        lines.append(f"# TYPE {exposed} {family['type']}")
        lines.extend(family["samples"])
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry: MetricsRegistry, *,
                    buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> str:
    """Render a single registry (convenience alias of :func:`render`)."""
    return render(registry, buckets=buckets)


# --- validating parser (tests and daemon self-checks) ------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_PAIR = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*='
    r'\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


def _unescape_label(value: str) -> str:
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            if follower == "n":
                out.append("\n")
            elif follower in ('"', "\\"):
                out.append(follower)
            else:
                raise ValueError(
                    f"invalid escape \\{follower} in label value")
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def parse_exposition(text: str) -> dict:
    """Parse (and thereby validate) Prometheus text exposition.

    Returns ``{family: {"type": ..., "help": ..., "samples": [
    (name, labels_dict, value), ...]}}``.  Raises :class:`ValueError`
    on any malformed line, an undeclared sample's family mismatch, or a
    duplicate ``TYPE`` declaration — the checks a real scraper applies.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            families.setdefault(name, {"type": None, "help": "",
                                       "samples": []})
            families[name]["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ValueError(f"line {line_number}: bad TYPE line")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(
                    f"line {line_number}: unknown type {kind!r}")
            family = families.setdefault(
                name, {"type": None, "help": "", "samples": []})
            if family["type"] is not None:
                raise ValueError(
                    f"line {line_number}: duplicate TYPE for {name!r}")
            family["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw is not None:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw):
                if pair.start() != consumed:
                    raise ValueError(
                        f"line {line_number}: malformed labels {raw!r}")
                labels[pair.group("name")] = _unescape_label(
                    pair.group("value"))
                consumed = pair.end()
            if consumed != len(raw):
                raise ValueError(
                    f"line {line_number}: malformed labels {raw!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad sample value "
                f"{match.group('value')!r}") from None
        # A histogram's samples belong to the family declared by the
        # preceding TYPE line (name_bucket/_sum/_count); others must
        # match the family name exactly.
        family_name = name
        if current is not None and name.startswith(current):
            suffix = name[len(current):]
            if suffix in ("", "_bucket", "_sum", "_count"):
                family_name = current
        family = families.setdefault(
            family_name, {"type": None, "help": "", "samples": []})
        family["samples"].append((name, labels, value))
    return families
