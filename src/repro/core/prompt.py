"""Prompt construction and re-parsing (the Figure 2 template).

The prompt built at iteration *k* contains: the few-shot demonstrations,
the original table T0, the question, and — for every completed iteration —
the LLM's action line plus the intermediate table its code produced.

``parse_prompt`` inverts the template.  It is used by the simulated LLM,
which receives *only* the prompt string (exactly like an API model) and
must recover the question, the original table, the current table and how
many steps have been taken.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.actions import Action, format_action
from repro.errors import PromptError
from repro.perf.encode_cache import encode_head_row_cached
from repro.table.frame import DataFrame
from repro.table.io import decode_head_row

__all__ = [
    "TranscriptStep",
    "Transcript",
    "PromptBuilder",
    "ParsedPrompt",
    "parse_prompt",
    "build_cot_prompt",
    "build_commented_prompt",
    "DEFAULT_FEW_SHOT",
]

_TABLE_MARKER = "The database table T0 is shown as follows:"
_QUESTION_MARKER = 'Answer the following question based on the data above: "'
_INTERMEDIATE_MARKER = "Intermediate table ("
_FORCED_ANSWER_SUFFIX = "ReAcTable: Answer:"
_COT_INSTRUCTION_HINT = "in a single response"
# Strategy-layer instruction hints (repro.strategies): each non-react
# strategy marks its instruction line so the simulated model — which
# receives only the prompt string — can recover which completion mode is
# being asked for.  The hints are disjoint from each other and from the
# CoT hint above.
_OPERATOR_INSTRUCTION_HINT = "one table-evolving operator"
_COMMENTED_INSTRUCTION_HINT = "comment line"
# The reflexion tier's template extensions (repro.reflect).  A prompt
# ending with the reflection suffix asks the model to *write* a verbal
# reflection about a failed run; a prompt whose preamble carries
# "Reflection k:" lines under the header is a chain re-run that should
# *use* those reflections.
_REFLECTION_SUFFIX = "ReAcTable: Reflection:"
_REFLECTION_HEADER = "Reflections from previous failed attempts:"
_REFLECTION_LINE = re.compile(r"^Reflection \d+:", re.MULTILINE)
_FAILURE_CATEGORY = re.compile(r"previous attempt failed \(([a-z_]+)\)")


@dataclass
class TranscriptStep:
    """One completed iteration: the action and the table it produced."""

    action: Action
    table: DataFrame | None = None      # None for answer actions
    #: Notes from the executor's exception handling (not shown in prompts).
    handling_notes: list[str] = field(default_factory=list)


@dataclass
class Transcript:
    """The evolving state of one ReAcTable chain."""

    t0: DataFrame
    question: str
    steps: list[TranscriptStep] = field(default_factory=list)

    @property
    def tables(self) -> list[DataFrame]:
        """Table history [T0, T1, ...] (code steps only)."""
        history = [self.t0]
        history.extend(
            step.table for step in self.steps if step.table is not None)
        return history

    @property
    def num_code_steps(self) -> int:
        return sum(1 for step in self.steps if step.table is not None)

    def fork(self) -> "Transcript":
        """A shallow-history copy (for tree-exploration voting branches)."""
        return Transcript(self.t0, self.question, list(self.steps))


def _default_few_shot() -> str:
    """The static few-shot demonstration (the paper's running example).

    One fully-worked WikiTQ example in the exact transcript format, so the
    model "sees" the SQL -> Python -> SQL -> Answer pattern.
    """
    return (
        f"{_TABLE_MARKER}\n"
        "[HEAD]:Rank|Cyclist|Team|Points\n"
        "[ROW] 1: 1|Alejandro Valverde (ESP)|Caisse d'Epargne|40\n"
        "[ROW] 2: 2|Alexandr Kolobnev (RUS)|Team CSC Saxo Bank|30\n"
        "[ROW] 3: 10|David Moncoutie (FRA)|Cofidis|NULL\n"
        f"{_QUESTION_MARKER}which country had the most cyclists finish "
        "within the top 10?\". Generate SQL or Python code step-by-step "
        "given the question and table to answer the question correctly.\n"
        "ReAcTable: SQL: ```SELECT Cyclist FROM T0 WHERE Rank <= 10;```.\n"
        "Intermediate table (T1):\n"
        "[HEAD]:Cyclist\n"
        "[ROW] 1: Alejandro Valverde (ESP)\n"
        "[ROW] 2: Alexandr Kolobnev (RUS)\n"
        "[ROW] 3: David Moncoutie (FRA)\n"
        "ReAcTable: Python: ```T1['Country'] = T1.apply(lambda x: "
        "re.search(r\"\\((\\w+)\\)\", x['Cyclist']).group(1), "
        "axis=1)```.\n"
        "Intermediate table (T2):\n"
        "[HEAD]:Cyclist|Country\n"
        "[ROW] 1: Alejandro Valverde (ESP)|ESP\n"
        "[ROW] 2: Alexandr Kolobnev (RUS)|RUS\n"
        "[ROW] 3: David Moncoutie (FRA)|FRA\n"
        "ReAcTable: SQL: ```SELECT Country, COUNT(*) FROM T2 GROUP BY "
        "Country ORDER BY COUNT(*) DESC LIMIT 1;```.\n"
        "Intermediate table (T3):\n"
        "[HEAD]:Country|COUNT(*)\n"
        "[ROW] 1: ESP|1\n"
        "ReAcTable: Answer: ```ESP```.\n"
    )


DEFAULT_FEW_SHOT = _default_few_shot()


class PromptBuilder:
    """Instantiates the prompt template at every iteration."""

    def __init__(self, *, few_shot: str | None = None,
                 languages: tuple[str, ...] = ("sql", "python"),
                 max_prompt_rows: int | None = 50):
        self.few_shot = DEFAULT_FEW_SHOT if few_shot is None else few_shot
        self.languages = tuple(languages)
        self.max_prompt_rows = max_prompt_rows

    def _instruction(self) -> str:
        names = {"sql": "SQL", "python": "Python"}
        rendered = " or ".join(
            names.get(lang, lang.capitalize()) for lang in self.languages)
        return (f"Generate {rendered} code step-by-step given the question "
                f"and table to answer the question correctly.")

    def build(self, transcript: Transcript, *,
              force_answer: bool = False) -> str:
        """Build the prompt for the next iteration.

        ``force_answer=True`` appends the leading word ``Answer`` so the
        model must answer directly (the Section 3.3 "other exceptions"
        handler and the Table 7 iteration-limit mechanism).
        """
        parts = []
        if self.few_shot:
            parts.append(self.few_shot.rstrip())
            parts.append("")
        parts.append(_TABLE_MARKER)
        # Cached: T0 (and every unchanged T1..Tk below) renders once per
        # chain instead of once per iteration.
        parts.append(encode_head_row_cached(transcript.t0,
                                            max_rows=self.max_prompt_rows))
        parts.append(
            f'{_QUESTION_MARKER}{transcript.question}". '
            f"{self._instruction()}")
        table_index = 0
        for step in transcript.steps:
            parts.append(format_action(step.action))
            if step.table is not None:
                table_index += 1
                parts.append(f"Intermediate table (T{table_index}):")
                parts.append(encode_head_row_cached(
                    step.table, max_rows=self.max_prompt_rows))
        prompt = "\n".join(parts)
        if force_answer:
            prompt += f"\n{_FORCED_ANSWER_SUFFIX}"
        return prompt


def build_cot_prompt(t0: DataFrame, question: str, *,
                     languages: tuple[str, ...] = ("sql", "python"),
                     max_prompt_rows: int | None = 50) -> str:
    """The Codex-CoT ablation prompt (Section 4.3.1).

    Unlike the ReAcTable template, this asks for *all* the code in one
    completion — no intermediate tables are ever fed back.
    """
    names = {"sql": "SQL", "python": "Python"}
    rendered = " or ".join(
        names.get(lang, lang.capitalize()) for lang in languages)
    return (
        f"{_TABLE_MARKER}\n"
        f"{encode_head_row_cached(t0, max_rows=max_prompt_rows)}\n"
        f'{_QUESTION_MARKER}{question}". '
        f"Generate all the {rendered} code needed to answer the question "
        f"in a single response, thinking step by step, then state the "
        f"final answer."
    )


def build_commented_prompt(t0: DataFrame, question: str, *,
                           languages: tuple[str, ...] = ("sql", "python"),
                           max_prompt_rows: int | None = 50) -> str:
    """The commented-program prompt (the arxiv 2602.00543 strategy).

    Like the CoT prompt this asks for the whole program at once, but in
    *commented* form: a ``#`` comment line describing each step precedes
    its code block.  Spelling out the intent before the code anchors
    each block (and lets the engine keep multi-line blocks together),
    which is the strategy's measurable edge over plain CoT.
    """
    names = {"sql": "SQL", "python": "Python"}
    rendered = " or ".join(
        names.get(lang, lang.capitalize()) for lang in languages)
    return (
        f"{_TABLE_MARKER}\n"
        f"{encode_head_row_cached(t0, max_rows=max_prompt_rows)}\n"
        f'{_QUESTION_MARKER}{question}". '
        f"Generate the complete {rendered} program needed to answer the "
        f"question, writing a {_COMMENTED_INSTRUCTION_HINT} starting "
        f"with '#' before each code block to describe what it does, "
        f"then state the final answer."
    )


@dataclass
class ParsedPrompt:
    """What the simulated model recovers from a prompt string."""

    question: str
    t0: DataFrame
    num_code_steps: int
    current_table: DataFrame
    force_answer: bool
    languages: tuple[str, ...]
    cot: bool = False
    #: The prompt asks for table-evolving operators (chain-of-table).
    chain_of_table: bool = False
    #: The prompt asks for a commented program (commented-code strategy).
    commented: bool = False
    #: Questions of the few-shot demonstrations preceding the live one.
    demo_questions: tuple[str, ...] = ()
    #: The prompt asks for a verbal reflection, not the next action.
    reflect: bool = False
    #: Verbal reflections prepended to a chain re-run (0 = plain chain).
    num_reflections: int = 0
    #: Failure category quoted in a reflection-request prompt ("" outside
    #: reflection requests).
    failure_category: str = ""


def parse_prompt(prompt: str) -> ParsedPrompt:
    """Invert :meth:`PromptBuilder.build` (ignoring few-shot demos)."""
    # The *last* table marker belongs to the live question; everything
    # before it is few-shot demonstration text.
    marker_at = prompt.rfind(_TABLE_MARKER)
    if marker_at == -1:
        raise PromptError("prompt has no table marker")
    body = prompt[marker_at + len(_TABLE_MARKER):]
    demo_questions = _extract_questions(prompt[:marker_at])

    question_at = body.find(_QUESTION_MARKER)
    if question_at == -1:
        raise PromptError("prompt has no question marker")
    t0_text = body[:question_at]
    rest = body[question_at + len(_QUESTION_MARKER):]
    quote_end = rest.find('". ')
    if quote_end == -1:
        raise PromptError("unterminated question quote")
    question = rest[:quote_end]
    after_question = rest[quote_end:]

    t0 = decode_head_row(t0_text, name="T0")

    languages: list[str] = []
    instruction_line = after_question.split("\n", 1)[0]
    if "SQL" in instruction_line:
        languages.append("sql")
    if "Python" in instruction_line:
        languages.append("python")
    if not languages:
        languages = ["sql", "python"]

    num_code_steps = after_question.count(_INTERMEDIATE_MARKER)
    current_table = t0
    last_marker = after_question.rfind(_INTERMEDIATE_MARKER)
    if last_marker != -1:
        block = after_question[last_marker:]
        lines = block.splitlines()[1:]
        table_lines = []
        for line in lines:
            if line.startswith(("[HEAD]", "[ROW]", "[...]")):
                table_lines.append(line)
            elif table_lines:
                break
        current_table = decode_head_row(
            "\n".join(table_lines), name=f"T{num_code_steps}")

    force_answer = prompt.rstrip().endswith(_FORCED_ANSWER_SUFFIX)
    reflect = prompt.rstrip().endswith(_REFLECTION_SUFFIX)
    failure_category = ""
    if reflect:
        category_match = _FAILURE_CATEGORY.search(body)
        if category_match:
            failure_category = category_match.group(1)
    # Reflections are prepended *before* the few-shot block, so they land
    # in the pre-marker text alongside the demonstrations.
    num_reflections = len(_REFLECTION_LINE.findall(prompt[:marker_at]))
    return ParsedPrompt(
        question=question,
        t0=t0,
        num_code_steps=num_code_steps,
        current_table=current_table,
        force_answer=force_answer,
        languages=tuple(languages),
        cot=_COT_INSTRUCTION_HINT in instruction_line,
        chain_of_table=_OPERATOR_INSTRUCTION_HINT in instruction_line,
        commented=_COMMENTED_INSTRUCTION_HINT in instruction_line,
        demo_questions=demo_questions,
        reflect=reflect,
        num_reflections=num_reflections,
        failure_category=failure_category,
    )


def _extract_questions(text: str) -> tuple[str, ...]:
    """All quoted questions in a block of demonstration text."""
    questions = []
    cursor = 0
    while True:
        start = text.find(_QUESTION_MARKER, cursor)
        if start == -1:
            return tuple(questions)
        start += len(_QUESTION_MARKER)
        end = text.find('". ', start)
        if end == -1:
            return tuple(questions)
        questions.append(text[start:end])
        cursor = end
