"""Tests for the chaos harness wrapping agent specs."""

from repro.faults import FaultConfig, FaultyAgentSpec, FaultyExecutor, \
    FaultyModel
from repro.faults.harness import FORCED_SEED_SALT
from repro.llm import RetryingModel
from repro.serving import AgentSpec


def spec_for(wikitq_small, **kwargs) -> FaultyAgentSpec:
    return FaultyAgentSpec(AgentSpec(bank=wikitq_small.bank),
                           FaultConfig.uniform(0.2), **kwargs)


class TestSurface:
    def test_profile_delegates(self, wikitq_small):
        assert spec_for(wikitq_small).profile == "codex-sim"

    def test_config_key_extends_inner(self, wikitq_small):
        inner = AgentSpec(bank=wikitq_small.bank)
        faulty = FaultyAgentSpec(inner, FaultConfig.uniform(0.2))
        assert faulty.config_key.startswith(inner.config_key)
        assert "faults=" in faulty.config_key

    def test_config_key_distinguishes_rates(self, wikitq_small):
        inner = AgentSpec(bank=wikitq_small.bank)
        one = FaultyAgentSpec(inner, FaultConfig.uniform(0.1))
        two = FaultyAgentSpec(inner, FaultConfig.uniform(0.2))
        assert one.config_key != two.config_key
        # ... and a fault run never shares cache entries with clean runs.
        assert one.config_key != inner.config_key


class TestInstrumentation:
    def test_build_wraps_model_and_executors(self, wikitq_small):
        runner = spec_for(wikitq_small).build(seed=5)
        assert isinstance(runner.model, FaultyModel)
        assert runner.model.plan.seed == 5
        executors = list(runner.registry)
        assert executors
        assert all(isinstance(executor, FaultyExecutor)
                   for executor in executors)
        # Model and executors share one plan (one schedule per attempt).
        assert all(executor.plan is runner.model.plan
                   for executor in executors)

    def test_model_retries_add_retrying_rung(self, wikitq_small):
        runner = spec_for(wikitq_small, model_retries=2).build(seed=5)
        assert isinstance(runner.model, RetryingModel)
        assert runner.model.max_retries == 2
        assert isinstance(runner.model.inner, FaultyModel)

    def test_build_forced_uses_salted_plan_seed(self, wikitq_small):
        spec = spec_for(wikitq_small)
        attempt = spec.build(seed=5)
        forced = spec.build_forced(seed=5)
        assert forced.model.plan.seed == 5 ^ FORCED_SEED_SALT
        assert forced.model.plan.seed != attempt.model.plan.seed

    def test_on_fault_hook_reaches_injectors(self, wikitq_small):
        seen = []
        runner = spec_for(
            wikitq_small,
            on_fault=lambda *a: seen.append(a)).build(seed=5)
        assert runner.model.on_fault is not None
        example = wikitq_small.examples[0]
        for index in range(40):     # enough calls to hit the 20% rate
            try:
                runner.model.complete(f"{example.question} #{index}")
            except Exception:
                pass
        assert seen
        assert all(site == "model" for site, _, _ in seen)
