"""Telemetry under coroutine interleaving: one clean span tree per request.

The thread pool got context isolation for free (one thread, one
contextvars context).  On the async server dozens of request coroutines
interleave on one event loop — contextvars give each *task* its own
context, so span trees must still come out per-request, correctly
nested, with model cost folded up to each request root and never across
requests.
"""

import asyncio

from repro.serving import AgentSpec, TQARequest
from repro.aio import AsyncServer
from repro.telemetry import Telemetry

N_REQUESTS = 12


def serve(bench, telemetry, *, voting="none", samples=1, count=N_REQUESTS,
          max_inflight=6):
    spec = AgentSpec(bank=bench.bank, voting=voting, samples=samples)

    async def scenario():
        async with AsyncServer(spec, max_inflight=max_inflight,
                               telemetry=telemetry) as server:
            tasks = [asyncio.create_task(server.answer(TQARequest(
                table=ex.table, question=ex.question, seed=1,
                uid=ex.uid))) for ex in bench.examples[:count]]
            return await asyncio.gather(*tasks)

    return asyncio.run(scenario())


def trees(telemetry):
    by_trace = {}
    for s in telemetry.spans:
        by_trace.setdefault(s.trace_id, []).append(s)
    return by_trace


class TestInterleavedSpanTrees:
    def test_one_well_formed_tree_per_request(self, wikitq_small):
        telemetry = Telemetry()
        responses = serve(wikitq_small, telemetry)
        assert all(r.outcome == "ok" for r in responses)

        by_trace = trees(telemetry)
        assert len(by_trace) == N_REQUESTS
        for trace_id, spans in by_trace.items():
            by_id = {s.span_id: s for s in spans}
            roots = [s for s in spans if s.parent_id is None]
            assert [r.kind for r in roots] == ["request"]
            # Every non-root span hangs off a span of the same trace —
            # interleaving never grafted it onto another request's tree.
            for s in spans:
                if s.parent_id is not None:
                    assert s.parent_id in by_id
            kinds = {s.kind for s in spans}
            assert {"request", "attempt", "agent_run",
                    "model_call"} <= kinds
            # Parentage is the expected chain.
            attempt = next(s for s in spans if s.kind == "attempt")
            assert by_id[attempt.parent_id].kind == "request"
            agent_run = next(s for s in spans if s.kind == "agent_run")
            assert by_id[agent_run.parent_id].kind == "attempt"

    def test_model_cost_folds_to_each_request_root(self, wikitq_small):
        telemetry = Telemetry()
        serve(wikitq_small, telemetry)
        for trace_id, spans in trees(telemetry).items():
            root = next(s for s in spans if s.parent_id is None)
            calls = [s for s in spans if s.kind == "model_call"]
            assert calls
            # The root's fold-up equals the sum over its own leaves —
            # no other request's cost leaked in.
            assert root.model_calls == sum(s.model_calls for s in calls)
            assert root.prompt_tokens == sum(
                s.prompt_tokens for s in calls)
            assert root.completion_tokens == sum(
                s.completion_tokens for s in calls)
            assert root.prompt_tokens > 0

    def test_voted_requests_share_ticks_but_not_spans(self, wikitq_small):
        """s-vote requests batch their chains' ticks; each request still
        owns exactly one tree with a vote_run under its attempt."""
        telemetry = Telemetry()
        responses = serve(wikitq_small, telemetry, voting="s-vote",
                          samples=3, count=6)
        assert all(r.outcome == "ok" for r in responses)
        by_trace = trees(telemetry)
        assert len(by_trace) == 6
        for spans in by_trace.values():
            vote_runs = [s for s in spans if s.kind == "vote_run"]
            assert len(vote_runs) == 1
            assert vote_runs[0].attributes["n"] == 3

    def test_request_attributes_reach_the_root(self, wikitq_small):
        telemetry = Telemetry()
        responses = serve(wikitq_small, telemetry, count=4)
        for spans in trees(telemetry).values():
            root = next(s for s in spans if s.parent_id is None)
            assert root.attributes["outcome"] == "ok"
            assert root.attributes["attempts"] == 1
            assert root.status == "ok"
        assert responses
