"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.model == "codex-sim"

    def test_evaluate_options(self):
        args = build_parser().parse_args([
            "evaluate", "tabfact", "--voting", "s-vote", "--size", "10",
            "--sql-only",
        ])
        assert args.dataset == "tabfact"
        assert args.sql_only

    def test_batch_options(self):
        args = build_parser().parse_args([
            "batch", "wikitq", "--workers", "8", "--cache-size", "64",
            "--timeout", "2.5", "--metrics-out", "m.json",
        ])
        assert args.workers == 8
        assert args.cache_size == 64
        assert args.timeout == 2.5
        assert args.metrics_out == "m.json"

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "wikitq"])
        assert args.workers == 4
        assert args.cache_size == 1024
        assert args.timeout is None
        assert args.metrics_out is None

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos", "wikitq"])
        assert args.rates == "0,0.05,0.2"
        assert args.retries == 2
        assert args.model_retries == 2
        assert args.breaker_threshold == 5
        assert args.verify_passthrough

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert not args.timings
        assert not args.update_baseline
        assert args.baseline is None

    def test_perf_options(self):
        args = build_parser().parse_args([
            "perf", "--timings", "--baseline", "b.json",
        ])
        assert args.timings
        assert args.baseline == "b.json"

    def test_chaos_options(self):
        args = build_parser().parse_args([
            "chaos", "tabfact", "--rates", "0,0.5", "--size", "10",
            "--breaker-threshold", "0", "--no-verify-passthrough",
        ])
        assert args.rates == "0,0.5"
        assert args.breaker_threshold == 0
        assert not args.verify_passthrough
        assert not args.use_async

    def test_chaos_async_flag(self):
        args = build_parser().parse_args(["chaos", "wikitq", "--async"])
        assert args.use_async

    def test_batch_reflect_flag(self):
        assert not build_parser().parse_args(
            ["batch", "wikitq"]).reflect
        assert build_parser().parse_args(
            ["batch", "wikitq", "--reflect"]).reflect


class TestDemo:
    def test_demo_solves_running_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "which country had the most cyclists" in out
        assert "Answer: ITA" in out


class TestGenerate:
    def test_emits_jsonl(self, capsys):
        assert main(["generate", "wikitq", "--size", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert {"uid", "question", "answer", "table"} <= set(record)


class TestAnalyze:
    def test_renders_report(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["analyze", "wikitq", "--size", "8",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Error analysis" in out
        assert trace.exists()


class TestEvaluate:
    def test_reports_accuracy(self, capsys):
        assert main(["evaluate", "wikitq", "--size", "10"]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        assert "iteration histogram:" in out

    def test_fetaqa_reports_rouge(self, capsys):
        assert main(["evaluate", "fetaqa", "--size", "5"]) == 0
        assert "ROUGE-1/2/L" in capsys.readouterr().out

    def test_voting_flag(self, capsys):
        assert main(["evaluate", "wikitq", "--size", "5",
                     "--voting", "s-vote", "--samples", "3"]) == 0
        assert "voting=s-vote" in capsys.readouterr().out


class TestBatch:
    def test_reports_accuracy_and_serving_stats(self, capsys):
        assert main(["batch", "wikitq", "--size", "10",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "accuracy:" in out
        assert "throughput:" in out
        assert "cache hit rate:" in out

    def test_reflect_flag_reports_reflections(self, capsys):
        assert main(["batch", "wikitq", "--size", "12",
                     "--workers", "2", "--reflect"]) == 0
        out = capsys.readouterr().out
        assert "reflections:" in out
        assert "reflected outcomes:" in out

    def test_matches_sequential_accuracy(self, capsys):
        assert main(["evaluate", "wikitq", "--size", "12"]) == 0
        sequential = capsys.readouterr().out
        assert main(["batch", "wikitq", "--size", "12",
                     "--workers", "4"]) == 0
        batched = capsys.readouterr().out
        pick = lambda text, label: next(  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(label))
        assert (pick(batched, "accuracy:")
                == pick(sequential, "accuracy:"))
        assert (pick(batched, "iteration histogram:")
                == pick(sequential, "iteration histogram:"))

    def test_writes_metrics_and_trace(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["batch", "wikitq", "--size", "6",
                     "--workers", "2",
                     "--metrics-out", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "metrics written:" in out
        assert "trace written:" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["completed"] == 6
        assert trace_path.exists()


class TestTrace:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["batch", "wikitq", "--size", "6", "--workers", "2",
                     "--trace", str(path)]) == 0
        return path

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_summary_reports_depth_and_tokens(self, capsys, trace_path):
        capsys.readouterr()
        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace: 6 request(s)" in out
        assert "tokens:" in out
        assert "model calls" in out
        # Acceptance criterion: request span depth >= 3 over the
        # serving envelope -> agent -> iteration nesting.
        depths = [int(part.split("=")[1])
                  for line in out.splitlines() if "depth=" in line
                  for part in line.split() if part.startswith("depth=")]
        assert depths and all(depth >= 3 for depth in depths)

    def test_summary_tokens_match_trace_cost(self, capsys, trace_path):
        from repro.telemetry import TraceAnalyzer, cost_summary, load_trace

        capsys.readouterr()
        trace = load_trace(trace_path)
        analyzer = TraceAnalyzer(trace)
        summary = analyzer.summary()
        # The analyzer's totals are the span-tree fold-up; cost_summary
        # recomputes them from the raw roots — they must agree.
        spans_cost = {
            "prompt": sum(s.get("prompt_tokens", 0)
                          for s in trace["spans"]
                          if s.get("parent_id") is None),
            "completion": sum(s.get("completion_tokens", 0)
                              for s in trace["spans"]
                              if s.get("parent_id") is None),
        }
        assert summary["prompt_tokens"] == spans_cost["prompt"]
        assert summary["completion_tokens"] == spans_cost["completion"]
        assert cost_summary.__module__ == "repro.telemetry.cost"

    def test_critical_path(self, capsys, trace_path):
        capsys.readouterr()
        assert main(["trace", "critical-path", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "-> request" in out
        assert "-> agent_run" in out

    def test_flame(self, capsys, trace_path):
        capsys.readouterr()
        assert main(["trace", "flame", str(trace_path),
                     "--width", "20"]) == 0
        out = capsys.readouterr().out
        assert "|#" in out
        assert "request wikitq-" in out

    def test_export_chrome_is_valid_trace_event_json(
            self, capsys, trace_path, tmp_path):
        capsys.readouterr()
        out_path = tmp_path / "chrome.json"
        assert main(["trace", "export", str(trace_path),
                     "--format", "chrome", "-o", str(out_path)]) == 0
        chrome = json.loads(out_path.read_text(encoding="utf-8"))
        assert set(chrome) == {"traceEvents", "displayTimeUnit"}
        phases = {entry["ph"] for entry in chrome["traceEvents"]}
        assert phases == {"X", "i"}
        for entry in chrome["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid", "cat"} <= set(entry)

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "summary",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load trace" in capsys.readouterr().err


class TestPerf:
    def test_smoke_passes(self, capsys):
        assert main(["perf"]) == 0
        assert "perf checks: ok" in capsys.readouterr().out

    def test_timings_with_fresh_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        assert main(["perf", "--timings",
                     "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert "native_group_aggregate" in capsys.readouterr().out


class TestChaos:
    def test_sweep_reports_degradation_curve(self, capsys):
        assert main(["chaos", "wikitq", "--size", "8", "--workers", "2",
                     "--rates", "0,0.3",
                     "--fault-latency", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "rate" in out and "accuracy" in out
        assert "0.00" in out and "0.30" in out
        assert "bit-identical to uninjected run: True" in out

    def test_async_sweep_verifies_rate_zero_passthrough(self, capsys):
        # The satellite bar: the async ladder, like the pool, must be
        # bit-identical at rate zero with the fault wrappers installed.
        assert main(["chaos", "wikitq", "--size", "6", "--workers", "2",
                     "--rates", "0", "--fault-latency", "0.001",
                     "--async"]) == 0
        out = capsys.readouterr().out
        assert "async" in out
        assert "bit-identical to uninjected run: True" in out

    def test_writes_metrics_and_trace(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["chaos", "wikitq", "--size", "6", "--workers", "2",
                     "--rates", "0.3", "--fault-latency", "0.001",
                     "--metrics-out", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "metrics written" in out
        assert "trace written" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["completed"] == 6
        assert metrics["faults_injected"] > 0
        assert sum(metrics["outcomes"].values()) == 6
        assert trace_path.exists()

    def test_bad_rates_rejected(self, capsys):
        assert main(["chaos", "wikitq", "--rates", "nope"]) == 2


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "wikitq"])
        assert args.port == 0
        assert args.max_inflight == 16
        assert args.requests == 0
        assert args.slo_availability == 0.995
        assert args.sample_rate == 0.1

    def test_replay_with_self_scrape(self, capsys):
        assert main(["serve", "wikitq", "--size", "8", "--requests",
                     "8", "--scrape"]) == 0
        out = capsys.readouterr().out
        assert "/metrics /healthz /readyz /slo /traces" in out
        assert "outcomes: {'ok': 8}" in out
        assert "serving_outcomes_total" in out
        assert '"tenants"' in out
        assert "drained and stopped" in out
