"""The prompt-encoding cache must be invisible except for speed."""

import pytest

from repro.perf import (
    EncodedTableCache,
    encode_cache_enabled,
    encode_head_row_cached,
)
from repro.table import DataFrame, encode_head_row


def _frame() -> DataFrame:
    return DataFrame({
        "city": ["Oslo", "Lima", "Pune"],
        "pop": [709, 9752, 3124],
    }, name="T0")


class TestEncodeHeadRowCached:
    def test_matches_direct_encoding(self):
        frame = _frame()
        assert (encode_head_row_cached(frame, max_rows=None)
                == encode_head_row(frame, max_rows=None))

    def test_disabled_bypasses_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODE_CACHE", "0")
        assert not encode_cache_enabled()
        frame = _frame()
        assert (encode_head_row_cached(frame, max_rows=2)
                == encode_head_row(frame, max_rows=2))

    def test_mutation_is_never_stale(self):
        frame = _frame()
        before = encode_head_row_cached(frame, max_rows=None)
        frame["pop"] = [1, 2, 3]
        after = encode_head_row_cached(frame, max_rows=None)
        assert after != before
        assert after == encode_head_row(frame, max_rows=None)

    def test_max_rows_is_part_of_the_key(self):
        frame = _frame()
        assert (encode_head_row_cached(frame, max_rows=1)
                != encode_head_row_cached(frame, max_rows=2))


class TestEncodedTableCache:
    def test_hit_and_miss_counters(self):
        cache = EncodedTableCache()
        frame = _frame()
        cache.encode(frame, max_rows=None)
        cache.encode(frame, max_rows=None)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["hit_rate"] == 0.5

    def test_equal_content_shares_an_entry(self):
        cache = EncodedTableCache()
        cache.encode(_frame(), max_rows=None)
        rendered = cache.encode(_frame(), max_rows=None)
        assert len(cache) == 1
        assert cache.stats()["hits"] == 1
        assert rendered == encode_head_row(_frame(), max_rows=None)

    def test_lru_eviction(self):
        cache = EncodedTableCache(capacity=2)
        frames = [DataFrame({"a": [i]}, name="T") for i in range(3)]
        for frame in frames:
            cache.encode(frame, max_rows=None)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # frames[0] was evicted: encoding it again is a miss.
        misses = cache.stats()["misses"]
        cache.encode(frames[0], max_rows=None)
        assert cache.stats()["misses"] == misses + 1

    def test_clear(self):
        cache = EncodedTableCache()
        cache.encode(_frame(), max_rows=None)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EncodedTableCache(capacity=0)
