"""Corruption operators: the error modes of the simulated LLM.

When the simulated model "fails" a reasoning step, it does not simply flag
the question wrong — it emits genuinely erroneous code, so the agent's
exception-handling machinery (Section 3.3 of the paper) is exercised for
real.  Each operator mirrors a failure class observed with real LLMs:

* ``WRONG_COLUMN``      — hallucinated column name; the SQL fails everywhere
                          and the agent is eventually forced to answer.
* ``STALE_COLUMN``      — references a column that only exists in an earlier
                          table; the retry-over-previous-tables handler can
                          rescue this one.
* ``WRONG_CONSTANT``    — off-by-one filter constant; executes but is wrong.
* ``WRONG_AGGREGATE``   — sum/avg/max confusion; executes but is wrong.
* ``FLIPPED_ORDER``     — ASC/DESC confusion in superlatives.
* ``SYNTAX_ERROR``      — broken code; the executor raises.
* ``MODULE_HALLUCINATION`` — imports an installable module; the runtime
                          install handler rescues it (benign).
"""

from __future__ import annotations

import dataclasses
import enum
import random
import re

from repro.plans.steps import (
    AggregateStep,
    CodeStep,
    DiffStep,
    ExtractStep,
    FilterStep,
    GroupAggStep,
    GroupCountStep,
    ProjectStep,
    SuperlativeStep,
)
from repro.table.frame import DataFrame

__all__ = ["ErrorMode", "apply_corruption", "corrupt_code_text"]


class ErrorMode(enum.Enum):
    WRONG_COLUMN = "wrong_column"
    STALE_COLUMN = "stale_column"
    WRONG_CONSTANT = "wrong_constant"
    WRONG_AGGREGATE = "wrong_aggregate"
    FLIPPED_ORDER = "flipped_order"
    SYNTAX_ERROR = "syntax_error"
    MODULE_HALLUCINATION = "module_hallucination"

    @property
    def is_recoverable(self) -> bool:
        """True if the agent's exception handling can fully rescue it."""
        return self in (ErrorMode.STALE_COLUMN,
                        ErrorMode.MODULE_HALLUCINATION)


_AGG_CONFUSION = {"sum": "avg", "avg": "max", "min": "max", "max": "min",
                  "count": "sum"}


def _replace(step, **changes):
    return dataclasses.replace(step, **changes)


def _hallucinate_column(name: str, rng: random.Random) -> str:
    """Produce a plausible-but-wrong column name."""
    choices = [
        name + "_id",
        name[:-1] if len(name) > 3 else name + "x",
        "the_" + name,
        name + "_name",
    ]
    return rng.choice(choices)


def apply_corruption(step: CodeStep, mode: ErrorMode, *,
                     current: DataFrame, original: DataFrame,
                     rng: random.Random) -> CodeStep | None:
    """Return a corrupted variant of ``step``, or None if ``mode`` does not
    apply to this step type (the caller then falls back to another mode).

    ``current`` is the table the step will run against; ``original`` is T0
    (used by STALE_COLUMN to pick a column that exists there but not in
    ``current``).
    """
    if mode is ErrorMode.WRONG_COLUMN:
        return _wrong_column(step, rng)
    if mode is ErrorMode.STALE_COLUMN:
        return _stale_column(step, current, original, rng)
    if mode is ErrorMode.WRONG_CONSTANT:
        return _wrong_constant(step, rng)
    if mode is ErrorMode.WRONG_AGGREGATE:
        return _wrong_aggregate(step)
    if mode is ErrorMode.FLIPPED_ORDER:
        return _flipped_order(step)
    if mode is ErrorMode.MODULE_HALLUCINATION:
        return None  # handled at code-text level (needs a python step)
    if mode is ErrorMode.SYNTAX_ERROR:
        return None  # handled at code-text level
    raise ValueError(f"unknown error mode {mode!r}")


def _wrong_column(step: CodeStep, rng: random.Random) -> CodeStep | None:
    columns = step.input_columns()
    if not columns:
        return None
    victim = rng.choice(list(columns))
    fake = _hallucinate_column(victim, rng)
    return _substitute_column(step, victim, fake)


def _stale_column(step: CodeStep, current: DataFrame, original: DataFrame,
                  rng: random.Random) -> CodeStep | None:
    stale = [name for name in original.columns if name not in current]
    if not stale:
        return None
    columns = step.input_columns()
    if not columns:
        return None
    victim = rng.choice(list(columns))
    replacement = rng.choice(stale)
    return _substitute_column(step, victim, replacement)


def _substitute_column(step: CodeStep, old: str, new: str) -> CodeStep | None:
    if isinstance(step, FilterStep):
        pattern = re.compile(rf"\b{re.escape(old)}\b")
        condition = pattern.sub(new, step.condition)
        columns = tuple(new if c == old else c for c in step.columns)
        reads = tuple(new if c == old else c for c in step.reads)
        return _replace(step, condition=condition, columns=columns,
                        reads=reads)
    if isinstance(step, ProjectStep):
        return _replace(step, columns=tuple(
            new if c == old else c for c in step.columns))
    if isinstance(step, ExtractStep):
        return _replace(step, source=new if step.source == old else step.source)
    if isinstance(step, GroupCountStep):
        return _replace(step, key=new if step.key == old else step.key)
    if isinstance(step, GroupAggStep):
        changes = {}
        if step.key == old:
            changes["key"] = new
        if step.value == old:
            changes["value"] = new
        return _replace(step, **changes) if changes else None
    if isinstance(step, SuperlativeStep):
        changes = {}
        if step.target == old:
            changes["target"] = new
        if step.by == old:
            changes["by"] = new
        return _replace(step, **changes) if changes else None
    if isinstance(step, AggregateStep):
        return _replace(step, column=new if step.column == old else step.column)
    if isinstance(step, DiffStep):
        changes = {}
        if step.key == old:
            changes["key"] = new
        if step.value == old:
            changes["value"] = new
        return _replace(step, **changes) if changes else None
    return None


_NUMBER_RE = re.compile(r"\d+")


def _wrong_constant(step: CodeStep, rng: random.Random) -> CodeStep | None:
    if isinstance(step, FilterStep) and _NUMBER_RE.search(step.condition):
        def bump(match: re.Match) -> str:
            value = int(match.group())
            return str(max(0, value + rng.choice((-1, 1))))
        return _replace(step,
                        condition=_NUMBER_RE.sub(bump, step.condition,
                                                 count=1))
    if isinstance(step, DiffStep):
        return _replace(step, left=step.right, right=step.left)
    if isinstance(step, SuperlativeStep):
        return _replace(step, k=step.k + 1)
    if isinstance(step, FilterStep):
        # No numeric constant: damage a string literal instead.
        match = re.search(r"'([^']*)'", step.condition)
        if match and len(match.group(1)) > 2:
            broken = match.group(1)[:-1]
            return _replace(step, condition=step.condition.replace(
                match.group(0), f"'{broken}'", 1))
    return None


def _wrong_aggregate(step: CodeStep) -> CodeStep | None:
    if isinstance(step, GroupAggStep):
        return _replace(step, agg=_AGG_CONFUSION.get(step.agg, "avg"))
    if isinstance(step, AggregateStep) and step.column != "*":
        return _replace(step, agg=_AGG_CONFUSION.get(step.agg, "avg"))
    if isinstance(step, GroupCountStep):
        return _replace(step, descending=not step.descending)
    return None


def _flipped_order(step: CodeStep) -> CodeStep | None:
    if isinstance(step, SuperlativeStep):
        return _replace(step, descending=not step.descending)
    if isinstance(step, GroupCountStep):
        return _replace(step, descending=not step.descending)
    if isinstance(step, GroupAggStep) and step.descending is not None:
        return _replace(step, descending=not step.descending)
    return None


def corrupt_code_text(code: str, mode: ErrorMode,
                      rng: random.Random) -> str:
    """Code-text-level corruptions (applied after rendering)."""
    if mode is ErrorMode.SYNTAX_ERROR:
        return _break_syntax(code, rng)
    if mode is ErrorMode.MODULE_HALLUCINATION:
        from repro.executors.python_executor import INSTALLABLE_MODULES
        module = rng.choice(INSTALLABLE_MODULES)
        return f"import {module}\n{code}"
    raise ValueError(f"{mode} is not a code-text corruption")


def _break_syntax(code: str, rng: random.Random) -> str:
    """Delete a structural token so the code no longer parses/executes."""
    for needle in ("FROM", "WHERE", "GROUP BY", "lambda", "def ", "("):
        index = code.find(needle)
        if index != -1:
            return code[:index] + code[index + len(needle):]
    return code + " ("
