"""Recursive-descent parser producing :mod:`repro.sqlengine.ast_nodes`.

Grammar (single-table SELECT, the surface TQA queries use)::

    select    := SELECT [DISTINCT] items FROM table [alias]
                 [WHERE expr] [GROUP BY expr,+] [HAVING expr]
                 [ORDER BY order,+] [LIMIT n [OFFSET m]] [;]
    items     := item ("," item)*      item := "*" | expr [[AS] ident]
    order     := expr [ASC|DESC]

Expression precedence (low to high): OR, AND, NOT, comparison / IN /
BETWEEN / LIKE / IS NULL, additive (+, -, ||), multiplicative (*, /, %),
unary minus, primary.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    JoinClause,
    LikeOp,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import Token, TokenKind
from repro.telemetry.spans import span

__all__ = ["parse_select", "parse_expression"]

_COMPARISON_OPS = ("=", "==", "<>", "!=", "<", "<=", ">", ">=")
_CAST_TARGETS = ("INTEGER", "INT", "REAL", "FLOAT", "DOUBLE", "TEXT",
                 "VARCHAR", "CHAR", "NUMERIC")


def parse_select(sql: str) -> SelectStatement:
    """Parse a single SELECT statement."""
    with span("sql_parse", chars=len(sql)):
        parser = _Parser(tokenize(sql))
        statement = parser.select_statement()
        parser.expect_end()
        return statement


def parse_expression(sql: str) -> Expression:
    """Parse a standalone expression (used by tests and the evaluator)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expression()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # --- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def match_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.match_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, found {self.current.text!r}",
                self.current.position)

    def expect_kind(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise SQLSyntaxError(
                f"expected {kind.value}, found {self.current.text!r}",
                self.current.position)
        return self.advance()

    def expect_end(self) -> None:
        while self.current.kind is TokenKind.SEMICOLON:
            self.advance()
        if self.current.kind is not TokenKind.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input: {self.current.text!r}",
                self.current.position)

    # --- statement ----------------------------------------------------------

    def select_statement(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.match_keyword("DISTINCT")
        items = self._select_items()
        self.expect_keyword("FROM")
        table = self.expect_kind(TokenKind.IDENT).text
        table_alias = None
        if self.match_keyword("AS"):
            table_alias = self.expect_kind(TokenKind.IDENT).text
        elif self.current.kind is TokenKind.IDENT:
            table_alias = self.advance().text
        joins = []
        while self.current.is_keyword("JOIN", "INNER", "LEFT"):
            joins.append(self._join_clause())
        where = None
        if self.match_keyword("WHERE"):
            where = self.expression()
        group_by: tuple = ()
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self._expression_list())
        having = None
        if self.match_keyword("HAVING"):
            having = self.expression()
        order_by: tuple = ()
        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = tuple(self._order_items())
        limit_value, offset_value = None, 0
        if self.match_keyword("LIMIT"):
            limit_value = self._integer("LIMIT")
            if self.match_keyword("OFFSET"):
                offset_value = self._integer("OFFSET")
            elif self.current.kind is TokenKind.COMMA:
                # SQLite's `LIMIT offset, count` form.
                self.advance()
                offset_value, limit_value = limit_value, self._integer("LIMIT")
        return SelectStatement(
            items=tuple(items),
            table=table,
            table_alias=table_alias,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit_value,
            offset=offset_value,
            distinct=distinct,
        )

    def _join_clause(self) -> JoinClause:
        kind = "inner"
        if self.match_keyword("LEFT"):
            kind = "left"
            self.match_keyword("OUTER")
        else:
            self.match_keyword("INNER")
        self.expect_keyword("JOIN")
        table = self.expect_kind(TokenKind.IDENT).text
        alias = None
        if self.match_keyword("AS"):
            alias = self.expect_kind(TokenKind.IDENT).text
        elif self.current.kind is TokenKind.IDENT:
            alias = self.advance().text
        self.expect_keyword("ON")
        return JoinClause(table=table, alias=alias, kind=kind,
                          on=self.expression())

    def _integer(self, clause: str) -> int:
        token = self.expect_kind(TokenKind.NUMBER)
        try:
            return int(token.text)
        except ValueError:
            raise SQLSyntaxError(
                f"{clause} requires an integer, found {token.text!r}",
                token.position) from None

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.current.kind is TokenKind.STAR:
            self.advance()
            return SelectItem(Star())
        expr = self.expression()
        alias = None
        if self.match_keyword("AS"):
            alias = self._alias_name()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _alias_name(self) -> str:
        token = self.current
        if token.kind in (TokenKind.IDENT, TokenKind.STRING):
            self.advance()
            return token.text
        if token.kind is TokenKind.KEYWORD:  # e.g. AS count
            self.advance()
            return token.text
        raise SQLSyntaxError(
            f"expected alias name, found {token.text!r}", token.position)

    def _order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.expression()
            descending = False
            if self.match_keyword("DESC"):
                descending = True
            else:
                self.match_keyword("ASC")
            items.append(OrderItem(expr, descending))
            if self.current.kind is not TokenKind.COMMA:
                return items
            self.advance()

    def _expression_list(self) -> list[Expression]:
        items = [self.expression()]
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            items.append(self.expression())
        return items

    # --- expressions ----------------------------------------------------------

    def expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self.current.is_keyword("OR"):
            self.advance()
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self.current.is_keyword("AND"):
            self.advance()
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self.match_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        while True:
            token = self.current
            if token.kind is TokenKind.OPERATOR and token.text in _COMPARISON_OPS:
                self.advance()
                op = {"==": "=", "!=": "<>"}.get(token.text, token.text)
                left = BinaryOp(op, left, self._additive())
                continue
            negated = False
            if token.is_keyword("NOT"):
                nxt = self._tokens[self._pos + 1]
                if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                    self.advance()
                    negated = True
                    token = self.current
                else:
                    break
            if token.is_keyword("IN"):
                self.advance()
                self.expect_kind(TokenKind.LPAREN)
                items = tuple(self._expression_list())
                self.expect_kind(TokenKind.RPAREN)
                left = InList(left, items, negated)
                continue
            if token.is_keyword("BETWEEN"):
                self.advance()
                low = self._additive()
                self.expect_keyword("AND")
                high = self._additive()
                left = Between(left, low, high, negated)
                continue
            if token.is_keyword("LIKE"):
                self.advance()
                left = LikeOp(left, self._additive(), negated)
                continue
            if token.is_keyword("IS"):
                self.advance()
                is_negated = self.match_keyword("NOT")
                self.expect_keyword("NULL")
                left = IsNull(left, is_negated)
                continue
            break
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self.current
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-", "||"):
                self.advance()
                left = BinaryOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self.current
            if token.kind is TokenKind.STAR:
                self.advance()
                left = BinaryOp("*", left, self._unary())
            elif token.kind is TokenKind.OPERATOR and token.text in ("/", "%"):
                self.advance()
                left = BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        token = self.current
        if token.kind is TokenKind.OPERATOR and token.text in ("-", "+"):
            self.advance()
            return UnaryOp(token.text, self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            text = token.text
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("CAST"):
            return self._cast()
        if token.is_keyword("CASE"):
            return self._case()
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.expression()
            self.expect_kind(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT or token.kind is TokenKind.KEYWORD:
            # Bare keyword identifiers (e.g. a column named `year`) are not
            # in KEYWORDS, but aggregate names like COUNT arrive as IDENT.
            return self._ident_or_call()
        raise SQLSyntaxError(
            f"unexpected token {token.text!r}", token.position)

    def _ident_or_call(self) -> Expression:
        token = self.advance()
        name = token.text
        if self.current.kind is TokenKind.LPAREN:
            self.advance()
            distinct = self.match_keyword("DISTINCT")
            args: tuple
            if self.current.kind is TokenKind.STAR:
                self.advance()
                args = (Star(),)
            elif self.current.kind is TokenKind.RPAREN:
                args = ()
            else:
                args = tuple(self._expression_list())
            self.expect_kind(TokenKind.RPAREN)
            return FunctionCall(name.lower(), args, distinct)
        if self.current.kind is TokenKind.DOT:
            self.advance()
            column = self.expect_kind(TokenKind.IDENT).text
            return ColumnRef(column, table=name)
        return ColumnRef(name)

    def _cast(self) -> Expression:
        self.expect_keyword("CAST")
        self.expect_kind(TokenKind.LPAREN)
        operand = self.expression()
        self.expect_keyword("AS")
        token = self.advance()
        target = token.upper
        if target not in _CAST_TARGETS:
            raise SQLSyntaxError(
                f"unsupported CAST target {token.text!r}", token.position)
        # Optional length suffix like VARCHAR(20).
        if self.current.kind is TokenKind.LPAREN:
            self.advance()
            self.expect_kind(TokenKind.NUMBER)
            self.expect_kind(TokenKind.RPAREN)
        self.expect_kind(TokenKind.RPAREN)
        canonical = {
            "INT": "INTEGER", "FLOAT": "REAL", "DOUBLE": "REAL",
            "NUMERIC": "REAL", "VARCHAR": "TEXT", "CHAR": "TEXT",
        }.get(target, target)
        return Cast(operand, canonical)

    def _case(self) -> Expression:
        self.expect_keyword("CASE")
        whens = []
        while self.match_keyword("WHEN"):
            cond = self.expression()
            self.expect_keyword("THEN")
            whens.append((cond, self.expression()))
        if not whens:
            raise SQLSyntaxError(
                "CASE requires at least one WHEN", self.current.position)
        default = None
        if self.match_keyword("ELSE"):
            default = self.expression()
        self.expect_keyword("END")
        return CaseWhen(tuple(whens), default)
