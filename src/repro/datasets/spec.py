"""TQA example specification and the question bank.

The :class:`QuestionBank` is the "pre-training corpus" of the simulated
LLM: it maps (question text, T0 fingerprint) to the example, from which the
model recovers the gold plan when it parses a prompt.  Both keys are fully
recoverable from the prompt text itself (the question appears verbatim and
the original table is always at the top of every prompt), so the model
still operates on nothing but its input string.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import DatasetError, UnknownQuestionError
from repro.plans.plan import Plan
from repro.table.frame import DataFrame

__all__ = ["TQAExample", "QuestionBank", "table_fingerprint_key"]


def table_fingerprint_key(frame: DataFrame) -> str:
    """Stable fingerprint of a table: header plus first-row digest."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update("|".join(frame.columns).encode("utf-8"))
    if frame.num_rows:
        first = "|".join(str(v) for v in frame.to_rows()[0])
        hasher.update(first.encode("utf-8"))
    hasher.update(str(frame.num_rows).encode("utf-8"))
    return hasher.hexdigest()


@dataclass
class TQAExample:
    """One benchmark question: table, NL question, gold plan and answer."""

    uid: str
    dataset: str                 # "wikitq" | "tabfact" | "fetaqa"
    table: DataFrame             # T0
    question: str
    plan: Plan
    gold_answer: list[str]
    template_id: str = ""
    #: Latent difficulty in [0, 1]; drives the simulated model's error rate.
    difficulty: float = 0.5
    #: True if the gold plan includes a Python-affine step.
    python_affine: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        return self.plan.num_iterations

    @property
    def bank_key(self) -> tuple[str, str]:
        return (self.question, table_fingerprint_key(self.table))


class QuestionBank:
    """Registry the simulated model consults to recover gold plans."""

    def __init__(self):
        self._examples: dict[tuple[str, str], TQAExample] = {}

    def register(self, example: TQAExample) -> None:
        key = example.bank_key
        if key in self._examples:
            raise DatasetError(
                f"duplicate question in bank: {example.question!r}")
        self._examples[key] = example

    def register_all(self, examples) -> None:
        for example in examples:
            self.register(example)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._examples

    def __len__(self) -> int:
        return len(self._examples)

    def lookup(self, question: str, table: DataFrame) -> TQAExample:
        key = (question, table_fingerprint_key(table))
        try:
            return self._examples[key]
        except KeyError:
            raise UnknownQuestionError(
                f"question not in bank: {question!r}") from None

    def examples(self) -> list[TQAExample]:
        return list(self._examples.values())
