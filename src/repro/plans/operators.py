"""Typed table-evolving operators (the Chain-of-Table action algebra).

Chain-of-Table (arxiv 2401.04398) reasons by *evolving the table*: at
each step the model names one typed operator — ``select_rows``,
``add_column``, ``group``, ``sort`` — instead of writing raw code.  This
module owns the operator vocabulary as a bidirectional mapping onto the
plan algebra of :mod:`repro.plans.steps`:

* :func:`parse_operator` — operator text → typed operator, which
  :meth:`Operator.to_step` lowers to a plan step whose ``render`` emits
  the real SQL/Python the executors run.  The engine side.
* :func:`render_operator` — plan step → operator text (``None`` for
  steps the vocabulary cannot express: whole-table aggregates,
  conditional counts, diffs).  The simulated-model side.

The textual grammar is deliberately tiny — ``name(key=value; ...)`` —
and forgiving about whitespace.  Corruption composes for free: damaging
a plan step with :func:`repro.plans.corruption.apply_corruption` and
re-rendering it yields a *well-formed operator computing the wrong
thing*, exactly like corrupted SQL.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.errors import OperatorParseError
from repro.plans.steps import (
    CodeStep,
    ExtractStep,
    FilterStep,
    GroupAggStep,
    GroupCountStep,
    ProjectStep,
    SuperlativeStep,
)

__all__ = [
    "Operator",
    "SelectRowsOp",
    "AddColumnOp",
    "GroupOp",
    "SortOp",
    "OPERATOR_NAMES",
    "parse_operator",
    "render_operator",
    "break_operator",
]


class Operator:
    """Base class for typed table-evolving operators."""

    name = ""

    def to_step(self) -> CodeStep:
        raise NotImplementedError


@dataclass(frozen=True)
class SelectRowsOp(Operator):
    """Keep rows matching ``condition`` and/or project ``columns``."""

    condition: str = ""
    columns: tuple[str, ...] = ()
    distinct: bool = False

    name = "select_rows"

    def to_step(self) -> CodeStep:
        if self.condition:
            return FilterStep(condition=self.condition,
                              columns=self.columns)
        if not self.columns:
            raise OperatorParseError(
                "select_rows needs a condition or columns")
        return ProjectStep(columns=self.columns, distinct=self.distinct)


@dataclass(frozen=True)
class AddColumnOp(Operator):
    """Derive a new column by regex extraction from a string column."""

    source: str
    target: str
    pattern: str
    cast_numeric: bool = False

    name = "add_column"

    def to_step(self) -> CodeStep:
        return ExtractStep(source=self.source, target=self.target,
                           pattern=self.pattern,
                           cast_numeric=self.cast_numeric)


@dataclass(frozen=True)
class GroupOp(Operator):
    """Group by ``key`` and aggregate (count by default)."""

    key: str
    agg: str = "count"
    value: str = ""
    descending: bool | None = True
    limit: int | None = 1
    alias: str = ""

    name = "group"

    def to_step(self) -> CodeStep:
        if self.agg == "count" and not self.value:
            return GroupCountStep(key=self.key,
                                  descending=bool(self.descending),
                                  limit=self.limit)
        if not self.value:
            raise OperatorParseError(
                f"group with agg={self.agg!r} needs a value column")
        return GroupAggStep(key=self.key, agg=self.agg, value=self.value,
                            descending=self.descending, limit=self.limit,
                            alias=self.alias or None)


@dataclass(frozen=True)
class SortOp(Operator):
    """Order by ``by`` and keep the top ``k`` rows of ``columns``."""

    by: str
    columns: tuple[str, ...] = ()
    descending: bool = True
    k: int = 1

    name = "sort"

    def to_step(self) -> CodeStep:
        columns = self.columns or (self.by,)
        return SuperlativeStep(target=columns[0], by=self.by,
                               descending=self.descending, k=self.k,
                               extra_columns=tuple(columns[1:]))


OPERATOR_NAMES = ("select_rows", "add_column", "group", "sort")

_OPERATOR_RE = re.compile(
    r"^\s*(?P<name>[a-z_][a-z0-9_]*)\s*\((?P<body>.*)\)\s*$", re.DOTALL)


def _parse_bool(value: str) -> bool:
    return value.strip().lower() in ("true", "1", "yes")


def _parse_limit(value: str) -> int | None:
    value = value.strip().lower()
    if value in ("none", ""):
        return None
    try:
        return int(value)
    except ValueError:
        raise OperatorParseError(f"not an integer: {value!r}") from None


def _parse_columns(value: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _fields(body: str) -> dict[str, str]:
    fields: dict[str, str] = {}
    for part in body.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise OperatorParseError(f"malformed field {part!r} "
                                     f"(expected key=value)")
        key, value = part.split("=", 1)
        fields[key.strip()] = value.strip()
    return fields


def _require(fields: dict[str, str], key: str, operator: str) -> str:
    if key not in fields or not fields[key]:
        raise OperatorParseError(f"{operator} is missing {key!r}")
    return fields[key]


def parse_operator(text: str) -> Operator:
    """Parse one operator payload; raises :class:`OperatorParseError`."""
    match = _OPERATOR_RE.match(text)
    if not match:
        raise OperatorParseError(
            f"not an operator call: {text[:60]!r}")
    name = match.group("name")
    fields = _fields(match.group("body"))
    if name == "select_rows":
        return SelectRowsOp(condition=fields.get("condition", ""),
                            columns=_parse_columns(
                                fields.get("columns", "")),
                            distinct=_parse_bool(
                                fields.get("distinct", "false")))
    if name == "add_column":
        return AddColumnOp(source=_require(fields, "source", name),
                           target=_require(fields, "target", name),
                           pattern=_require(fields, "pattern", name),
                           cast_numeric=_parse_bool(
                               fields.get("cast", "false")))
    if name == "group":
        descending: bool | None = None
        if "desc" in fields:
            descending = _parse_bool(fields["desc"])
        return GroupOp(key=_require(fields, "key", name),
                       agg=fields.get("agg", "count").lower(),
                       value=fields.get("value", ""),
                       descending=descending,
                       limit=_parse_limit(fields.get("limit", "none")),
                       alias=fields.get("alias", ""))
    if name == "sort":
        k = _parse_limit(fields.get("k", "1"))
        return SortOp(by=_require(fields, "by", name),
                      columns=_parse_columns(fields.get("columns", "")),
                      descending=_parse_bool(fields.get("desc", "true")),
                      k=1 if k is None else k)
    raise OperatorParseError(f"unknown operator {name!r} "
                             f"(known: {', '.join(OPERATOR_NAMES)})")


def render_operator(step: CodeStep) -> str | None:
    """Render a plan step as operator text; ``None`` if inexpressible.

    The inverse of ``parse_operator(text).to_step().render(...)`` up to
    field defaults: re-parsing the rendered text lowers to a step that
    emits the same code.
    """
    if isinstance(step, FilterStep):
        parts = [f"condition={step.condition}"]
        if step.columns:
            parts.append(f"columns={', '.join(step.columns)}")
        return f"select_rows({'; '.join(parts)})"
    if isinstance(step, ProjectStep):
        parts = [f"columns={', '.join(step.columns)}"]
        if step.distinct:
            parts.append("distinct=true")
        return f"select_rows({'; '.join(parts)})"
    if isinstance(step, ExtractStep):
        parts = [f"source={step.source}", f"target={step.target}",
                 f"pattern={step.pattern}"]
        if step.cast_numeric:
            parts.append("cast=true")
        return f"add_column({'; '.join(parts)})"
    if isinstance(step, GroupCountStep):
        parts = [f"key={step.key}", "agg=count",
                 f"desc={'true' if step.descending else 'false'}"]
        if step.limit is not None:
            parts.append(f"limit={step.limit}")
        return f"group({'; '.join(parts)})"
    if isinstance(step, GroupAggStep):
        parts = [f"key={step.key}", f"agg={step.agg}",
                 f"value={step.value}"]
        if step.descending is not None:
            parts.append(f"desc={'true' if step.descending else 'false'}")
        if step.limit is not None:
            parts.append(f"limit={step.limit}")
        if step.alias:
            parts.append(f"alias={step.alias}")
        return f"group({'; '.join(parts)})"
    if isinstance(step, SuperlativeStep):
        columns = ", ".join((step.target, *step.extra_columns))
        return (f"sort(by={step.by}; columns={columns}; "
                f"desc={'true' if step.descending else 'false'}; "
                f"k={step.k})")
    return None   # AggregateStep / CountWhereStep / DiffStep / unknown


def break_operator(text: str, rng: random.Random) -> str:
    """Make operator text unparseable (the syntax-error corruption).

    Deterministic given ``rng``; the engine's forcing ladder absorbs the
    resulting :class:`OperatorParseError` exactly like malformed SQL.
    """
    choice = rng.random()
    if choice < 0.5 and text.endswith(")"):
        return text[:-1]                       # drop the closing paren
    name, _, rest = text.partition("(")
    return f"{name} {rest}" if rest else text + "("
