"""Structured tracing of reasoning chains.

A :class:`ChainTracer` attached to :class:`repro.core.ReActTableAgent`
records one event per prompt, action, execution and recovery, with
wall-clock timings — the observability layer a production deployment of
the framework would need.  Traces export to JSONL for offline analysis.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ChainEvent", "ChainTracer"]


@dataclass(frozen=True)
class ChainEvent:
    """One traced event."""

    kind: str            # "start" | "prompt" | "action" | "execution"
    #                    # | "recovery" | "answer" | "end"
    chain_id: int
    iteration: int
    at: float            # seconds since tracer creation
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "chain_id": self.chain_id,
            "iteration": self.iteration,
            "at": round(self.at, 6),
            **self.data,
        }


class ChainTracer:
    """Collects :class:`ChainEvent` records across agent runs."""

    def __init__(self, *, max_payload_chars: int = 200):
        self._origin = time.perf_counter()
        self.events: list[ChainEvent] = []
        self.max_payload_chars = max_payload_chars
        self._chain_counter = 0
        self._current_chain = 0

    # --- emission (called by instrumented agents) --------------------------

    def start_chain(self, question: str) -> int:
        self._chain_counter += 1
        self._current_chain = self._chain_counter
        self.emit("start", 0, question=self._clip(question))
        return self._current_chain

    def emit(self, kind: str, iteration: int, **data) -> None:
        clipped = {
            key: self._clip(value) if isinstance(value, str) else value
            for key, value in data.items()
        }
        self.events.append(ChainEvent(
            kind=kind,
            chain_id=self._current_chain,
            iteration=iteration,
            at=time.perf_counter() - self._origin,
            data=clipped,
        ))

    def end_chain(self, iteration: int, *, answer: str,
                  forced: bool) -> None:
        self.emit("end", iteration, answer=answer, forced=forced)

    def _clip(self, text: str) -> str:
        if len(text) <= self.max_payload_chars:
            return text
        return text[:self.max_payload_chars] + "..."

    # --- analysis -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def chains(self) -> dict[int, list[ChainEvent]]:
        """Events grouped by chain id."""
        grouped: dict[int, list[ChainEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.chain_id, []).append(event)
        return grouped

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        result: dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def chain_durations(self) -> dict[int, float]:
        """Wall-clock seconds per chain (start to last event)."""
        durations = {}
        for chain_id, events in self.chains().items():
            durations[chain_id] = events[-1].at - events[0].at
        return durations

    # --- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(event.to_dict())
                         for event in self.events)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl() + "\n", encoding="utf-8")
        return path
