"""The ReAcTable agent loop (Section 3.1) with exception handling (3.3).

One :meth:`ReActTableAgent.run` call answers one question: it iterates
prompt → LLM → action → executor until the model answers directly, handling
executor exceptions per the paper:

* SQL errors retry over previous tables (inside :class:`SQLExecutor`);
* missing Python modules are installed at runtime (inside
  :class:`PythonExecutor`);
* any other failure **forces** the model to answer by appending the leading
  word ``Answer`` to the prompt.

The same forcing path also absorbs a malformed model response: a backend
that returns an empty completion batch (a mis-sized API response, or the
chaos harness's ``wrong_n`` fault) is treated like an unparseable
completion rather than crashing the chain.  Model *exceptions* propagate —
retrying them is the job of :class:`repro.llm.RetryingModel` and the
serving pool's attempt ladder, which classify them via the failure
taxonomy.

An optional ``max_iterations`` cap reproduces the Table 7 experiment: at
the limit the model is forced to answer the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import Action, ActionKind, parse_action
from repro.core.prompt import PromptBuilder, Transcript, TranscriptStep
from repro.errors import ActionParseError, ExecutionError, IterationLimitError
from repro.executors.registry import ExecutorRegistry, default_registry
from repro.llm.base import LanguageModel
from repro.table.frame import DataFrame
from repro.telemetry.cost import estimate_tokens
from repro.telemetry.spans import activate, span

__all__ = ["AgentResult", "ReActTableAgent"]

#: Safety net against non-terminating chains, above any realistic limit.
HARD_ITERATION_CAP = 24


def _normalize_table_columns(table: DataFrame) -> DataFrame:
    from repro.table.schema import dedupe_column_names, normalize_column_name

    normalized = dedupe_column_names(
        [normalize_column_name(name) for name in table.columns])
    return table.rename(dict(zip(table.columns, normalized)))


@dataclass
class AgentResult:
    """Everything one chain produced."""

    answer: list[str]                 # predicted answer values
    transcript: Transcript
    iterations: int                   # LLM calls made (code steps + answer)
    forced: bool = False              # answer was forced by error/limit
    handling_events: list[str] = field(default_factory=list)

    @property
    def answer_text(self) -> str:
        return "|".join(self.answer)


class ReActTableAgent:
    """The ReAcTable framework without voting (Algorithm 1's inner loop)."""

    def __init__(self, model: LanguageModel, *,
                 registry: ExecutorRegistry | None = None,
                 prompt_builder: PromptBuilder | None = None,
                 max_iterations: int | None = None,
                 temperature: float = 0.0,
                 few_shot_selector=None,
                 tracer=None,
                 normalize_columns: bool = False):
        self.model = model
        self.registry = registry or default_registry()
        languages = tuple(self.registry.languages)
        self.prompt_builder = prompt_builder or PromptBuilder(
            languages=languages)
        if max_iterations is not None and max_iterations < 1:
            raise IterationLimitError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.temperature = temperature
        #: Optional :class:`repro.core.fewshot.FewShotSelector` — when
        #: set, demonstrations are retrieved per question instead of the
        #: static block (the §5.4 extension).
        self.few_shot_selector = few_shot_selector
        #: Optional :class:`repro.tracing.ChainTracer` for observability.
        self.tracer = tracer
        #: The Section 3.3 mitigation: normalise T0's column names
        #: (spaces, leading digits, special characters) before the chain,
        #: so generated SQL never trips over exotic headers.  Off by
        #: default — it changes the table the model sees.
        self.normalize_columns = normalize_columns

    def _builder_for(self, question: str) -> PromptBuilder:
        if self.few_shot_selector is None:
            return self.prompt_builder
        return PromptBuilder(
            few_shot=self.few_shot_selector.few_shot_text(question),
            languages=self.prompt_builder.languages,
            max_prompt_rows=self.prompt_builder.max_prompt_rows)

    def run(self, table: DataFrame, question: str, *,
            seed: int | None = None) -> AgentResult:
        """Answer ``question`` over ``table`` with one reasoning chain.

        ``seed`` makes the run self-contained: the model is forked via
        :meth:`~repro.llm.base.LanguageModel.fork` so the chain's
        randomness depends only on the seed and the question, not on any
        previous run — the hook the serving layer uses for per-request
        reproducibility.
        """
        model = self.model if seed is None else self.model.fork(seed)
        prompt_builder = self._builder_for(question)
        if self.normalize_columns:
            table = _normalize_table_columns(table)
        transcript = Transcript(table.with_name("T0"), question)
        chain = None
        if self.tracer is not None:
            chain = self.tracer.start_chain(question)
        # With a tracer, its telemetry store becomes ambient for the
        # chain; without one, activate(None) leaves any enclosing store
        # (the serving pool's request span) in place.
        telemetry = self.tracer.telemetry if self.tracer is not None else None
        with activate(telemetry), span("agent_run", trace_id=chain) as root:
            if root is not None:
                root.set(question=question[:120])
            return self._run_chain(model, prompt_builder, transcript)

    def _run_chain(self, model: LanguageModel, prompt_builder: PromptBuilder,
                   transcript: Transcript) -> AgentResult:
        events: list[str] = []
        iterations = 0
        forced = False
        while True:
            iterations += 1
            at_limit = (
                (self.max_iterations is not None
                 and iterations >= self.max_iterations)
                or iterations >= HARD_ITERATION_CAP
            )
            with span("iteration", index=iterations):
                prompt = prompt_builder.build(
                    transcript, force_answer=forced or at_limit)
                if self.tracer is not None:
                    self.tracer.emit("prompt", iterations,
                                     chars=len(prompt),
                                     forced=forced or at_limit)
                with span("model_call") as call:
                    completions = model.complete(
                        prompt, temperature=self.temperature, n=1)
                    if call is not None:
                        call.add_tokens(
                            prompt=estimate_tokens(prompt),
                            completion=sum(estimate_tokens(c.text)
                                           for c in completions),
                            calls=1)
                if not completions:
                    if self.tracer is not None:
                        self.tracer.emit("model_fault", iterations,
                                         error="empty completion batch")
                    if forced or at_limit:
                        # Even the forced answer came back empty: give up.
                        return AgentResult([], transcript, iterations,
                                           forced=True,
                                           handling_events=events)
                    events.append("empty completion batch; forcing answer")
                    forced = True
                    continue
                completion = completions[0]
                try:
                    action = parse_action(completion.text)
                    if self.tracer is not None:
                        self.tracer.emit("action", iterations,
                                         action=action.kind,
                                         payload=action.payload)
                except ActionParseError:
                    if forced or at_limit:
                        # Even the forced answer is unparseable: give up
                        # empty.
                        return AgentResult([], transcript, iterations,
                                           forced=True,
                                           handling_events=events)
                    events.append("unparseable completion; forcing answer")
                    forced = True
                    continue
                if action.kind == ActionKind.ANSWER or forced or at_limit:
                    answer = (action.answer_values
                              if action.kind == ActionKind.ANSWER else [])
                    transcript.steps.append(TranscriptStep(action))
                    if self.tracer is not None:
                        self.tracer.end_chain(
                            iterations, answer="|".join(answer),
                            forced=forced or at_limit)
                    return AgentResult(answer, transcript, iterations,
                                       forced=forced or at_limit,
                                       handling_events=events)
                # Code action: run the matching executor over the history.
                try:
                    executor = self.registry.get(action.kind)
                except Exception:
                    events.append(
                        f"no executor for {action.kind!r}; forcing answer")
                    forced = True
                    continue
                try:
                    # The executor opens its own stage span
                    # (``sql_execute`` / ``python_exec``), so no extra
                    # wrapper span is paid here.
                    outcome = executor.execute(action.payload,
                                               transcript.tables)
                except ExecutionError as exc:
                    # The paper's "other exceptions" path: force an answer.
                    events.append(
                        f"{action.kind} execution failed "
                        f"({type(exc).__name__}); forcing answer")
                    if self.tracer is not None:
                        self.tracer.emit("execution", iterations,
                                         language=action.kind,
                                         failed=True,
                                         error=type(exc).__name__)
                    forced = True
                    continue
                events.extend(outcome.handling_notes)
                if self.tracer is not None:
                    self.tracer.emit("execution", iterations,
                                     language=action.kind, failed=False,
                                     rows=outcome.table.num_rows,
                                     recovered=outcome.recovered)
                    for note in outcome.handling_notes:
                        self.tracer.emit("recovery", iterations, note=note)
                new_table = outcome.table.with_name(
                    f"T{transcript.num_code_steps + 1}")
                transcript.steps.append(
                    TranscriptStep(action, new_table,
                                   list(outcome.handling_notes)))
