"""FeTaQA-style free-form answering, scored with ROUGE.

Run with::

    python examples/free_form_qa.py
"""

from repro import ReActTableAgent, SimulatedTQAModel, generate_dataset
from repro.evalkit import rouge_suite


def main() -> None:
    benchmark = generate_dataset("fetaqa", size=30, seed=19)
    model = SimulatedTQAModel(benchmark.bank, seed=3)
    agent = ReActTableAgent(model)

    totals = {"rouge1": 0.0, "rouge2": 0.0, "rougeL": 0.0}
    shown = 0
    for example in benchmark.examples:
        result = agent.run(example.table, example.question)
        candidate = result.answer[0] if result.answer else ""
        reference = example.gold_answer[0]
        scores = rouge_suite(candidate, reference)
        for key in totals:
            totals[key] += scores[key]
        if shown < 5:
            shown += 1
            print(f"Q: {example.question}")
            print(f"   gold      : {reference}")
            print(f"   predicted : {candidate}")
            print(f"   ROUGE-1/2/L: "
                  f"{scores['rouge1']:.2f} / {scores['rouge2']:.2f} / "
                  f"{scores['rougeL']:.2f}\n")

    n = len(benchmark)
    print("--- corpus ROUGE (Table 3 in miniature) ---")
    print(f"  ROUGE-1: {totals['rouge1'] / n:.2f}   (paper: 0.71)")
    print(f"  ROUGE-2: {totals['rouge2'] / n:.2f}   (paper: 0.46)")
    print(f"  ROUGE-L: {totals['rougeL'] / n:.2f}   (paper: 0.61)")


if __name__ == "__main__":
    main()
