"""ServeDaemon: the control plane scraped while traffic is live.

Every test runs the daemon and its HTTP client on the same event loop
(the stdlib ``http_get`` helper) — a successful mid-burst scrape is
itself proof the control plane never blocks serving.
"""

import asyncio
import json

from repro.aio import AsyncServer
from repro.serving import AgentSpec, BreakerConfig, TQARequest
from repro.serving.daemon import ServeDaemon, http_get
from repro.telemetry import Telemetry
from repro.telemetry.prom import parse_exposition
from repro.telemetry.sampling import TailSampler
from repro.tracing import ChainTracer


def run(coro):
    return asyncio.run(coro)


def requests_for(bench, count, *, seed=1, tenant="default"):
    return [TQARequest(table=e.table, question=e.question, seed=seed,
                       uid=e.uid, tenant=tenant)
            for e in bench.examples[:count]]


class TestEndpoints:
    def test_all_five_endpoints_respond_during_traffic(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec, max_inflight=4) as server:
                async with ServeDaemon(server) as daemon:
                    host, port = daemon.address
                    burst = [asyncio.create_task(server.answer(r))
                             for r in requests_for(wikitq_small, 12)]
                    probes = await asyncio.gather(*(
                        http_get(host, port, path)
                        for path in ("/metrics", "/healthz", "/readyz",
                                     "/slo", "/traces")))
                    await asyncio.gather(*burst)
                    return probes

        probes = run(scenario())
        statuses = [status for status, _, _ in probes]
        assert statuses == [200, 200, 200, 200, 200]
        ctypes = [ctype for _, ctype, _ in probes]
        assert ctypes[0].startswith("text/plain; version=0.0.4")
        assert ctypes[3] == "application/json"
        assert ctypes[4] == "application/x-ndjson"

    def test_unknown_route_404_and_post_405(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec) as server:
                async with ServeDaemon(server) as daemon:
                    host, port = daemon.address
                    missing = await http_get(host, port, "/nope")
                    post = daemon._route("POST", "/metrics")
                    bad_limit = await http_get(host, port,
                                               "/traces?limit=banana")
                    return missing, post, bad_limit

        missing, post, bad_limit = run(scenario())
        assert missing[0] == 404
        assert post[0] == 405
        assert bad_limit[0] == 400

    def test_midburst_scrape_parses_and_shows_inflight(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec, max_inflight=3,
                                   max_queued=64) as server:
                async with ServeDaemon(server) as daemon:
                    host, port = daemon.address
                    burst = [asyncio.create_task(server.answer(r))
                             for r in requests_for(wikitq_small, 16)]
                    # Let admission happen, then scrape mid-burst.
                    await asyncio.sleep(0)
                    _, _, body = await http_get(host, port, "/metrics")
                    # No awaits between render and reading live state:
                    # these two must agree exactly.
                    exact = daemon.render_metrics()
                    live = (server.active, len(server.queue))
                    await asyncio.gather(*burst)
                    return body, exact, live

        body, exact, (active, queued) = run(scenario())
        parsed = parse_exposition(body)  # valid exposition mid-burst
        samples = {name: value
                   for family in parsed.values()
                   for name, labels, value in family["samples"]
                   if not labels}
        # The HTTP scrape landed mid-burst and saw saturation.
        assert samples["daemon_inflight_requests"] == 3.0
        assert samples["daemon_queue_depth"] > 0
        # A render with no interleaving awaits matches live state 1:1.
        gauges = {name: value
                  for _, fam in parse_exposition(exact).items()
                  for name, labels, value in fam["samples"]
                  if not labels}
        assert gauges["daemon_inflight_requests"] == float(active)
        assert gauges["daemon_queue_depth"] == float(queued)

    def test_slo_endpoint_reflects_served_tenants(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec) as server:
                async with ServeDaemon(server) as daemon:
                    host, port = daemon.address
                    await asyncio.gather(*(
                        server.answer(r) for r in requests_for(
                            wikitq_small, 4, tenant="gold")))
                    return await http_get(host, port, "/slo")

        status, _, body = run(scenario())
        snapshot = json.loads(body)
        assert status == 200
        gold = snapshot["tenants"]["gold"]
        assert gold["totals"]["requests"] == 4
        assert gold["objectives"]["availability"]["alert_state"] == "ok"

    def test_traces_endpoint_tails_ndjson(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)
        telemetry = Telemetry()
        tracer = ChainTracer(telemetry=telemetry)

        async def scenario():
            async with AsyncServer(spec, telemetry=telemetry,
                                   tracer=tracer) as server:
                daemon = ServeDaemon(
                    server, sampler=TailSampler(ok_rate=1.0))
                async with daemon:
                    host, port = daemon.address
                    await asyncio.gather(*(
                        server.answer(r)
                        for r in requests_for(wikitq_small, 6)))
                    return await http_get(host, port, "/traces?limit=3")

        _, _, body = run(scenario())
        records = [json.loads(line) for line in body.splitlines()]
        assert len(records) == 3
        for record in records:
            assert record["outcome"] == "ok"
            # Spans were claimed from the shared telemetry store and
            # travelled with the trace.
            assert any(s["kind"] == "request" for s in record["spans"])


class TestReadiness:
    def test_open_breaker_flips_readyz(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(
                    spec, breakers=BreakerConfig(
                        failure_threshold=1)) as server:
                async with ServeDaemon(server) as daemon:
                    host, port = daemon.address
                    before = await http_get(host, port, "/readyz")
                    server.breaker.record_failure()  # trips at 1
                    after = await http_get(host, port, "/readyz")
                    return before, after

        before, after = run(scenario())
        assert before[0] == 200
        assert after[0] == 503
        checks = json.loads(after[2])["checks"]
        assert checks["breaker_closed"] is False
        assert checks["not_draining"] is True

    def test_full_queue_flips_readyz(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec, max_inflight=1,
                                   max_queued=2) as server:
                async with ServeDaemon(server) as daemon:
                    burst = [asyncio.create_task(server.answer(r))
                             for r in requests_for(wikitq_small, 8)]
                    await asyncio.sleep(0)
                    state = daemon.readiness()
                    await asyncio.gather(*burst)
                    return state

        state = run(scenario())
        assert state["ready"] is False
        assert state["checks"]["queue_has_room"] is False


class TestDrain:
    def test_healthz_503_while_draining_and_drain_completes(
            self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            server = AsyncServer(spec, max_inflight=2)
            daemon = await ServeDaemon(server).start()
            host, port = daemon.address
            healthy = await http_get(host, port, "/healthz")
            burst = [asyncio.create_task(server.answer(r))
                     for r in requests_for(wikitq_small, 6)]
            stop = asyncio.create_task(daemon.stop())
            await asyncio.sleep(0)
            assert daemon.draining
            responses = await asyncio.gather(*burst)
            await stop
            return healthy, responses, server

        healthy, responses, server = run(scenario())
        assert healthy == (200, "text/plain", "ok\n")
        # Draining finished the in-flight burst rather than killing it.
        assert all(r.outcome == "ok" for r in responses)
        assert server.active == 0

    def test_draining_gauge_and_healthz_body(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec) as server:
                daemon = await ServeDaemon(server).start()
                host, port = daemon.address
                daemon._draining = True
                health = await http_get(host, port, "/healthz")
                _, _, metrics = await http_get(host, port, "/metrics")
                daemon._draining = False
                await daemon.stop()
                return health, metrics

        health, metrics = run(scenario())
        assert health[0] == 503
        assert health[2] == "draining\n"
        assert "daemon_draining 1\n" in metrics


class TestObservation:
    def test_rejections_reach_slo_and_sampler(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec, max_inflight=1,
                                   max_queued=0) as server:
                async with ServeDaemon(server) as daemon:
                    await asyncio.gather(*(
                        asyncio.create_task(server.answer(r))
                        for r in requests_for(wikitq_small, 6)))
                    return (daemon.slo.tenant_snapshot("default"),
                            daemon.sampler.retained())

        snapshot, retained = run(scenario())
        rejected = snapshot["totals"]["availability_bad"]
        assert rejected > 0
        # Every rejection was budget-spent AND retained in full — the
        # tail sampler's core guarantee, via real serving traffic.
        assert len(retained) == rejected
        assert all(r["outcome"] == "rejected" for r in retained)

    def test_caller_observer_still_chained(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)
        seen = []

        async def scenario():
            async with AsyncServer(
                    spec,
                    on_complete=lambda chain, req, resp:
                        seen.append((chain, resp.outcome))) as server:
                async with ServeDaemon(server) as daemon:
                    await server.answer(
                        requests_for(wikitq_small, 1)[0])
                    return daemon

        daemon = run(scenario())
        assert seen == [(1, "ok")]
        assert daemon.slo.tenants() == ["default"]

    def test_broken_observer_never_fails_requests(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)

        def explode(chain, request, response):
            raise RuntimeError("observer bug")

        async def scenario():
            async with AsyncServer(spec, on_complete=explode) as server:
                return await server.answer(
                    requests_for(wikitq_small, 1)[0]), server

        response, server = run(scenario())
        assert response.outcome == "ok"
        assert server.metrics.observer_errors == 1
