"""Tests for the ReAcTable agent loop, driven by scripted models."""

import pytest

from repro.core import ReActTableAgent
from repro.errors import IterationLimitError
from repro.llm import ScriptedModel


QUESTION = "which country had the most cyclists finish in the top 10?"


class TestHappyPath:
    def test_single_answer(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```Italy```."])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["Italy"]
        assert result.iterations == 1
        assert not result.forced

    def test_figure1_chain(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0 "
            "WHERE Rank <= 10;```.",
            "ReAcTable: Python: ```T1['Country'] = T1.apply(lambda x: "
            "re.search(r\"\\((\\w+)\\)\", x['Cyclist']).group(1), "
            "axis=1)```.",
            "ReAcTable: SQL: ```SELECT Country, COUNT(*) FROM T2 "
            "GROUP BY Country ORDER BY COUNT(*) DESC LIMIT 1;```.",
            "ReAcTable: Answer: ```ESP```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["ESP"]
        assert result.iterations == 4
        # Three intermediate tables were produced.
        assert len(result.transcript.tables) == 4

    def test_prompts_grow_with_context(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: Answer: ```done```.",
        ])
        ReActTableAgent(model).run(cyclists, QUESTION)
        assert len(model.prompts) == 2
        # The few-shot demo contains one "Intermediate table (T1)"; the
        # second prompt adds the live chain's own.
        demo_count = model.prompts[0].count("Intermediate table (T1):")
        assert model.prompts[1].count(
            "Intermediate table (T1):") == demo_count + 1

    def test_multi_value_answer(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```2001|2002```."])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["2001", "2002"]


class TestExceptionHandling:
    def test_sql_retry_recovers(self, cyclists):
        # The second query names T1 but filters on Rank (only in T0):
        # the executor's retry handles it, and the chain continues.
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: SQL: ```SELECT Cyclist FROM T1 "
            "WHERE Rank <= 2;```.",
            "ReAcTable: Answer: ```ok```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["ok"]
        assert any("retried" in event
                   for event in result.handling_events)

    def test_unrecoverable_sql_forces_answer(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Nope FROM T0;```.",
            "ReAcTable: Answer: ```forced```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["forced"]
        assert result.forced
        assert model.prompts[-1].endswith("ReAcTable: Answer:")

    def test_python_crash_forces_answer(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: Python: ```T0['x'] = T0.apply("
            "lambda r: 1 / 0, axis=1)```.",
            "ReAcTable: Answer: ```forced```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.forced
        assert any("failed" in event
                   for event in result.handling_events)

    def test_unparseable_completion_forces_answer(self, cyclists):
        model = ScriptedModel([
            "hmm, let me think about this...",
            "ReAcTable: Answer: ```after force```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["after force"]
        assert result.forced

    def test_unknown_language_forces_answer(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: Scala: ```df.filter(...)```.",
            "ReAcTable: Answer: ```forced```.",
        ])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.forced

    def test_empty_completion_batch_forces_answer(self, cyclists):
        # A mis-sized backend response (the chaos harness's ``wrong_n``
        # fault) is absorbed like an unparseable completion.
        class WrongNModel(ScriptedModel):
            def complete(self, prompt, *, temperature=0.0, n=1):
                if not self.prompts:
                    self.prompts.append(prompt)
                    return []
                return super().complete(prompt, temperature=temperature,
                                        n=n)

        model = WrongNModel(["ReAcTable: Answer: ```recovered```."])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["recovered"]
        assert result.forced
        assert "empty completion batch; forcing answer" \
            in result.handling_events

    def test_empty_batch_on_forced_prompt_gives_empty_answer(
            self, cyclists):
        class AlwaysEmptyModel(ScriptedModel):
            def complete(self, prompt, *, temperature=0.0, n=1):
                self.prompts.append(prompt)
                return []

        result = ReActTableAgent(AlwaysEmptyModel([])).run(cyclists,
                                                           QUESTION)
        assert result.answer == []
        assert result.forced

    def test_doubly_unparseable_gives_empty_answer(self, cyclists):
        model = ScriptedModel(["garbage one", "garbage two"])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == []
        assert result.forced


class TestIterationLimits:
    def test_limit_one_forces_immediately(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```direct```."])
        agent = ReActTableAgent(model, max_iterations=1)
        result = agent.run(cyclists, QUESTION)
        assert result.iterations == 1
        assert result.forced
        assert model.prompts[0].endswith("ReAcTable: Answer:")

    def test_limit_two_allows_one_code_step(self, cyclists):
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: Answer: ```x```.",
        ])
        agent = ReActTableAgent(model, max_iterations=2)
        result = agent.run(cyclists, QUESTION)
        assert result.iterations == 2
        assert not model.prompts[0].endswith("ReAcTable: Answer:")
        assert model.prompts[1].endswith("ReAcTable: Answer:")

    def test_invalid_limit_rejected(self, cyclists):
        model = ScriptedModel([])
        with pytest.raises(IterationLimitError):
            ReActTableAgent(model, max_iterations=0)

    def test_hard_cap_terminates_code_loop(self, cyclists):
        # A model that wants to emit SQL forever still terminates.
        from repro.core.agent import HARD_ITERATION_CAP
        outputs = ["ReAcTable: SQL: ```SELECT * FROM T0;```."] * 40
        outputs.append("ReAcTable: Answer: ```stopped```.")
        # The forced prompt arrives before we run out of scripted SQL.
        model = ScriptedModel(outputs[:HARD_ITERATION_CAP - 1]
                              + ["ReAcTable: Answer: ```stopped```."])
        result = ReActTableAgent(model).run(cyclists, QUESTION)
        assert result.answer == ["stopped"]
        assert result.iterations <= HARD_ITERATION_CAP


class TestPerRunSeed:
    class ForkableModel(ScriptedModel):
        """Scripted model whose forks are observable."""

        def __init__(self, outputs):
            super().__init__(outputs)
            self.forked_with = []

        def fork(self, seed):
            self.forked_with.append(seed)
            fork = TestPerRunSeed.ForkableModel(list(self._outputs))
            fork.prompts = self.prompts   # share the prompt log
            return fork

    def test_run_without_seed_uses_model_directly(self, cyclists):
        model = self.ForkableModel(["ReAcTable: Answer: ```x```."])
        ReActTableAgent(model).run(cyclists, QUESTION)
        assert model.forked_with == []

    def test_run_with_seed_forks_the_model(self, cyclists):
        model = self.ForkableModel(["ReAcTable: Answer: ```x```."])
        agent = ReActTableAgent(model)
        result = agent.run(cyclists, QUESTION, seed=7)
        assert result.answer == ["x"]
        assert model.forked_with == [7]
        # The original model's script was left untouched by the run.
        assert model._cursor == 0

    def test_default_fork_returns_self(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```x```."])
        assert model.fork(3) is model
        result = ReActTableAgent(model).run(cyclists, QUESTION, seed=3)
        assert result.answer == ["x"]


class TestColumnNormalization:
    def test_messy_headers_normalised_in_prompt(self):
        from repro.table import DataFrame

        messy = DataFrame({
            "2008 Results!": [1, 2],
            "UCI ProTour Points": [40, 30],
        })
        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT results FROM T0 "
            "WHERE uci_protour_points > 35;```.",
            "ReAcTable: Answer: ```1```.",
        ])
        agent = ReActTableAgent(model, normalize_columns=True)
        result = agent.run(messy, "which result scored over 35 points?")
        assert result.answer == ["1"]
        assert "[HEAD]:results|uci_protour_points" in model.prompts[0]

    def test_normalisation_dedupes_collisions(self):
        from repro.table import DataFrame

        messy = DataFrame({"Rank ": [1], "#Rank": [2]})
        model = ScriptedModel(["ReAcTable: Answer: ```x```."])
        agent = ReActTableAgent(model, normalize_columns=True)
        agent.run(messy, "q?")
        assert "[HEAD]:rank|rank_2" in model.prompts[0]

    def test_off_by_default(self, cyclists):
        model = ScriptedModel(["ReAcTable: Answer: ```x```."])
        agent = ReActTableAgent(model)
        agent.run(cyclists, "q?")
        assert "[HEAD]:Rank|Cyclist" in model.prompts[0]
