"""Tests for plan construction and execution."""

import pytest

from repro.errors import DatasetError
from repro.plans import (
    AnswerStep,
    ExtractStep,
    FilterStep,
    GroupCountStep,
    Plan,
)


@pytest.fixture
def figure1_plan():
    return Plan([
        FilterStep(condition="Rank <= 10", columns=("Cyclist",),
                   reads=("Rank",)),
        ExtractStep(source="Cyclist", target="Country",
                    pattern=r"\((\w+)\)"),
        GroupCountStep(key="Country", limit=1),
        AnswerStep(kind="cell"),
    ])


class TestPlanConstruction:
    def test_must_end_with_answer(self):
        with pytest.raises(DatasetError):
            Plan([FilterStep(condition="x > 1")])

    def test_empty_plan_rejected(self):
        with pytest.raises(DatasetError):
            Plan([])

    def test_answer_only_plan_ok(self):
        plan = Plan([AnswerStep(kind="cell", literal=("x",))])
        assert plan.num_iterations == 1

    def test_answer_mid_plan_rejected(self):
        with pytest.raises(DatasetError):
            Plan([AnswerStep(), FilterStep(condition="x"),
                  AnswerStep()])

    def test_metadata(self, figure1_plan):
        assert figure1_plan.num_iterations == 4
        assert figure1_plan.languages() == ["sql", "python", "sql"]
        assert len(figure1_plan) == 4
        assert "filter" in repr(figure1_plan)


class TestPlanExecution:
    def test_figure1_end_to_end(self, figure1_plan, cyclists):
        trace = figure1_plan.execute(cyclists)
        # ITA appears once in the fixture; the majority country among the
        # fixture's four cyclists is a single-count tie broken by count
        # order — assert structure rather than a specific country.
        assert len(trace.tables) == 4
        assert trace.iterations == 4
        assert len(trace.answer) == 1

    def test_trace_code_matches_steps(self, figure1_plan, cyclists):
        trace = figure1_plan.execute(cyclists)
        assert len(trace.code) == 3
        assert trace.code[0].startswith("SELECT Cyclist")
        assert "re.search" in trace.code[1]

    def test_tables_named_sequentially(self, figure1_plan, cyclists):
        trace = figure1_plan.execute(cyclists)
        assert [t.name for t in trace.tables] == ["T0", "T1", "T2", "T3"]

    def test_broken_plan_raises_dataset_error(self, cyclists):
        plan = Plan([
            FilterStep(condition="NoSuchColumn = 1"),
            AnswerStep(kind="cell"),
        ])
        with pytest.raises(DatasetError):
            plan.execute(cyclists)

    def test_literal_plan_ignores_table(self, cyclists):
        plan = Plan([AnswerStep(kind="cell", literal=("42",))])
        assert plan.execute(cyclists).answer == ["42"]
