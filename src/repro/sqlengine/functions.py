"""Scalar SQL functions for the native engine.

Implements the SQLite-compatible subset that generated TQA queries use.
Aggregates live in :mod:`repro.table.ops`; this module is scalar-only.
"""

from __future__ import annotations

import math

from repro.errors import SQLRuntimeError
from repro.table.schema import is_missing

__all__ = ["SCALAR_FUNCTIONS", "call_scalar", "is_aggregate_name",
           "TOTAL_TEXT_FUNCTIONS", "NUMERIC_SAFE_FUNCTIONS"]

#: Names the engine treats as aggregates (dispatched by the executor).
_AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max",
                              "total", "group_concat"})


def is_aggregate_name(name: str) -> bool:
    return name.lower() in _AGGREGATE_NAMES


def _require(args, count, name):
    if len(args) not in (count if isinstance(count, tuple) else (count,)):
        raise SQLRuntimeError(
            f"{name}() expects {count} argument(s), got {len(args)}")


def _fn_abs(args):
    _require(args, 1, "abs")
    value = args[0]
    if is_missing(value):
        return None
    return abs(_as_number(value, "abs"))


def _as_number(value, context):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    try:
        text = str(value).strip().replace(",", "")
        return int(text) if text.lstrip("+-").isdigit() else float(text)
    except ValueError:
        raise SQLRuntimeError(
            f"{context}: cannot use {value!r} as a number") from None


def _as_text(value):
    if is_missing(value):
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _fn_lower(args):
    _require(args, 1, "lower")
    text = _as_text(args[0])
    return None if text is None else text.lower()


def _fn_upper(args):
    _require(args, 1, "upper")
    text = _as_text(args[0])
    return None if text is None else text.upper()


def _fn_length(args):
    _require(args, 1, "length")
    text = _as_text(args[0])
    return None if text is None else len(text)


def _fn_substr(args):
    _require(args, (2, 3), "substr")
    text = _as_text(args[0])
    if text is None or is_missing(args[1]):
        return None
    start = int(_as_number(args[1], "substr"))
    length = None
    if len(args) == 3:
        if is_missing(args[2]):
            return None
        length = int(_as_number(args[2], "substr"))
    # SQLite semantics: 1-based; 0 behaves like 1; negative counts from end.
    if start > 0:
        begin = start - 1
    elif start == 0:
        begin = 0
    else:
        begin = max(len(text) + start, 0)
    if length is None:
        return text[begin:]
    if length < 0:
        return ""
    return text[begin:begin + length]


def _fn_replace(args):
    _require(args, 3, "replace")
    text, old, new = (_as_text(arg) for arg in args)
    if text is None or old is None or new is None:
        return None
    if old == "":
        return text
    return text.replace(old, new)


def _fn_trim(args):
    _require(args, (1, 2), "trim")
    text = _as_text(args[0])
    if text is None:
        return None
    chars = _as_text(args[1]) if len(args) == 2 else None
    return text.strip(chars)


def _fn_ltrim(args):
    _require(args, (1, 2), "ltrim")
    text = _as_text(args[0])
    if text is None:
        return None
    chars = _as_text(args[1]) if len(args) == 2 else None
    return text.lstrip(chars)


def _fn_rtrim(args):
    _require(args, (1, 2), "rtrim")
    text = _as_text(args[0])
    if text is None:
        return None
    chars = _as_text(args[1]) if len(args) == 2 else None
    return text.rstrip(chars)


def _fn_round(args):
    _require(args, (1, 2), "round")
    if is_missing(args[0]):
        return None
    number = _as_number(args[0], "round")
    digits = 0
    if len(args) == 2 and not is_missing(args[1]):
        digits = int(_as_number(args[1], "round"))
    result = round(float(number) + 0.0, digits)
    return result


def _fn_coalesce(args):
    for value in args:
        if not is_missing(value):
            return value
    return None


def _fn_nullif(args):
    _require(args, 2, "nullif")
    return None if args[0] == args[1] else args[0]


def _fn_instr(args):
    _require(args, 2, "instr")
    haystack, needle = _as_text(args[0]), _as_text(args[1])
    if haystack is None or needle is None:
        return None
    return haystack.find(needle) + 1


def _fn_ifnull(args):
    _require(args, 2, "ifnull")
    return args[1] if is_missing(args[0]) else args[0]


def _fn_sqrt(args):
    _require(args, 1, "sqrt")
    if is_missing(args[0]):
        return None
    number = float(_as_number(args[0], "sqrt"))
    if number < 0:
        raise SQLRuntimeError("sqrt of a negative number")
    return math.sqrt(number)


def _fn_floor(args):
    _require(args, 1, "floor")
    if is_missing(args[0]):
        return None
    return math.floor(_as_number(args[0], "floor"))


def _fn_ceil(args):
    _require(args, 1, "ceil")
    if is_missing(args[0]):
        return None
    return math.ceil(_as_number(args[0], "ceil"))


SCALAR_FUNCTIONS = {
    "abs": _fn_abs,
    "lower": _fn_lower,
    "upper": _fn_upper,
    "length": _fn_length,
    "substr": _fn_substr,
    "substring": _fn_substr,
    "replace": _fn_replace,
    "trim": _fn_trim,
    "ltrim": _fn_ltrim,
    "rtrim": _fn_rtrim,
    "round": _fn_round,
    "coalesce": _fn_coalesce,
    "nullif": _fn_nullif,
    "ifnull": _fn_ifnull,
    "instr": _fn_instr,
    "sqrt": _fn_sqrt,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "ceiling": _fn_ceil,
}


#: Functions that can never raise once called with an in-range number of
#: arguments of *any* value: they view arguments through :func:`_as_text`
#: (which is total) or plain equality.  Values are ``(min, max)`` arity.
#: The planner's totality analysis (:mod:`repro.sqlengine.planner`) uses
#: this to license eager column-at-a-time evaluation and plan rewrites.
TOTAL_TEXT_FUNCTIONS: dict[str, tuple[int, int]] = {
    "lower": (1, 1),
    "upper": (1, 1),
    "length": (1, 1),
    "replace": (3, 3),
    "trim": (1, 2),
    "ltrim": (1, 2),
    "rtrim": (1, 2),
    "coalesce": (0, 255),
    "nullif": (2, 2),
    "ifnull": (2, 2),
    "instr": (2, 2),
}

#: Functions total when every argument is provably numeric-or-NULL
#: (``_as_number`` cannot fail): abs/round/floor/ceil.  ``sqrt`` is
#: deliberately absent — it raises on negative input.
NUMERIC_SAFE_FUNCTIONS: dict[str, tuple[int, int]] = {
    "abs": (1, 1),
    "round": (1, 2),
    "floor": (1, 1),
    "ceil": (1, 1),
    "ceiling": (1, 1),
}


def call_scalar(name: str, args: list) -> object:
    """Invoke a scalar function by (case-insensitive) name."""
    try:
        fn = SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise SQLRuntimeError(f"unknown function {name!r}") from None
    return fn(args)
