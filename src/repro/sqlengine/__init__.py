"""A from-scratch SQL engine over :mod:`repro.table` frames.

This is the pure-Python counterpart of the SQLite backend used by the SQL
executor.  It supports the single-table SELECT surface that LLM-generated
TQA queries use (WHERE / GROUP BY / HAVING / ORDER BY / LIMIT, aggregates,
scalar functions, CASE, CAST, LIKE, IN, BETWEEN).

Example::

    from repro.sqlengine import NativeSQLEngine
    engine = NativeSQLEngine({"T0": frame})
    result = engine.query(
        "SELECT Country, COUNT(*) AS n FROM T0 GROUP BY Country "
        "ORDER BY n DESC LIMIT 1")
"""

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeOp,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sqlengine.compiler import (
    Layout,
    compile_enabled,
    compile_group,
    compile_row,
)
from repro.sqlengine.executor import (
    NativeSQLEngine,
    execute_select,
    execute_sql,
)
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse_expression, parse_select
from repro.sqlengine.plancache import (
    DEFAULT_PLAN_CACHE,
    PlanCache,
    parse_select_cached,
    plan_cache_enabled,
)

__all__ = [
    "NativeSQLEngine",
    "execute_select",
    "execute_sql",
    "parse_select",
    "parse_expression",
    "parse_select_cached",
    "plan_cache_enabled",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "Layout",
    "compile_enabled",
    "compile_row",
    "compile_group",
    "tokenize",
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "InList",
    "Between",
    "IsNull",
    "LikeOp",
    "CaseWhen",
    "Cast",
    "SelectItem",
    "OrderItem",
    "SelectStatement",
]
