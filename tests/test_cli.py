"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.model == "codex-sim"

    def test_evaluate_options(self):
        args = build_parser().parse_args([
            "evaluate", "tabfact", "--voting", "s-vote", "--size", "10",
            "--sql-only",
        ])
        assert args.dataset == "tabfact"
        assert args.sql_only


class TestDemo:
    def test_demo_solves_running_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "which country had the most cyclists" in out
        assert "Answer: ITA" in out


class TestGenerate:
    def test_emits_jsonl(self, capsys):
        assert main(["generate", "wikitq", "--size", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert {"uid", "question", "answer", "table"} <= set(record)


class TestAnalyze:
    def test_renders_report(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["analyze", "wikitq", "--size", "8",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Error analysis" in out
        assert trace.exists()


class TestEvaluate:
    def test_reports_accuracy(self, capsys):
        assert main(["evaluate", "wikitq", "--size", "10"]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        assert "iteration histogram:" in out

    def test_fetaqa_reports_rouge(self, capsys):
        assert main(["evaluate", "fetaqa", "--size", "5"]) == 0
        assert "ROUGE-1/2/L" in capsys.readouterr().out

    def test_voting_flag(self, capsys):
        assert main(["evaluate", "wikitq", "--size", "5",
                     "--voting", "s-vote", "--samples", "3"]) == 0
        assert "voting=s-vote" in capsys.readouterr().out
