"""Question templates: NL question + gold plan generators.

Each template builds one (question, plan) pair over a generated table,
pre-validating well-posedness (unique superlative winners, non-empty filter
results, ...).  Template mixtures per dataset are tuned so the *iteration
count* distribution matches Figure 4 of the paper (>70% of questions solved
in two iterations, none beyond five) and the Python-affine share matches
the executor-ablation gaps (Tables 8 and 9).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.datasets.tablegen import GeneratedTable
from repro.plans.plan import Plan
from repro.plans.steps import (
    AggregateStep,
    AnswerStep,
    CountWhereStep,
    DiffStep,
    ExtractStep,
    FilterStep,
    GroupAggStep,
    GroupCountStep,
    SuperlativeStep,
    quote_sql_string,
)
from repro.table.schema import is_missing

__all__ = [
    "BuiltQuestion",
    "Template",
    "WIKITQ_TEMPLATES",
    "TABFACT_TEMPLATES",
    "FETAQA_TEMPLATES",
]


@dataclass
class BuiltQuestion:
    question: str
    plan: Plan
    difficulty: float
    python_affine: bool = False


@dataclass(frozen=True)
class Template:
    """A question template: id, target iteration count, builder."""

    id: str
    iterations: int
    base_difficulty: float
    builder: object               # callable(gt, rng) -> BuiltQuestion | None
    python_affine: bool = False

    def build(self, table: GeneratedTable,
              rng: random.Random) -> BuiltQuestion | None:
        built = self.builder(table, rng)
        if built is None:
            return None
        jitter = rng.uniform(-0.06, 0.06)
        built.difficulty = min(0.98, max(0.02,
                                         self.base_difficulty + jitter))
        built.python_affine = built.python_affine or self.python_affine
        return built


# --- helpers ------------------------------------------------------------------


def _clean_numeric(table: GeneratedTable) -> str:
    """The first numeric column — generated without missing values."""
    return table.numeric_headers[0]


def _values(table: GeneratedTable, column: str) -> list:
    return table.frame.column(column).tolist()


def _unique_max(values: list, *, lowest: bool = False) -> int | None:
    """Index of the unique extreme value, or None if tied/missing."""
    present = [(v, i) for i, v in enumerate(values) if not is_missing(v)]
    if not present:
        return None
    pick = min(present) if lowest else max(present)
    count = sum(1 for v, _ in present if v == pick[0])
    return pick[1] if count == 1 else None


def _entity_name(table: GeneratedTable, index: int) -> str:
    return table.entity_values[index]


# --- WikiTQ templates ----------------------------------------------------------


def _build_direct_first(table: GeneratedTable, rng: random.Random):
    """Iteration 1: read a cell straight off the table (no code)."""
    domain = table.domain
    question = (f"which {domain.entity_label} is listed first "
                f"in the table?")
    answer = table.entity_values[0]
    plan = Plan([AnswerStep(kind="cell", literal=(answer,))])
    return BuiltQuestion(question, plan, 0.0)


def _build_direct_cell(table: GeneratedTable, rng: random.Random):
    """Iteration 1: direct lookup of a single cell."""
    domain = table.domain
    column = _clean_numeric(table)
    index = rng.randrange(table.frame.num_rows)
    entity = _entity_name(table, index)
    value = table.frame.cell(index, column)
    question = (f"how many {table.numeric_label(column)} does "
                f"{entity} have?")
    plan = Plan([AnswerStep(kind="cell", literal=(str(value),))])
    return BuiltQuestion(question, plan, 0.0)


def _build_filter_list(table: GeneratedTable, rng: random.Random):
    """Iteration 2: filter rows, list entities."""
    domain = table.domain
    column = _clean_numeric(table)
    values = sorted(_values(table, column), reverse=True)
    # Pick a threshold keeping 1-4 rows.
    keep = rng.randint(1, min(4, len(values)))
    threshold = values[keep - 1]
    matching = [
        table.entity_values[i]
        for i, v in enumerate(_values(table, column)) if v >= threshold
    ]
    if not 1 <= len(matching) <= 5:
        return None
    question = (f"which {domain.entity_label}s have at least {threshold} "
                f"{table.numeric_label(column)}?")
    plan = Plan([
        FilterStep(condition=f"{column} >= {threshold}",
                   columns=(domain.entity_column,), reads=(column,)),
        AnswerStep(kind="list"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_count_where(table: GeneratedTable, rng: random.Random):
    """Iteration 2: count rows matching a predicate."""
    domain = table.domain
    column = _clean_numeric(table)
    values = [v for v in _values(table, column) if not is_missing(v)]
    threshold = rng.choice(sorted(set(values)))
    question = (f"how many {domain.entity_label}s scored more than "
                f"{threshold} {table.numeric_label(column)}?")
    plan = Plan([
        CountWhereStep(condition=f"{column} > {threshold}",
                       reads=(column,)),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_superlative(table: GeneratedTable, rng: random.Random):
    """Iteration 2: which entity has the highest/lowest measure."""
    domain = table.domain
    column = _clean_numeric(table)
    lowest = rng.random() < 0.3
    index = _unique_max(_values(table, column), lowest=lowest)
    if index is None:
        return None
    direction = "lowest" if lowest else "highest"
    question = (f"which {domain.entity_label} has the {direction} "
                f"{table.numeric_label(column)}?")
    plan = Plan([
        SuperlativeStep(target=domain.entity_column, by=column,
                        descending=not lowest),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_aggregate(table: GeneratedTable, rng: random.Random):
    """Iteration 2: whole-table aggregate."""
    domain = table.domain
    column = _clean_numeric(table)
    agg = rng.choice(("sum", "avg", "max", "min"))
    noun = {"sum": "total", "avg": "average", "max": "maximum",
            "min": "minimum"}[agg]
    question = (f"what is the {noun} number of "
                f"{table.numeric_label(column)} across all "
                f"{domain.entity_label}s?")
    plan = Plan([
        AggregateStep(agg=agg, column=column),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_group_mode(table: GeneratedTable, rng: random.Random):
    """Iteration 2: most frequent category."""
    domain = table.domain
    counts = Counter(_values(table, domain.category_column))
    ranked = counts.most_common()
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None  # tie: ill-posed
    question = (f"which {domain.category_label} appears most often "
                f"in the table?")
    plan = Plan([
        GroupCountStep(key=domain.category_column, descending=True,
                       limit=1),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_diff(table: GeneratedTable, rng: random.Random):
    """Iteration 2: difference between two entities."""
    domain = table.domain
    column = _clean_numeric(table)
    values = _values(table, column)
    candidates = [i for i, v in enumerate(values) if not is_missing(v)]
    if len(candidates) < 2:
        return None
    left, right = rng.sample(candidates, 2)
    if values[left] < values[right]:
        left, right = right, left
    left_name = _entity_name(table, left)
    right_name = _entity_name(table, right)
    question = (f"how many more {table.numeric_label(column)} does "
                f"{left_name} have than {right_name}?")
    plan = Plan([
        DiffStep(key=domain.entity_column, value=column,
                 left=left_name, right=right_name),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_filter_superlative(table: GeneratedTable, rng: random.Random):
    """Iteration 3: filter then superlative."""
    domain = table.domain
    column = _clean_numeric(table)
    other = table.numeric_headers[1]
    rank_limit = rng.randint(3, max(3, table.frame.num_rows // 2))
    rank_values = _values(table, domain.rank_column)
    keep = [i for i, rank in enumerate(rank_values) if rank <= rank_limit]
    kept_values = [
        _values(table, column)[i] if i in keep else None
        for i in range(len(rank_values))
    ]
    index = _unique_max([v for v in kept_values if v is not None])
    if index is None or len(keep) < 2:
        return None
    question = (f"among the top {rank_limit} {domain.entity_label}s, "
                f"which one has the highest "
                f"{table.numeric_label(column)}?")
    plan = Plan([
        FilterStep(condition=f"{domain.rank_column} <= {rank_limit}",
                   reads=(domain.rank_column,)),
        SuperlativeStep(target=domain.entity_column, by=column),
        AnswerStep(kind="cell"),
    ])
    del other
    return BuiltQuestion(question, plan, 0.0)


def _build_filter_group(table: GeneratedTable, rng: random.Random):
    """Iteration 3: filter then most-frequent category."""
    domain = table.domain
    rank_limit = rng.randint(4, max(4, table.frame.num_rows * 2 // 3))
    ranks = _values(table, domain.rank_column)
    categories = _values(table, domain.category_column)
    kept = [c for rank, c in zip(ranks, categories) if rank <= rank_limit]
    if len(kept) < 3:
        return None
    counts = Counter(kept).most_common()
    if len(counts) > 1 and counts[0][1] == counts[1][1]:
        return None
    question = (f"which {domain.category_label} has the most "
                f"{domain.entity_label}s ranked {rank_limit} or better?")
    plan = Plan([
        FilterStep(condition=f"{domain.rank_column} <= {rank_limit}",
                   reads=(domain.rank_column,)),
        GroupCountStep(key=domain.category_column, limit=1),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _build_extract_count(table: GeneratedTable, rng: random.Random):
    """Iteration 3 (Python-affine): extract code, count matches."""
    domain = table.domain
    code = rng.choice(table.entity_codes)
    expected = table.entity_codes.count(code)
    code_column = domain.code_label.capitalize()
    if domain.code_is_year:
        question = (f"how many {domain.entity_label}s are from the year "
                    f"{code}?")
    else:
        question = (f"how many {domain.entity_label}s are from {code}?")
    plan = Plan([
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        CountWhereStep(
            condition=f"{code_column} = {quote_sql_string(code)}",
            reads=(code_column,)),
        AnswerStep(kind="cell"),
    ])
    del expected
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


def _build_top_extract_group(table: GeneratedTable, rng: random.Random):
    """Iteration 4: the paper's running example — filter, extract, group."""
    domain = table.domain
    rank_limit = rng.choice((5, 8, 10))
    rank_limit = min(rank_limit, table.frame.num_rows)
    ranks = _values(table, domain.rank_column)
    kept_codes = [
        code for rank, code in zip(ranks, table.entity_codes)
        if rank <= rank_limit
    ]
    if len(kept_codes) < 3:
        return None
    counts = Counter(kept_codes).most_common()
    if len(counts) > 1 and counts[0][1] == counts[1][1]:
        return None
    code_column = domain.code_label.capitalize()
    if domain.code_is_year:
        noun = f"which year had the most {domain.entity_label}s"
    else:
        noun = f"which {domain.code_label} had the most {domain.entity_label}s"
    question = f"{noun} finish in the top {rank_limit}?"
    plan = Plan([
        FilterStep(condition=f"{domain.rank_column} <= {rank_limit}",
                   columns=(domain.entity_column,),
                   reads=(domain.rank_column,)),
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        GroupCountStep(key=code_column, limit=1),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


def _build_extract_filter_sum(table: GeneratedTable, rng: random.Random):
    """Iteration 4 (Python-affine): extract, filter by code, aggregate."""
    domain = table.domain
    column = _clean_numeric(table)
    code = rng.choice(table.entity_codes)
    code_column = domain.code_label.capitalize()
    source = "the year " + code if domain.code_is_year else code
    question = (f"what is the total number of "
                f"{table.numeric_label(column)} earned by "
                f"{domain.entity_label}s from {source}?")
    plan = Plan([
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        FilterStep(
            condition=f"{code_column} = {quote_sql_string(code)}",
            reads=(code_column,)),
        AggregateStep(agg="sum", column=column),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


def _build_deep_chain(table: GeneratedTable, rng: random.Random):
    """Iteration 5: filter, extract, group-sum, superlative."""
    domain = table.domain
    column = _clean_numeric(table)
    rank_limit = max(6, table.frame.num_rows * 3 // 4)
    ranks = _values(table, domain.rank_column)
    values = _values(table, column)
    totals: Counter = Counter()
    for rank, code, value in zip(ranks, table.entity_codes, values):
        if rank <= rank_limit and not is_missing(value):
            totals[code] += value
    ranked = totals.most_common()
    if len(ranked) < 2 or ranked[0][1] == ranked[1][1]:
        return None
    code_column = domain.code_label.capitalize()
    group_noun = ("year" if domain.code_is_year else domain.code_label)
    question = (f"considering only the top {rank_limit} "
                f"{domain.entity_label}s, which {group_noun} "
                f"accumulated the most {table.numeric_label(column)} "
                f"in total?")
    plan = Plan([
        FilterStep(condition=f"{domain.rank_column} <= {rank_limit}",
                   reads=(domain.rank_column,)),
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        GroupAggStep(key=code_column, agg="sum", value=column,
                     alias="total"),
        SuperlativeStep(target=code_column, by="total"),
        AnswerStep(kind="cell"),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


#: (template, weight) — weights follow the Figure 4 iteration distribution
#: for WikiTQ (Table 6: 5.4% / 79.6% / 8.5% / 6.1% / 0.4%).
WIKITQ_TEMPLATES: tuple[tuple[Template, float], ...] = (
    (Template("direct_first", 1, 0.95, _build_direct_first), 2.7),
    (Template("direct_cell", 1, 0.95, _build_direct_cell), 2.7),
    (Template("filter_list", 2, 0.22, _build_filter_list), 16.0),
    (Template("count_where", 2, 0.20, _build_count_where), 16.0),
    (Template("superlative", 2, 0.18, _build_superlative), 16.0),
    (Template("aggregate", 2, 0.22, _build_aggregate), 12.0),
    (Template("group_mode", 2, 0.24, _build_group_mode), 10.0),
    (Template("diff", 2, 0.28, _build_diff), 9.6),
    (Template("filter_superlative", 3, 0.33, _build_filter_superlative), 4.2),
    (Template("filter_group", 3, 0.35, _build_filter_group), 2.2),
    (Template("extract_count", 3, 0.34, _build_extract_count,
              python_affine=True), 2.1),
    (Template("top_extract_group", 4, 0.40, _build_top_extract_group,
              python_affine=True), 3.1),
    (Template("extract_filter_sum", 4, 0.42, _build_extract_filter_sum,
              python_affine=True), 3.0),
    (Template("deep_chain", 5, 0.60, _build_deep_chain,
              python_affine=True), 0.4),
)


# --- TabFact templates ---------------------------------------------------------


def _claim_total(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    actual = sum(v for v in _values(table, column) if not is_missing(v))
    truth = rng.random() < 0.5
    margin = max(1, actual // 10)
    constant = actual - margin if truth else actual + margin
    question = (f"the combined {table.numeric_label(column)} of all "
                f"{domain.entity_label}s is more than {constant}")
    plan = Plan([
        AggregateStep(agg="sum", column=column),
        AnswerStep(kind="boolean", op=">", constant=constant),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _claim_superlative(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    index = _unique_max(_values(table, column))
    if index is None:
        return None
    truth = rng.random() < 0.5
    if truth:
        named = _entity_name(table, index)
    else:
        others = [i for i in range(table.frame.num_rows) if i != index]
        named = _entity_name(table, rng.choice(others))
    question = (f"{named} has the highest "
                f"{table.numeric_label(column)} in the table")
    plan = Plan([
        SuperlativeStep(target=domain.entity_column, by=column),
        AnswerStep(kind="boolean", op="=", constant=named),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _claim_count(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    values = [v for v in _values(table, column) if not is_missing(v)]
    threshold = rng.choice(sorted(set(values)))
    actual = sum(1 for v in values if v > threshold)
    truth = rng.random() < 0.5
    claimed = actual if truth else actual + rng.choice((-1, 1, 2))
    if claimed < 0:
        claimed = actual + 1
    question = (f"exactly {claimed} {domain.entity_label}s scored more "
                f"than {threshold} {table.numeric_label(column)}")
    plan = Plan([
        CountWhereStep(condition=f"{column} > {threshold}",
                       reads=(column,)),
        AnswerStep(kind="boolean", op="=", constant=claimed),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _claim_compare(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    values = _values(table, column)
    candidates = [i for i, v in enumerate(values) if not is_missing(v)]
    if len(candidates) < 2:
        return None
    left, right = rng.sample(candidates, 2)
    if values[left] == values[right]:
        return None
    truth = rng.random() < 0.5
    if (values[left] > values[right]) != truth:
        left, right = right, left
    left_name = _entity_name(table, left)
    right_name = _entity_name(table, right)
    question = (f"{left_name} recorded more "
                f"{table.numeric_label(column)} than {right_name}")
    plan = Plan([
        DiffStep(key=domain.entity_column, value=column,
                 left=left_name, right=right_name),
        AnswerStep(kind="boolean", op=">", constant=0),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _claim_extract_count(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    code = rng.choice(table.entity_codes)
    actual = table.entity_codes.count(code)
    truth = rng.random() < 0.5
    claimed = actual if truth else actual + rng.choice((1, 2))
    code_column = domain.code_label.capitalize()
    source = "the year " + code if domain.code_is_year else code
    question = (f"{claimed} of the {domain.entity_label}s in the table "
                f"are from {source}")
    plan = Plan([
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        CountWhereStep(
            condition=f"{code_column} = {quote_sql_string(code)}",
            reads=(code_column,)),
        AnswerStep(kind="boolean", op="=", constant=claimed),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


def _claim_extract_top(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    index = _unique_max(_values(table, column))
    if index is None:
        return None
    actual_code = table.entity_codes[index]
    truth = rng.random() < 0.5
    if truth:
        named_code = actual_code
    else:
        others = [c for c in table.domain.code_pool if c != actual_code]
        named_code = rng.choice(others)
    code_column = domain.code_label.capitalize()
    source = ("the year " + named_code if domain.code_is_year
              else named_code)
    question = (f"the {domain.entity_label} with the highest "
                f"{table.numeric_label(column)} is from {source}")
    plan = Plan([
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        SuperlativeStep(target=code_column, by=column),
        AnswerStep(kind="boolean", op="=", constant=named_code),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


TABFACT_TEMPLATES: tuple[tuple[Template, float], ...] = (
    (Template("claim_total", 2, 0.09, _claim_total), 18.0),
    (Template("claim_superlative", 2, 0.07, _claim_superlative), 20.0),
    (Template("claim_count", 2, 0.11, _claim_count), 18.0),
    (Template("claim_compare", 2, 0.09, _claim_compare), 16.0),
    (Template("claim_extract_count", 3, 0.24, _claim_extract_count,
              python_affine=True), 15.0),
    (Template("claim_extract_top", 3, 0.26, _claim_extract_top,
              python_affine=True), 13.0),
)


# --- FeTaQA templates -----------------------------------------------------------


def _fetaqa_superlative(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    index = _unique_max(_values(table, column))
    if index is None:
        return None
    label = table.numeric_label(column)
    question = (f"who recorded the highest {label}, and how many "
                f"was it?")
    plan = Plan([
        SuperlativeStep(target=domain.entity_column, by=column,
                        extra_columns=(column,)),
        AnswerStep(kind="sentence",
                   template=f"{{0}} recorded the highest {label} "
                            f"with {{1}}."),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _fetaqa_diff(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    column = _clean_numeric(table)
    values = _values(table, column)
    candidates = [i for i, v in enumerate(values) if not is_missing(v)]
    if len(candidates) < 2:
        return None
    left, right = rng.sample(candidates, 2)
    if values[left] < values[right]:
        left, right = right, left
    if values[left] == values[right]:
        return None
    left_name = _entity_name(table, left)
    right_name = _entity_name(table, right)
    label = table.numeric_label(column)
    question = (f"by how much did {left_name} beat {right_name} "
                f"in {label}?")
    plan = Plan([
        DiffStep(key=domain.entity_column, value=column,
                 left=left_name, right=right_name),
        AnswerStep(kind="sentence",
                   template=f"{left_name} beat {right_name} by "
                            f"{{0}} {label}."),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _fetaqa_group(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    counts = Counter(_values(table, domain.category_column))
    ranked = counts.most_common()
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None
    question = (f"which {domain.category_label} is most represented "
                f"in the table, and by how many "
                f"{domain.entity_label}s?")
    plan = Plan([
        GroupCountStep(key=domain.category_column, limit=1),
        AnswerStep(kind="sentence",
                   template=f"The most represented "
                            f"{domain.category_label} is {{0}} with "
                            f"{{1}} {domain.entity_label}s."),
    ])
    return BuiltQuestion(question, plan, 0.0)


def _fetaqa_extract_group(table: GeneratedTable, rng: random.Random):
    domain = table.domain
    counts = Counter(table.entity_codes).most_common()
    if len(counts) > 1 and counts[0][1] == counts[1][1]:
        return None
    code_column = domain.code_label.capitalize()
    group_noun = "year" if domain.code_is_year else domain.code_label
    question = (f"which {group_noun} contributed the most "
                f"{domain.entity_label}s, and how many?")
    plan = Plan([
        ExtractStep(source=domain.entity_column, target=code_column,
                    pattern=domain.code_pattern),
        GroupCountStep(key=code_column, limit=1),
        AnswerStep(kind="sentence",
                   template=f"The {group_noun} with the most "
                            f"{domain.entity_label}s is {{0}}, "
                            f"contributing {{1}}."),
    ])
    return BuiltQuestion(question, plan, 0.0, python_affine=True)


FETAQA_TEMPLATES: tuple[tuple[Template, float], ...] = (
    (Template("fetaqa_superlative", 2, 0.12, _fetaqa_superlative), 38.0),
    (Template("fetaqa_diff", 2, 0.16, _fetaqa_diff), 30.0),
    (Template("fetaqa_group", 2, 0.14, _fetaqa_group), 20.0),
    (Template("fetaqa_extract_group", 3, 0.30, _fetaqa_extract_group,
              python_affine=True), 12.0),
)
