"""LRU parse/plan cache for the native SQL engine.

The agent loop and the serving layer execute many textually identical
queries (few-shot exemplars, retried chains, majority-vote samples), and
lexing + parsing dominates the cost of small-table queries.  Parsed
``SelectStatement`` trees are frozen dataclasses, so one plan can be
shared freely across threads; this module memoises ``parse_select`` by
SQL text behind a bounded, thread-safe LRU.

Set ``REPRO_SQL_PLAN_CACHE=0`` to bypass the cache (every call re-parses).
Parse errors are never cached — a bad query costs a re-parse, not a
poisoned entry.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.sqlengine.ast_nodes import SelectStatement
from repro.sqlengine.parser import parse_select
from repro.telemetry.metrics import GLOBAL_REGISTRY

__all__ = [
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "DEFAULT_REWRITE_CACHE",
    "plan_cache_enabled",
    "parse_select_cached",
]


def plan_cache_enabled() -> bool:
    """True unless ``REPRO_SQL_PLAN_CACHE=0`` disables plan caching."""
    return os.environ.get("REPRO_SQL_PLAN_CACHE", "1") != "0"


class PlanCache:
    """Thread-safe LRU over hashable plan keys.

    The parse cache keys on SQL text; the rewrite cache
    (:data:`DEFAULT_REWRITE_CACHE`) keys on ``(statement, schema
    signature)`` tuples — any hashable key works, values are opaque.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key, plan) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }


#: Process-wide cache used by ``execute_sql``.
DEFAULT_PLAN_CACHE = PlanCache()

#: Process-wide cache of planned (rewritten) statements, keyed by
#: ``(SelectStatement, schema signature)`` — rewrites are dtype-aware,
#: so the catalog schema is part of the identity.  Populated by
#: :func:`repro.sqlengine.planner.plan_select`.
DEFAULT_REWRITE_CACHE = PlanCache()


def parse_select_cached(sql: str) -> SelectStatement:
    """``parse_select`` memoised through :data:`DEFAULT_PLAN_CACHE`."""
    if not plan_cache_enabled():
        return parse_select(sql)
    lookups = GLOBAL_REGISTRY.counter(
        "cache.lookups", "cache lookups by cache name and result")
    plan = DEFAULT_PLAN_CACHE.get(sql)
    if plan is None:
        lookups.inc(cache="sql_plan", result="miss")
        plan = parse_select(sql)
        DEFAULT_PLAN_CACHE.put(sql, plan)
    else:
        lookups.inc(cache="sql_plan", result="hit")
    return plan
