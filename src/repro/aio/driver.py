"""One coroutine per chain: the async twin of the engine drivers.

:func:`drive_chain` pumps a single sans-IO
:class:`~repro.engine.ChainEngine` to completion, parking its model calls
in a :class:`~repro.aio.batcher.ContinuousBatcher` and draining execute
effects inline (local compute, same within-tick ordering as the sync
drivers).  :class:`AsyncChainDriver` is the BatchScheduler-shaped
convenience wrapper: give it engines, get results in input order.

Determinism: with a static engine population the event loop wakes the
chain coroutines in creation order, so they park in input order, the
batcher's groups form in the scheduler's collection order, and every tick
is *identical* to the corresponding ``BatchScheduler`` tick — the same
``complete_batch`` call sequence reaches the model, so even sampled
(temperature > 0) chains draw the same stream and produce bit-identical
results (pinned by ``tests/aio/test_driver.py``).  Under a dynamic
population (the server) ticks depend on arrival timing — the thread-pool
determinism contract.
"""

from __future__ import annotations

import asyncio

from repro.aio.batcher import ContinuousBatcher
from repro.aio.handler import AsyncEffectHandler
from repro.engine.core import ChainEngine
from repro.engine.result import AgentResult
from repro.errors import ExecutionError

__all__ = ["drive_chain", "AsyncChainDriver"]


async def drive_chain(engine: ChainEngine,
                      batcher: ContinuousBatcher,
                      handler: AsyncEffectHandler | None = None,
                      *, tracer=None, pre_admitted: bool = False) -> AgentResult:
    """Drive ``engine`` to completion through ``batcher``.

    ``handler`` (defaults to the batcher's) performs the synchronous
    execute effects; model calls go through the batcher so they coalesce
    with whatever else is in flight.  Exactly one :meth:`retire` happens
    on every exit path (completion, cancellation, failing tick).

    ``pre_admitted`` means the caller already called :meth:`admit` for
    this engine.  A coroutine only runs when the loop first schedules
    it, so a caller launching *several* chains at once must admit them
    all **before** the first one starts — otherwise the first chain to
    run parks alone, sees itself as the whole population, and flushes a
    premature one-member tick (:class:`AsyncChainDriver` does this
    bookkeeping; standalone callers can leave the default and self-admit).
    """
    if handler is None:
        handler = batcher.handler
    if not pre_admitted:
        batcher.admit()
    try:
        while engine.state != "done":
            result = await batcher.call(engine.next_effect())
            _flush_notes(engine, tracer)
            engine.send(result)
            while engine.state == "exec":
                engine.send(handler.execute(engine.next_effect()))
            _flush_notes(engine, tracer)
    finally:
        batcher.retire()
    return engine.result


def _flush_notes(engine: ChainEngine, tracer) -> None:
    notes = engine.drain_notes()
    if tracer is None:
        return
    for kind, iteration, data in notes:
        if kind == "end":
            tracer.end_chain(iteration, **data)
        else:
            tracer.emit(kind, iteration, **data)


class AsyncChainDriver:
    """Run many engines as coroutines over one shared batcher.

    The constructor mirrors :class:`~repro.engine.BatchScheduler`
    (``model`` + ``registry``, or a prebuilt ``handler``); :meth:`run`
    awaits all engines, :meth:`run_sync` wraps it in ``asyncio.run`` for
    synchronous callers (benchmarks, tests).
    """

    def __init__(self, model=None, registry=None, *,
                 handler: AsyncEffectHandler | None = None,
                 catch: tuple = (ExecutionError,)):
        if handler is None:
            if model is None or registry is None:
                raise ValueError(
                    "AsyncChainDriver needs model+registry or a handler")
            handler = AsyncEffectHandler(model, registry, catch=catch)
        self.handler = handler
        self.batcher = ContinuousBatcher(handler)

    @property
    def ticks(self) -> int:
        return self.batcher.ticks

    @property
    def requests(self) -> int:
        return self.batcher.requests

    async def run(self, engines) -> list[AgentResult]:
        """Drive every engine to completion; results in input order."""
        engines = list(engines)
        # Admit the whole population before any chain runs, so the first
        # tick waits for everyone — the lock-step-equivalence guarantee.
        for _ in engines:
            self.batcher.admit()
        return await asyncio.gather(
            *(drive_chain(engine, self.batcher, self.handler,
                          pre_admitted=True)
              for engine in engines))

    def run_sync(self, engines) -> list[AgentResult]:
        """:meth:`run` on a private event loop, for sync callers."""
        return asyncio.run(self.run(list(engines)))
