"""Typed effects — the sans-IO boundary between chain logic and I/O.

The :class:`~repro.engine.core.ChainEngine` decides *what* should happen
next in a reasoning chain (which prompt to send, which code block to run)
but never performs the I/O itself.  Instead it hands the driver a frozen
effect value describing the operation:

* :class:`ModelCall` — sample ``n`` completions for ``prompt`` at
  ``temperature`` (the paper's LLM step);
* :class:`Execute` — run ``code`` in the ``language`` executor over the
  chain's table history (the paper's code step).

The driver performs the operation however it likes — synchronously, in a
batch coalesced across chains, through a chaos injector — and feeds the
observation back as a :class:`ModelResult` or :class:`ExecResult`.
Because effects are plain data, every policy that used to live inside the
agent loop (retries, fault injection, batching, telemetry attribution)
now composes *around* the loop instead of being rewritten inside each
consumer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.executors.base import ExecutionOutcome
from repro.llm.base import Completion
from repro.table.frame import DataFrame

__all__ = ["ModelCall", "Execute", "ModelResult", "ExecResult"]


@dataclass(frozen=True)
class ModelCall:
    """Request ``n`` completions for ``prompt`` at ``temperature``."""

    prompt: str
    temperature: float = 0.0
    n: int = 1
    #: 1-based iteration (chain engines) or step depth (branch drivers);
    #: informational, for logging and span labelling.
    iteration: int = 0
    #: Whether the prompt carries the forced-``Answer`` suffix.
    forced: bool = False


@dataclass(frozen=True)
class Execute:
    """Run ``code`` in the ``language`` executor over ``tables``."""

    language: str
    code: str
    #: Table history [T0, T1, ...] the executor may reference.
    tables: tuple[DataFrame, ...]
    iteration: int = 0


@dataclass(frozen=True)
class ModelResult:
    """The completions a :class:`ModelCall` produced."""

    completions: tuple[Completion, ...]


@dataclass(frozen=True)
class ExecResult:
    """What an :class:`Execute` effect produced.

    Exactly one of three shapes:

    * success — ``outcome`` is set;
    * executor failure — ``error`` holds the raised exception;
    * no executor registered for the language — ``missing_executor`` is
      True (``error`` additionally carries the registry's exception, for
      drivers whose messages name the exception type).
    """

    outcome: ExecutionOutcome | None = None
    error: BaseException | None = None
    missing_executor: bool = False

    @property
    def failed(self) -> bool:
        return self.outcome is None
