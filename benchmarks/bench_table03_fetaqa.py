"""Table 3 — FeTaQA ROUGE-1/2/L: ReAcTable vs T5 and Dater baselines.

Paper shape: ReAcTable (0.71 / 0.46 / 0.61) beats every reported baseline
on all three ROUGE metrics.
"""

from harness import benchmark_for, model_for

from repro.core import ReActTableAgent
from repro.evalkit import evaluate_agent
from repro.reporting import ComparisonTable, save_result
from repro.reporting.paper import TABLE3_FETAQA


def run_experiment() -> dict[str, float]:
    benchmark = benchmark_for("fetaqa")
    agent = ReActTableAgent(model_for(benchmark))
    return evaluate_agent(agent, benchmark).rouge()


def _fmt_triple(triple) -> str:
    return " / ".join(f"{value:.2f}" for value in triple)


def test_table03_fetaqa(benchmark):
    rouge = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    measured = (rouge["rouge1"], rouge["rouge2"], rouge["rougeL"])

    table = ComparisonTable("Table 3: FeTaQA ROUGE-1/2/L",
                            value_formatter=_fmt_triple)
    table.section("baselines (published)")
    for name, triple in TABLE3_FETAQA["baselines"].items():
        table.row(name, triple)
    table.section("this reproduction")
    table.row("ReAcTable", TABLE3_FETAQA["reactable"]["ReAcTable"],
              measured)
    table.print()
    save_result("table03_fetaqa", table.render())

    dater = TABLE3_FETAQA["baselines"]["Dater"]
    for value, baseline, name in zip(measured, dater,
                                     ("ROUGE-1", "ROUGE-2", "ROUGE-L")):
        assert value > baseline - 0.03, \
            f"ReAcTable should beat Dater on {name}"
    t5_large = TABLE3_FETAQA["baselines"]["T5-Large"]
    assert measured[0] > t5_large[0], "must beat T5-Large on ROUGE-1"
