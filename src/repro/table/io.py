"""Serialisation codecs for frames.

The most important codec is the prompt format from Figure 2 of the paper::

    [HEAD]:Rank|Cyclist|Team|Time|Uci_protour_points
    [ROW] 1: 1|Alejandro Valverde (ESP)|Caisse d'Epargne|5h 29' 10"|NULL
    [ROW] 2: 2|Alexandr Kolobnev (RUS)|Team CSC Saxo Bank|s.t.|30.0

Both the prompt builder and the simulated LLM parse this format, so encoding
and decoding live together here.  CSV/TSV and JSON codecs are provided for
loading real benchmark files and for the examples.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence
from pathlib import Path

from repro.errors import TableError
from repro.table.frame import Column, DataFrame
from repro.table.schema import ColumnType, is_missing

__all__ = [
    "encode_head_row",
    "decode_head_row",
    "to_csv",
    "from_csv",
    "read_csv",
    "write_csv",
    "to_json",
    "from_json",
    "to_markdown",
    "parse_literal",
]

#: Text used for missing values in the prompt codec (as in Figure 2).
NULL_TOKEN = "NULL"


def _encode_cell(value) -> str:
    if is_missing(value):
        return NULL_TOKEN
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"  # keep the trailing .0 so REAL round-trips
    text = str(value)
    return text.replace("\\", "\\\\").replace("|", "\\|").replace("\n", " ")


def _split_row(text: str) -> list[str]:
    """Split a codec line on unescaped pipes and unescape the cells."""
    cells, current, i = [], [], 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text) and text[i + 1] in ("\\", "|"):
            current.append(text[i + 1])
            i += 2
            continue
        if char == "|":
            cells.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    cells.append("".join(current))
    return cells


def parse_literal(text: str):
    """Parse one codec cell back into int / float / bool / None / str."""
    if text == NULL_TOKEN:
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def encode_head_row(frame: DataFrame, *, max_rows: int | None = None) -> str:
    """Encode a frame in the ``[HEAD]/[ROW]`` prompt format.

    ``max_rows`` truncates the body (the header always appears); the prompt
    builder uses it to keep large tables inside the context budget.
    """
    lines = ["[HEAD]:" + "|".join(
        _encode_cell(name) for name in frame.columns)]
    total = frame.num_rows
    shown = total if max_rows is None else min(max_rows, total)
    for index in range(shown):
        cells = "|".join(
            _encode_cell(frame.cell(index, name)) for name in frame.columns)
        lines.append(f"[ROW] {index + 1}: {cells}")
    if shown < total:
        lines.append(f"[...] ({total - shown} more rows)")
    return "\n".join(lines)


def decode_head_row(text: str, *, name: str = "",
                    parse_values: bool = True) -> DataFrame:
    """Decode the ``[HEAD]/[ROW]`` format back into a frame.

    ``parse_values=False`` keeps every cell as text (useful for tests that
    check the raw rendering).
    """
    header: list[str] | None = None
    rows: list[tuple] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("[...]"):
            continue
        if line.startswith("[HEAD]:"):
            header = _split_row(line[len("[HEAD]:"):])
            continue
        if line.startswith("[ROW]"):
            if header is None:
                raise TableError("[ROW] before [HEAD] in codec text")
            _, _, body = line.partition(":")
            cells = _split_row(body.strip())
            if len(cells) != len(header):
                raise TableError(
                    f"row has {len(cells)} cells, header has {len(header)}")
            if parse_values:
                rows.append(tuple(parse_literal(cell) for cell in cells))
            else:
                rows.append(tuple(cells))
            continue
        raise TableError(f"unrecognised codec line: {line!r}")
    if header is None:
        raise TableError("codec text has no [HEAD] line")
    return DataFrame.from_rows(rows, header, name=name)


# --- CSV / TSV ---------------------------------------------------------------


def to_csv(frame: DataFrame, *, delimiter: str = ",") -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(frame.columns)
    for row in frame.to_rows():
        writer.writerow(["" if is_missing(v) else v for v in row])
    return buffer.getvalue()


def from_csv(text: str, *, delimiter: str = ",", name: str = "",
             parse_values: bool = True) -> DataFrame:
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise TableError("CSV text is empty")
    header, body = rows[0], rows[1:]
    if parse_values:
        body = [
            tuple(None if cell == "" else parse_literal(cell)
                  for cell in row)
            for row in body
        ]
    return DataFrame.from_rows(body, header, name=name)


def read_csv(path: str | Path, *, delimiter: str = ",", name: str = "",
             parse_values: bool = True) -> DataFrame:
    with open(path, encoding="utf-8") as handle:
        return from_csv(handle.read(), delimiter=delimiter, name=name,
                        parse_values=parse_values)


def write_csv(frame: DataFrame, path: str | Path, *,
              delimiter: str = ",") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_csv(frame, delimiter=delimiter))


# --- JSON --------------------------------------------------------------------


def to_json(frame: DataFrame) -> str:
    """Serialise as ``{"columns": [...], "rows": [[...], ...]}``."""
    payload = {
        "name": frame.name,
        "columns": frame.columns,
        "rows": [list(row) for row in frame.to_rows()],
    }
    return json.dumps(payload, ensure_ascii=False)


def from_json(text: str) -> DataFrame:
    payload = json.loads(text)
    return DataFrame.from_rows(
        [tuple(row) for row in payload["rows"]],
        payload["columns"],
        name=payload.get("name", ""),
    )


# --- display -------------------------------------------------------------------


def to_markdown(frame: DataFrame, *, max_rows: int | None = 20) -> str:
    """Render a GitHub-style markdown table (for docs and examples)."""
    def fmt(value) -> str:
        return "" if is_missing(value) else str(value)

    header = "| " + " | ".join(frame.columns) + " |"
    rule = "|" + "|".join(" --- " for _ in frame.columns) + "|"
    lines = [header, rule]
    shown = frame.num_rows if max_rows is None else min(max_rows,
                                                        frame.num_rows)
    for index in range(shown):
        cells = " | ".join(
            fmt(frame.cell(index, name)) for name in frame.columns)
        lines.append(f"| {cells} |")
    if shown < frame.num_rows:
        lines.append(f"| ... {frame.num_rows - shown} more rows ... |")
    return "\n".join(lines)
