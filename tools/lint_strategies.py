"""Lint the strategy seam: no direct engine instantiation outside it.

The strategy registry (``repro.strategies``) is the single
engine-resolution seam: agents, voters, the reflexion rung, both serving
ladders and the CLI resolve engines by *name* through
``get_strategy(...)``.  The whole substitutability story — register a
strategy, inherit voting/batching/reflexion/serving for free — collapses
if a caller "shortcuts" the registry by constructing an engine class
directly: that call site silently stops honouring ``--strategy``, the
conformance suite keeps passing (the default path is unchanged), and the
drift only surfaces when a non-default strategy misbehaves in one ladder.

This lint greps ``src/repro`` for direct constructions of the engine
classes —

* ``ChainEngine(`` / ``CoTEngine(``
* ``ChainOfTableEngine(`` / ``CommentedCodeEngine(``

— everywhere except the two modules allowed to touch them:
``repro/engine/`` (where the classes live) and ``repro/strategies/``
(whose ``builtin`` module is the one factory site).

Heuristics are line-based and deliberately simple, like the repo's
other lints; docstring prose is skipped and ``# lint: allow-engine-class``
on the line silences a finding that is genuinely safe (none are today —
``isinstance(engine, ChainEngine)`` dispatch does not match, only
constructions do).

Runs standalone (``python tools/lint_strategies.py``, exits non-zero on
a violation) and as a tier-1 test via ``tests/test_lint_strategies.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Directories (relative to ``src/repro``) allowed to name engine
#: classes: where they are defined, and the one factory seam.
ALLOWED = ("engine", "strategies")

#: ``(pattern, message)`` — a match on a code line is a finding.
_ENGINE_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\bChainOfTableEngine\("),
     "direct ChainOfTableEngine construction (resolve "
     "get_strategy('chain-of-table') instead)"),
    (re.compile(r"\bCommentedCodeEngine\("),
     "direct CommentedCodeEngine construction (resolve "
     "get_strategy('commented-code') instead)"),
    (re.compile(r"\bChainEngine\("),
     "direct ChainEngine construction (resolve "
     "get_strategy('react') instead)"),
    (re.compile(r"\bCoTEngine\("),
     "direct CoTEngine construction (resolve "
     "get_strategy('cot') instead)"),
]

_SUPPRESS = "# lint: allow-engine-class"


def _code_lines(text: str):
    """Yield ``(number, line)`` for code lines, skipping docstring prose.

    Triple-quote tracking is a line-based toggle — good enough for this
    repo's style (no triple-quoted data strings in ``src/repro``).
    """
    in_doc = False
    for number, line in enumerate(text.splitlines(), start=1):
        quotes = line.count('"""') + line.count("'''")
        if in_doc:
            if quotes % 2:
                in_doc = False
            continue
        if quotes % 2:
            in_doc = True
            continue                    # opening docstring line
        stripped = line.lstrip()
        if quotes and stripped.startswith(('"""', "'''")):
            continue                    # one-line docstring
        yield number, line


def scan_file(path: Path) -> list[str]:
    violations = []
    try:
        relpath = path.relative_to(SRC.parent.parent).as_posix()
    except ValueError:          # outside the repo (test fixtures)
        relpath = path.name
    for number, line in _code_lines(path.read_text(encoding="utf-8")):
        stripped = line.lstrip()
        if stripped.startswith("#") or _SUPPRESS in line:
            continue
        for pattern, message in _ENGINE_PATTERNS:
            if pattern.search(line):
                violations.append(f"{relpath}:{number}: {message}")
                break           # one finding per line is enough
    return violations


def _scanned_files(root: Path = SRC):
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] in ALLOWED:
            continue
        yield path


def find_violations(root: Path = SRC) -> list[str]:
    """Engine constructions outside the seam, one line each."""
    violations = []
    for path in _scanned_files(root):
        violations.extend(scan_file(path))
    return violations


def main() -> int:
    violations = find_violations()
    for line in violations:
        print(f"lint_strategies: {line}", file=sys.stderr)
    if violations:
        print(f"lint_strategies: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_strategies: every engine is resolved through the "
          "strategy registry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
