"""Per-backend circuit breaker for the serving worker pool.

A :class:`CircuitBreaker` tracks consecutive failures against one backend
(one model profile).  After ``failure_threshold`` consecutive failures it
**opens**: requests are refused instantly (fail fast, shed load) instead
of queueing behind a dead backend.  After ``cooldown`` seconds it goes
**half-open** and admits probe calls — the first success closes the
circuit, the first failure re-opens it and restarts the cooldown.

The breaker is thread-safe (every worker thread of a pool shares the same
instance per backend) and clock-injectable for deterministic tests.
State transitions are reported through ``on_transition(backend, old,
new)`` so the pool can mirror them into
:class:`~repro.serving.metrics.ServingMetrics` and the trace.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.telemetry.metrics import GLOBAL_REGISTRY

__all__ = ["BreakerConfig", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs: consecutive failures to open, seconds to half-open."""

    failure_threshold: int = 5
    cooldown: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed."""

    def __init__(self, backend: str = "default", *,
                 config: BreakerConfig | None = None,
                 clock=time.monotonic, on_transition=None):
        self.backend = backend
        self.config = config or BreakerConfig()
        self._clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.rejections = 0
        self.times_opened = 0

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, new_state: str) -> None:
        # Caller holds the lock.
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self.times_opened += 1
            self._opened_at = self._clock()
        GLOBAL_REGISTRY.counter(
            "breaker.transitions", "circuit breaker state changes",
        ).inc(backend=self.backend, to=new_state)
        if self.on_transition is not None:
            self.on_transition(self.backend, old_state, new_state)

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (self._state == OPEN
                and self._clock() - self._opened_at
                >= self.config.cooldown):
            self._transition(HALF_OPEN)

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Open circuits refuse (and count the rejection); half-open
        circuits admit probes.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == OPEN:
                self.rejections += 1
                GLOBAL_REGISTRY.counter(
                    "breaker.rejections", "calls refused by an open circuit",
                ).inc(backend=self.backend)
                return False
            return True

    def record_success(self) -> None:
        """One call against the backend succeeded."""
        with self._lock:
            self._consecutive_failures = 0
            self._maybe_half_open()
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """One call against the backend failed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._consecutive_failures = self.config.failure_threshold
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED and self._consecutive_failures
                    >= self.config.failure_threshold):
                self._transition(OPEN)

    def snapshot(self) -> dict:
        """JSON-ready view of the breaker's state and counters."""
        with self._lock:
            self._maybe_half_open()
            return {
                "backend": self.backend,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "rejections": self.rejections,
            }
