#!/usr/bin/env python
"""Run the performance benchmark suite and regression gate.

Times the compiled SQL path against the interpreter, the prompt-encoding
cache against cold encoding, and the plan cache against re-parsing;
enforces the speedup floors; writes/compares the checked-in baseline at
``results/BENCH_perf_substrates.json``; exits non-zero on any failure.

Usage::

    python tools/perf_gate.py                 # full gate vs baseline
    python tools/perf_gate.py --check-only    # correctness smoke only
    python tools/perf_gate.py --update-baseline
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.gate import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
