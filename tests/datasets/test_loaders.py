"""Tests for the real-benchmark file loaders."""

import pytest

from repro.datasets import load_wikitq_questions, load_wikitq_table
from repro.errors import DatasetError


@pytest.fixture
def question_tsv(tmp_path):
    path = tmp_path / "pristine-unseen-tables.tsv"
    path.write_text(
        "id\tutterance\tcontext\ttargetValue\n"
        "nu-0\twhich country had the most cyclists?\t"
        "csv/203-csv/733.csv\tItaly\n"
        "nu-1\twhat years did they win?\tcsv/204-csv/1.csv\t"
        "2001|2002|2003\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture
def table_csv(tmp_path):
    path = tmp_path / "733.csv"
    path.write_text(
        "Rank,Cyclist,Points\n"
        "1,Alejandro Valverde (ESP),40\n"
        "2,Alexandr Kolobnev (RUS),\n",
        encoding="utf-8",
    )
    return path


class TestQuestionLoader:
    def test_parses_rows(self, question_tsv):
        questions = load_wikitq_questions(question_tsv)
        assert len(questions) == 2
        assert questions[0].uid == "nu-0"
        assert questions[0].gold_answer == ["Italy"]

    def test_multi_valued_answers_split(self, question_tsv):
        questions = load_wikitq_questions(question_tsv)
        assert questions[1].gold_answer == ["2001", "2002", "2003"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_wikitq_questions(tmp_path / "nope.tsv")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("wrong\theader\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_wikitq_questions(path)


class TestTableLoader:
    def test_loads_and_types(self, table_csv):
        frame = load_wikitq_table(table_csv)
        assert frame.columns == ["Rank", "Cyclist", "Points"]
        assert frame.cell(0, "Rank") == 1
        assert frame.cell(1, "Points") is None

    def test_named(self, table_csv):
        assert load_wikitq_table(table_csv, name="T9").name == "T9"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_wikitq_table(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_wikitq_table(path)
