"""Ablation (beyond the paper): SQLite backend vs the native SQL engine.

The paper runs SQL through SQLite; this repo also ships a from-scratch
engine.  The bench checks result parity (identical accuracy — the two
backends must agree on every generated query) and compares latency.
"""

import time

from harness import benchmark_for, model_for

from repro.core import ReActTableAgent
from repro.evalkit import evaluate_agent
from repro.executors import default_registry
from repro.reporting import ComparisonTable, save_result


def run_experiment() -> dict[str, tuple[float, float]]:
    bench = benchmark_for("wikitq")
    results = {}
    for backend in ("sqlite", "native"):
        agent = ReActTableAgent(
            model_for(bench),
            registry=default_registry(sql_backend=backend))
        start = time.perf_counter()
        accuracy = evaluate_agent(agent, bench).accuracy
        elapsed = time.perf_counter() - start
        results[backend] = (accuracy, elapsed)
    return results


def test_ablation_sql_backend(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    def fmt(value):
        accuracy, elapsed = value
        return f"{accuracy * 100:.1f}% / {elapsed:.1f}s"

    table = ComparisonTable("Ablation: SQL backend (WikiTQ, greedy)",
                            value_formatter=fmt)
    for backend, value in measured.items():
        table.row(backend, None, value)
    table.print()
    save_result("ablation_sql_backend", table.render())

    sqlite_acc, _ = measured["sqlite"]
    native_acc, _ = measured["native"]
    assert abs(sqlite_acc - native_acc) < 0.02, \
        "the two SQL backends must agree on generated queries"
