"""Ablation (beyond the paper): the prompting cost of majority voting.

Section 5.3 warns that "majority voting introduces additional prompting
costs ... one should exercise caution".  This bench quantifies the
trade-off: accuracy vs LLM calls and estimated tokens per question, for
every configuration.
"""

from harness import VOTE_SAMPLES, benchmark_for, model_for

from repro.core import (
    ExecutionBasedVoting,
    ReActTableAgent,
    SimpleMajorityVoting,
    TreeExplorationVoting,
)
from repro.evalkit import evaluate_agent
from repro.llm import CallCounter
from repro.reporting import ComparisonTable, save_result


def run_experiment() -> dict[str, tuple[float, float, float]]:
    bench = benchmark_for("wikitq")
    configurations = {
        "greedy": lambda model: ReActTableAgent(model),
        "s-vote": lambda model: SimpleMajorityVoting(
            model, n=VOTE_SAMPLES),
        "t-vote": lambda model: TreeExplorationVoting(
            model, n=VOTE_SAMPLES),
        "e-vote": lambda model: ExecutionBasedVoting(
            model, n=VOTE_SAMPLES),
    }
    measured = {}
    for name, factory in configurations.items():
        counter = CallCounter(model_for(bench))
        report = evaluate_agent(factory(counter), bench)
        questions = report.num_questions
        measured[name] = (
            report.accuracy,
            counter.calls / questions,
            counter.total_tokens / questions,
        )
    return measured


def test_ablation_vote_cost(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    def fmt(value):
        accuracy, calls, tokens = value
        return f"{accuracy * 100:.1f}% / {calls:.1f} / {tokens:,.0f}"

    table = ComparisonTable(
        "Ablation: accuracy / LLM calls / tokens per question (WikiTQ)",
        value_formatter=fmt)
    for name, value in measured.items():
        table.row(name, None, value)
    table.print()
    save_result("ablation_vote_cost", table.render())

    greedy_calls = measured["greedy"][1]
    svote_calls = measured["s-vote"][1]
    assert svote_calls > greedy_calls * (VOTE_SAMPLES - 1), \
        "s-vote must cost roughly n times the greedy configuration"
    # e-vote samples n completions per *step*, so it needs fewer calls
    # than s-vote's n full chains but more tokens than greedy.
    assert measured["e-vote"][2] > measured["greedy"][2]
