"""Per-tenant weighted fair queueing for admission under backlog.

A plain FIFO admission queue lets one chatty tenant starve everyone
behind it.  :class:`WeightedFairQueue` implements self-clocked fair
queueing (SCFQ): each queued item gets a *virtual finish time*

    ``finish = max(virtual_time, tenant_last_finish) + cost / weight``

and :meth:`pop` always serves the smallest finish tag.  Tenants with
weight 2 drain twice as fast as weight 1; a tenant idle for a while
re-enters at the current virtual time (no banked credit — fairness is
over *backlogged* tenants, the classic WFQ contract).  Virtual time
advances to the finish tag of each served item.

Everything is deterministic: ties break by tenant arrival order (dict
insertion order), and no wall clock is involved — the virtual clock only
moves when items are served, so tests can pin exact interleavings.

The structure is loop-agnostic (no asyncio imports): the async server
queues parked waiter futures in it, but any scheduler could reuse it.
"""

from __future__ import annotations

from collections import deque

__all__ = ["WeightedFairQueue"]


class WeightedFairQueue:
    """A deterministic SCFQ queue of ``(tenant, item)`` entries."""

    def __init__(self, *, weights: dict[str, float] | None = None,
                 default_weight: float = 1.0):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"weight for tenant {tenant!r} must be positive")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self._queues: dict[str, deque] = {}
        self._last_finish: dict[str, float] = {}
        self._virtual = 0.0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def virtual_time(self) -> float:
        """The SCFQ virtual clock (finish tag of the last served item)."""
        return self._virtual

    def weight_of(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def depths(self) -> dict[str, int]:
        """Backlog per tenant (empty tenants omitted)."""
        return {tenant: len(queue)
                for tenant, queue in self._queues.items() if queue}

    def push(self, tenant: str, item, *, cost: float = 1.0) -> None:
        """Queue ``item`` for ``tenant``; ``cost`` scales its share use."""
        start = max(self._virtual, self._last_finish.get(tenant, 0.0))
        finish = start + cost / self.weight_of(tenant)
        self._last_finish[tenant] = finish
        self._queues.setdefault(tenant, deque()).append((finish, item))
        self._size += 1

    def pop(self):
        """Serve the smallest-finish-tag item; raises ``IndexError`` empty."""
        if not self._size:
            raise IndexError("pop from an empty WeightedFairQueue")
        best_tenant = None
        best_finish = 0.0
        # Dict insertion order makes ties deterministic: the first-seen
        # tenant wins (strict <).
        for tenant, queue in self._queues.items():
            if queue and (best_tenant is None or queue[0][0] < best_finish):
                best_tenant = tenant
                best_finish = queue[0][0]
        finish, item = self._queues[best_tenant].popleft()
        self._virtual = finish
        self._size -= 1
        return item
