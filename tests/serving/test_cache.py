"""Tests for the answer cache: fingerprints, LRU eviction, TTL."""

import pytest

from repro.serving import AnswerCache, CachedAnswer, TQARequest, TQAResponse
from repro.serving.cache import request_fingerprint
from repro.table import DataFrame


def _table(values=(1, 2, 3), name="T0"):
    return DataFrame({"a": list(values), "b": ["x", "y", "z"]}, name=name)


def _answer(text="42"):
    return CachedAnswer(answer=(text,), iterations=2, forced=False)


class TestRequestFingerprint:
    def test_equal_requests_equal_keys(self):
        first = TQARequest(_table(), "how many rows?", seed=3)
        second = TQARequest(_table(), "how many rows?", seed=3)
        assert (request_fingerprint(first, config="c")
                == request_fingerprint(second, config="c"))

    @pytest.mark.parametrize("variant", [
        TQARequest(_table(), "how many columns?", seed=3),
        TQARequest(_table((1, 2, 4)), "how many rows?", seed=3),
        TQARequest(_table(), "how many rows?", seed=4),
    ])
    def test_content_sensitive(self, variant):
        base = TQARequest(_table(), "how many rows?", seed=3)
        assert (request_fingerprint(base, config="c")
                != request_fingerprint(variant, config="c"))

    def test_config_sensitive(self):
        request = TQARequest(_table(), "how many rows?", seed=3)
        assert (request_fingerprint(request, config="greedy")
                != request_fingerprint(request, config="s-vote"))

    def test_table_name_is_irrelevant(self):
        first = TQARequest(_table(name="T0"), "q", seed=0)
        second = TQARequest(_table(name="renamed"), "q", seed=0)
        assert request_fingerprint(first) == request_fingerprint(second)


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache(4)
        assert cache.get("k") is None
        cache.put("k", _answer())
        assert cache.get("k").answer == ("42",)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = AnswerCache(2)
        cache.put("a", _answer("a"))
        cache.put("b", _answer("b"))
        assert cache.get("a") is not None   # refresh "a"
        cache.put("c", _answer("c"))        # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = AnswerCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("k", _answer())
        now[0] = 9.9
        assert cache.get("k") is not None
        now[0] = 10.0
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        now = [0.0]
        cache = AnswerCache(4, clock=lambda: now[0])
        cache.put("k", _answer())
        now[0] = 1e9
        assert cache.get("k") is not None

    def test_put_overwrites_in_place(self):
        cache = AnswerCache(2)
        cache.put("k", _answer("old"))
        cache.put("k", _answer("new"))
        assert len(cache) == 1
        assert cache.get("k").answer == ("new",)

    def test_stats_snapshot(self):
        cache = AnswerCache(4)
        cache.put("k", _answer())
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AnswerCache(0)

    def test_round_trip_through_response(self):
        response = TQAResponse(uid="r", answer=["7"], iterations=3,
                               forced=True, handling_events=["note"])
        cached = CachedAnswer.from_response(response)
        revived = cached.to_response("other", latency=0.5)
        assert revived.answer == ["7"]
        assert revived.iterations == 3 and revived.forced
        assert revived.handling_events == ["note"]
        assert revived.cached and revived.attempts == 0
