"""The Codex-CoT ablation baseline (Section 4.3.1).

Identical to ReAcTable except that *no intermediate tables* are fed back:
the model produces the entire code sequence plus the answer in a single
completion.  The agent still executes the generated code blocks through
the real executors (the paper: "the generated code is executed to obtain
the final answer"); when every block runs, the answer is read from the
final table, otherwise the model's own stated answer line is used.

Since the sans-IO refactor the single-completion loop lives in
:class:`repro.engine.CoTEngine`; this class is its synchronous driver
(and its model call now runs inside a ``model_call`` telemetry span via
the shared :class:`repro.engine.EffectHandler`).
"""

from __future__ import annotations

from repro.core.agent import AgentResult
from repro.engine.driver import EffectHandler, drive
from repro.executors.registry import ExecutorRegistry, default_registry
from repro.llm.base import LanguageModel
from repro.strategies.base import EngineRequest
from repro.strategies.registry import get_strategy
from repro.table.frame import DataFrame

__all__ = ["CodexCoTAgent"]


class CodexCoTAgent:
    """Single-completion chain-of-thought baseline."""

    def __init__(self, model: LanguageModel, *,
                 registry: ExecutorRegistry | None = None,
                 temperature: float = 0.0):
        self.model = model
        self.registry = registry or default_registry()
        self.strategy = get_strategy("cot")
        self.temperature = temperature

    def run(self, table: DataFrame, question: str) -> AgentResult:
        engine = self.strategy.build_engine(EngineRequest(
            table=table, question=question,
            languages=tuple(self.registry.languages),
            temperature=self.temperature))
        # Any block failure — executor error, missing executor, sandbox
        # refusal — is noted and skipped, hence the blanket envelope
        # named by the strategy contract.
        handler = EffectHandler(self.model, self.registry,
                                catch=self.strategy.handler_catch)
        return drive(engine, handler)
