"""Calibration harness for the simulated-model parameters.

Measures the headline configurations against the paper's numbers for a
given parameter override set.  Used offline to pick the constants baked
into ``repro/llm/profiles.py``; re-run after changing the error model.

Usage::

    python tools/calibrate.py --size 800 --dataset wikitq \
        --set question_noise=1.6 --set skill=2.45
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.core import CodexCoTAgent, ReActTableAgent, SimpleMajorityVoting
from repro.datasets import generate_dataset
from repro.evalkit import evaluate_answer
from repro.llm import SimulatedTQAModel, get_profile


def measure(dataset: str, size: int, profile, seed: int = 1) -> dict:
    benchmark = generate_dataset(dataset, size=size, seed=11)
    model = SimulatedTQAModel(benchmark.bank, profile, seed=seed)

    def accuracy(runner) -> float:
        hits = 0
        for example in benchmark.examples:
            result = runner.run(example.table, example.question)
            if evaluate_answer(dataset, result.answer, example.gold_answer):
                hits += 1
        return hits / len(benchmark.examples)

    return {
        "greedy": accuracy(ReActTableAgent(model)),
        "s-vote": accuracy(SimpleMajorityVoting(model, n=5)),
        "cot": accuracy(CodexCoTAgent(model)),
        "cot+s-vote": accuracy(_CoTVote(model, n=5)),
    }


class _CoTVote:
    """Simple majority voting over the CoT baseline (Table 4/5 rows)."""

    def __init__(self, model, n=5, temperature=0.6):
        self.model = model
        self.n = n
        self.temperature = temperature

    def run(self, table, question):
        from repro.core.voting import get_majority

        agent = CodexCoTAgent(self.model, temperature=self.temperature)
        answers = [agent.run(table, question).answer
                   for _ in range(self.n)]
        winner = get_majority(answers)
        result = agent.run(table, question)
        result.answer = winner
        return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="wikitq")
    parser.add_argument("--size", type=int, default=600)
    parser.add_argument("--profile", default="codex-sim")
    parser.add_argument("--set", action="append", default=[],
                        help="profile override, e.g. skill=2.4")
    args = parser.parse_args()

    profile = get_profile(args.profile)
    overrides = {}
    for item in args.set:
        key, _, value = item.partition("=")
        overrides[key] = float(value)
    if overrides:
        profile = dataclasses.replace(profile, **overrides)

    results = measure(args.dataset, args.size, profile)
    targets = {
        "wikitq": {"greedy": 0.658, "s-vote": 0.680,
                   "cot": 0.494, "cot+s-vote": 0.477},
        "tabfact": {"greedy": 0.831, "s-vote": 0.861,
                    "cot": 0.711, "cot+s-vote": 0.723},
    }.get(args.dataset, {})
    for key, value in results.items():
        target = targets.get(key)
        suffix = f"  (paper {target:.3f})" if target else ""
        print(f"{key:>12}: {value:.3f}{suffix}")


if __name__ == "__main__":
    main()
