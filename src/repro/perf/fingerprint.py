"""The one content-fingerprint scheme shared by every cache in the repo.

Both the serving answer cache and the prompt-encoding cache key on "has
this table changed?".  They must agree on the answer, so the hashing
lives here and nowhere else.

``table_digest`` delegates to ``DataFrame.content_digest()``, which is
computed lazily and cached on the frame itself (frames are value objects;
only ``__setitem__`` mutates, and it invalidates the cached digest).  The
digest covers column names, dtypes, and every cell tagged with its Python
type — so ``1`` and ``"1"`` hash differently.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.table.frame import DataFrame

__all__ = ["table_digest", "combined_fingerprint"]


def table_digest(table: DataFrame) -> str:
    """Stable hex digest of a frame's schema, dtypes, and cell contents."""
    return table.content_digest()


def combined_fingerprint(parts: Iterable[str]) -> str:
    """SHA-256 over ``parts`` joined with an unambiguous separator.

    Used to build cache keys from several content components (e.g. table
    digest + question + config + seed) without delimiter-collision bugs.
    """
    hasher = hashlib.sha256()
    first = True
    for part in parts:
        if not first:
            hasher.update(b"\x1d")
        first = False
        hasher.update(part.encode("utf-8"))
    return hasher.hexdigest()
