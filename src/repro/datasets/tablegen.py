"""Synthetic table generator.

Produces tables with the structural features the paper's motivating example
highlights: a *composite* string column whose values pack an entity name
and a parenthesised code (``"Alejandro Valverde (ESP)"``), numeric measure
columns, a categorical column, a rank column, and occasional missing
values.  Six domains give surface variety; every domain is described by a
:class:`Domain` so question templates can be written generically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.table.frame import DataFrame

__all__ = ["Domain", "GeneratedTable", "DOMAINS", "generate_table"]


@dataclass(frozen=True)
class Domain:
    """Static description of one table domain."""

    name: str
    entity_column: str        # composite column header
    entity_label: str         # NL noun for a row entity ("cyclist")
    code_label: str           # NL noun for the embedded code ("country")
    code_pattern: str         # regex with one capture group
    code_pool: tuple[str, ...]
    first_names: tuple[str, ...]
    last_names: tuple[str, ...]
    category_column: str
    category_label: str
    category_pool: tuple[str, ...]
    numeric_columns: tuple[tuple[str, str, int, int], ...]
    # each: (header, NL label, min, max)
    rank_column: str = "Rank"
    code_is_year: bool = False


@dataclass
class GeneratedTable:
    """A generated table plus the semantic handles templates need."""

    frame: DataFrame
    domain: Domain
    entity_values: list[str]      # full composite strings
    entity_codes: list[str]       # the embedded code per row
    seed: int = 0

    @property
    def numeric_headers(self) -> list[str]:
        return [header for header, _, _, _ in self.domain.numeric_columns]

    def numeric_label(self, header: str) -> str:
        for col, label, _, _ in self.domain.numeric_columns:
            if col == header:
                return label
        raise KeyError(header)


_COUNTRIES = ("ESP", "RUS", "FRA", "ITA", "GER", "USA", "GBR", "BEL",
              "NED", "AUS", "COL", "DEN")
_PARTIES = ("DEM", "REP", "IND", "GRN", "LIB")
_GENERIC_FIRST = ("Alex", "Jordan", "Sam", "Chris", "Taylor", "Morgan",
                  "Casey", "Riley", "Jamie", "Drew", "Avery", "Quinn",
                  "Reese", "Blake", "Rowan", "Skyler")
_GENERIC_LAST = ("Valverde", "Kolobnev", "Moncoutie", "Sanchez", "Schleck",
                 "Rebellin", "Menchov", "Vandenbroucke", "Freire", "Evans",
                 "Rodriguez", "Martin", "Gerrans", "Albasini", "Kreuziger",
                 "Nibali")

DOMAINS: tuple[Domain, ...] = (
    Domain(
        name="cycling",
        entity_column="Cyclist",
        entity_label="cyclist",
        code_label="country",
        code_pattern=r"\((\w+)\)",
        code_pool=_COUNTRIES,
        first_names=_GENERIC_FIRST,
        last_names=_GENERIC_LAST,
        category_column="Team",
        category_label="team",
        category_pool=("Caisse d'Epargne", "Team CSC Saxo Bank", "Cofidis",
                       "Rabobank", "Quick Step", "Lampre", "Euskaltel",
                       "Silence-Lotto"),
        numeric_columns=(
            ("Points", "points", 5, 120),
            ("Uci_protour_points", "UCI ProTour points", 0, 60),
        ),
    ),
    Domain(
        name="olympics",
        entity_column="Athlete",
        entity_label="athlete",
        code_label="country",
        code_pattern=r"\((\w+)\)",
        code_pool=_COUNTRIES,
        first_names=_GENERIC_FIRST,
        last_names=("Phelps", "Ledecky", "Biles", "Bolt", "Felix",
                    "Lochte", "Thompson", "Dressel", "McKeon", "Titmus",
                    "Peaty", "Sjostrom", "Hosszu", "Manaudou", "Adlington",
                    "Campbell"),
        category_column="Sport",
        category_label="sport",
        category_pool=("Swimming", "Athletics", "Gymnastics", "Rowing",
                       "Cycling", "Fencing"),
        numeric_columns=(
            ("Gold", "gold medals", 0, 8),
            ("Total_medals", "total medals", 1, 14),
        ),
    ),
    Domain(
        name="elections",
        entity_column="Candidate",
        entity_label="candidate",
        code_label="party",
        code_pattern=r"\((\w+)\)",
        code_pool=_PARTIES,
        first_names=("Harvey", "Royds", "Eleanor", "Marcus", "Sylvia",
                     "Preston", "Dorothy", "Walter", "Imogen", "Clarence",
                     "Beatrice", "Edmund", "Harriet", "Lionel", "Maude",
                     "Oswald"),
        last_names=("Whitfield", "Pemberton", "Ashcroft", "Langley",
                    "Fairbanks", "Holloway", "Kingsley", "Merriweather",
                    "Northcote", "Ollivander", "Prescott", "Quimby",
                    "Ravenscroft", "Standish", "Thorne", "Underwood"),
        category_column="District",
        category_label="district",
        category_pool=("North", "South", "East", "West", "Central",
                       "Riverside"),
        numeric_columns=(
            ("Votes", "votes", 500, 25000),
            ("Share", "vote share", 1, 60),
        ),
    ),
    Domain(
        name="films",
        entity_column="Film",
        entity_label="film",
        code_label="year",
        code_pattern=r"\((\d{4})\)",
        code_pool=tuple(str(year) for year in range(1990, 2015)),
        first_names=("The", "A", "Last", "First", "Silent", "Golden",
                     "Broken", "Hidden", "Distant", "Burning", "Frozen",
                     "Crimson", "Midnight", "Electric", "Paper", "Iron"),
        last_names=("Horizon", "Promise", "Garden", "River", "Empire",
                    "Voyage", "Symphony", "Harvest", "Monument", "Mirage",
                    "Cathedral", "Expedition", "Paradox", "Covenant",
                    "Labyrinth", "Meridian"),
        category_column="Studio",
        category_label="studio",
        category_pool=("Paramount", "Universal", "Warner", "Columbia",
                       "Lionsgate", "Focus"),
        numeric_columns=(
            ("Box_office", "box office (millions)", 2, 900),
            ("Awards", "awards", 0, 11),
        ),
        code_is_year=True,
    ),
    Domain(
        name="football",
        entity_column="Player",
        entity_label="player",
        code_label="country",
        code_pattern=r"\((\w+)\)",
        code_pool=_COUNTRIES,
        first_names=_GENERIC_FIRST,
        last_names=("Ronaldo", "Messi", "Lewandowski", "Benzema", "Salah",
                    "Kane", "Haaland", "Mbappe", "Modric", "Kroos",
                    "Neuer", "Ramos", "Suarez", "Aguero", "Hazard",
                    "Griezmann"),
        category_column="Club",
        category_label="club",
        category_pool=("Madrid FC", "United", "Bayern", "Juventus",
                       "Paris SG", "Ajax"),
        numeric_columns=(
            ("Goals", "goals", 0, 45),
            ("Appearances", "appearances", 5, 60),
        ),
    ),
    Domain(
        name="songs",
        entity_column="Song",
        entity_label="song",
        code_label="year",
        code_pattern=r"\((\d{4})\)",
        code_pool=tuple(str(year) for year in range(1995, 2020)),
        first_names=("Blue", "Golden", "Broken", "Endless", "Electric",
                     "Silver", "Lonely", "Wild", "Sweet", "Burning",
                     "Silent", "Neon", "Velvet", "Crystal", "Hollow",
                     "Radiant"),
        last_names=("Nights", "Dreams", "Hearts", "Roads", "Skies",
                    "Rivers", "Echoes", "Shadows", "Flames", "Waves",
                    "Memories", "Horizons", "Whispers", "Storms",
                    "Promises", "Summers"),
        category_column="Label",
        category_label="record label",
        category_pool=("Motown", "Atlantic", "Capitol", "Def Jam",
                       "Interscope", "Sub Pop"),
        numeric_columns=(
            ("Weeks_on_chart", "weeks on chart", 1, 52),
            ("Peak_position", "peak position", 1, 40),
        ),
    ),
)

_DOMAIN_BY_NAME = {domain.name: domain for domain in DOMAINS}


def _noise_column_values(rng: random.Random, rows: int) -> list[str]:
    """An inconsistently-formatted string column, like the paper's Time.

    The Figure 1 table mixes formats inside one column (``5h 29' 10"``,
    ``s.t.``, ``+ 2"``); gold plans never touch this column, but the
    model, the executors and the prompt codec all have to carry it.
    """
    values = [f"{rng.randint(4, 6)}h {rng.randint(0, 59)}' "
              f"{rng.randint(0, 59)}\""]
    for _ in range(rows - 1):
        style = rng.random()
        if style < 0.45:
            values.append("s.t.")
        elif style < 0.8:
            values.append(f"+ {rng.randint(1, 59)}\"")
        else:
            values.append(f"+ {rng.randint(1, 9)}' "
                          f"{rng.randint(0, 59)}\"")
    return values


def generate_table(rng: random.Random, *, domain: str | None = None,
                   num_rows: int | None = None,
                   missing_rate: float = 0.06,
                   include_noise_column: bool = False) -> GeneratedTable:
    """Generate one synthetic table.

    ``domain=None`` picks a domain at random; ``num_rows=None`` draws 8-18
    rows.  ``missing_rate`` injects NULLs into the *second* numeric column
    only, mirroring the partially-populated ``Uci_protour_points`` column
    in the paper's running example (the first numeric column stays clean so
    aggregates remain well defined).  ``include_noise_column`` adds a
    ``Time``-style column with inconsistent string formats (the paper's
    challenge (ii)); gold plans never reference it.
    """
    spec = _DOMAIN_BY_NAME[domain] if domain else rng.choice(DOMAINS)
    rows = num_rows if num_rows is not None else rng.randint(8, 18)

    # Distinct entity names so lookups and superlatives are unambiguous.
    combos = [
        f"{first} {last}"
        for first in spec.first_names for last in spec.last_names
    ]
    rng.shuffle(combos)
    names = combos[:rows]

    codes = [rng.choice(spec.code_pool) for _ in range(rows)]
    entities = [f"{name} ({code})" for name, code in zip(names, codes)]
    categories = [rng.choice(spec.category_pool) for _ in range(rows)]

    columns: dict[str, list] = {spec.rank_column: list(range(1, rows + 1))}
    columns[spec.entity_column] = entities
    columns[spec.category_column] = categories
    if include_noise_column:
        columns["Time"] = _noise_column_values(rng, rows)
    for index, (header, _, low, high) in enumerate(spec.numeric_columns):
        values: list = [rng.randint(low, high) for _ in range(rows)]
        if index > 0:
            values = [
                None if rng.random() < missing_rate else value
                for value in values
            ]
        columns[header] = values

    frame = DataFrame(columns, name="T0")
    return GeneratedTable(
        frame=frame,
        domain=spec,
        entity_values=entities,
        entity_codes=codes,
    )
