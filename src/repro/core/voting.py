"""The three majority-voting mechanisms of Section 3.4.

* :class:`SimpleMajorityVoting` — Algorithm 1: run the whole chain *n*
  times at high temperature, take the most frequent answer.
* :class:`TreeExplorationVoting` — Algorithm 2: sample *n* continuations at
  every step, explore every branch, majority over leaf answers.
* :class:`ExecutionBasedVoting` — Algorithm 3: sample *n* continuations per
  step, execute each, merge predictions whose executions produce
  *equivalent* tables by max log-probability, and commit the single
  highest-scoring prediction as the next step.

All three return an :class:`AgentResult`-compatible summary via
:class:`VotingResult`.

Since the sans-IO refactor the voters are *branch-forking drivers* over
:class:`repro.engine.ChainEngine`: step logic (prompt assembly, action
execution, ``T<k>`` table naming) comes from the engine's branch
primitives and forked branches are engine :meth:`clone`\\ s, while the
voting policy — who votes, what merges, which branch is committed — stays
here.  Every model call now runs through the
:class:`repro.engine.EffectHandler`'s ``model_call`` telemetry span, so
voted runs get the same token attribution and cost fold-up as single
chains (they used to bypass the spans and under-report).  Each ``run``
is wrapped in a ``vote_run`` span carrying the method name.

:class:`SimpleMajorityVoting` additionally supports the batched driver:
with ``use_scheduler=True`` (the serving pool sets it under
``REPRO_BATCH_SCHEDULER=1``) its *n* chains run concurrently through a
:class:`repro.engine.BatchScheduler`, which coalesces identical pending
prompts across chains into single batched completions.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass, field

from repro.core.actions import ActionKind, parse_action
from repro.core.agent import HARD_ITERATION_CAP, ReActTableAgent
from repro.engine.core import ChainEngine
from repro.engine.driver import EffectHandler
from repro.engine.scheduler import BatchScheduler
from repro.errors import ActionParseError, ModelError, StrategyError
from repro.executors.registry import ExecutorRegistry, default_registry
from repro.llm.base import LanguageModel
from repro.strategies.base import EngineRequest
from repro.strategies.registry import get_strategy
from repro.table.compare import table_fingerprint
from repro.table.frame import DataFrame
from repro.telemetry.spans import span

__all__ = [
    "VotingResult",
    "get_majority",
    "SimpleMajorityVoting",
    "TreeExplorationVoting",
    "ExecutionBasedVoting",
    "make_voter",
]

#: The paper's settings: temperature 0.6, five samples.
DEFAULT_VOTE_TEMPERATURE = 0.6
DEFAULT_VOTE_SAMPLES = 5


@dataclass
class VotingResult:
    """Outcome of a voted run."""

    answer: list[str]
    votes: dict[str, int] = field(default_factory=dict)
    num_chains: int = 0
    iterations: int = 0        # iterations of the winning/first chain

    @property
    def answer_text(self) -> str:
        return "|".join(self.answer)


def _normalize_answer_key(values: list[str]) -> str:
    return "|".join(" ".join(v.split()).strip().lower() for v in values)


def get_majority(answers: list[list[str]]) -> list[str]:
    """Most frequent answer (first-seen breaks ties), per the paper."""
    counts: dict[str, int] = {}
    representative: dict[str, list[str]] = {}
    order: list[str] = []
    for answer in answers:
        key = _normalize_answer_key(answer)
        if key not in counts:
            counts[key] = 0
            representative[key] = answer
            order.append(key)
        counts[key] += 1
    if not order:
        return []
    best = max(order, key=lambda key: counts[key])
    return representative[best]


def _branching_strategy(name: str, voter: str):
    """Resolve a strategy for a branch-forking voter, or refuse.

    Tree- and execution-based voting fork the search tree through the
    engine's clone/prompt_effect/execute_effect primitives; a
    single-completion strategy has no branches to fork.
    """
    strategy = get_strategy(name)
    if not strategy.supports_branching:
        raise StrategyError(
            f"strategy {strategy.name!r} does not support branch "
            f"primitives; {voter} voting needs a chain-family strategy")
    return strategy


class SimpleMajorityVoting:
    """Algorithm 1: n independent chains, majority answer.

    ``use_scheduler=True`` switches from n sequential agent runs to one
    :class:`repro.engine.BatchScheduler` pass driving all n chains
    concurrently with coalesced model calls.  Same voting policy, one
    batched round-trip per tree level instead of one call per step.
    """

    def __init__(self, model: LanguageModel, *,
                 registry: ExecutorRegistry | None = None,
                 temperature: float = DEFAULT_VOTE_TEMPERATURE,
                 n: int = DEFAULT_VOTE_SAMPLES,
                 max_iterations: int | None = None,
                 use_scheduler: bool = False,
                 strategy: str = "react"):
        self.model = model
        self.registry = registry or default_registry()
        self.strategy = get_strategy(strategy)
        self.temperature = temperature
        self.n = n
        self.max_iterations = max_iterations
        self.use_scheduler = use_scheduler

    @property
    def handler_catch(self) -> tuple:
        """The strategy's exception envelope, for external drivers."""
        return self.strategy.handler_catch

    def _agent(self) -> ReActTableAgent:
        return ReActTableAgent(
            self.model, registry=self.registry,
            temperature=self.temperature,
            max_iterations=self.max_iterations,
            strategy=self.strategy.name)

    def run(self, table: DataFrame, question: str) -> VotingResult:
        with span("vote_run", method="s-vote", n=self.n):
            if self.use_scheduler:
                results = self._run_scheduled(table, question)
            else:
                agent = self._agent()
                results = [agent.run(table, question)
                           for _ in range(self.n)]
        return self.tally(results)

    def chain_engines(self, table: DataFrame,
                      question: str) -> list[ChainEngine]:
        """The voter's *n* independent chains as sans-IO engines.

        The seam for external drivers (the batched scheduler here, the
        async server's continuous batcher): drive these however you like,
        then combine the results with :meth:`tally` — same voting policy,
        any sequencing.
        """
        agent = self._agent()
        return [agent.engine_for(table, question) for _ in range(self.n)]

    def tally(self, results) -> VotingResult:
        """Combine per-chain :class:`AgentResult`\\ s into the vote.

        Answers pass through the strategy's extraction contract first,
        so a non-default strategy votes in its own normal form.
        """
        extract = self.strategy.extract_answer
        return self._tally([list(extract(r)) for r in results],
                           [r.iterations for r in results])

    def _run_scheduled(self, table: DataFrame, question: str):
        scheduler = BatchScheduler(self.model, self.registry,
                                   catch=self.handler_catch)
        return scheduler.run(self.chain_engines(table, question))

    def _tally(self, answers: list[list[str]],
               iterations: list[int]) -> VotingResult:
        votes: dict[str, int] = {}
        for answer in answers:
            key = _normalize_answer_key(answer)
            votes[key] = votes.get(key, 0) + 1
        winner = get_majority(answers)
        winner_key = _normalize_answer_key(winner)
        # Report the iteration count of the first chain that produced the
        # winning answer (used by the Figure 4 histogram).
        winner_iterations = next(
            (it for it, ans in zip(iterations, answers)
             if _normalize_answer_key(ans) == winner_key),
            iterations[0] if iterations else 0)
        return VotingResult(answer=winner, votes=votes,
                            num_chains=self.n,
                            iterations=winner_iterations)


class TreeExplorationVoting:
    """Algorithm 2: fanout-n reasoning tree, majority over leaves.

    ``max_branches`` bounds the frontier so adversarial inputs cannot blow
    the tree up exponentially (the paper's chains are ≤5 deep, so the
    default is never hit in practice).
    """

    def __init__(self, model: LanguageModel, *,
                 registry: ExecutorRegistry | None = None,
                 temperature: float = DEFAULT_VOTE_TEMPERATURE,
                 n: int = DEFAULT_VOTE_SAMPLES,
                 max_branches: int = 256,
                 max_depth: int = HARD_ITERATION_CAP,
                 strategy: str = "react"):
        self.model = model
        self.registry = registry or default_registry()
        self.strategy = _branching_strategy(strategy, "tree-exploration")
        self.temperature = temperature
        self.n = n
        self.max_branches = max_branches
        self.max_depth = max_depth

    def run(self, table: DataFrame, question: str) -> VotingResult:
        # Branches prune (rather than force) on any execution failure, so
        # the handler swallows every exception class.
        handler = EffectHandler(self.model, self.registry,
                                catch=(Exception,))
        root = self.strategy.build_engine(EngineRequest(
            table=table, question=question,
            languages=tuple(self.registry.languages),
            temperature=self.temperature, n=self.n))
        queue: deque[ChainEngine] = deque([root])
        answers: list[list[str]] = []
        votes: dict[str, int] = {}
        expanded = 0
        first_depths: dict[str, int] = {}
        with span("vote_run", method="t-vote", n=self.n):
            while queue:
                branch = queue.popleft()
                depth = branch.depth
                # Force an answer at the depth cap, and also once the
                # branch budget is spent — a pruned branch should still
                # vote rather than vanish.
                force = (depth + 1 >= self.max_depth
                         or expanded >= self.max_branches)
                reply = handler.model_call(branch.prompt_effect(force=force))
                for completion in reply.completions:
                    try:
                        action = parse_action(completion.text)
                    except ActionParseError:
                        continue
                    if action.kind == ActionKind.ANSWER or force:
                        answer = (action.answer_values
                                  if action.kind == ActionKind.ANSWER
                                  else [])
                        answers.append(answer)
                        key = _normalize_answer_key(answer)
                        votes[key] = votes.get(key, 0) + 1
                        first_depths.setdefault(key, depth + 1)
                        continue
                    if expanded >= self.max_branches:
                        continue
                    result = handler.execute(branch.execute_effect(action))
                    if result.outcome is None:
                        # A failed branch contributes nothing (the
                        # single-chain agent would force an answer; the
                        # tree simply prunes).
                        continue
                    child = branch.clone()
                    child.apply(action, result.outcome.table)
                    queue.append(child)
                    expanded += 1
        winner = get_majority(answers)
        return VotingResult(
            answer=winner, votes=votes, num_chains=len(answers),
            iterations=first_depths.get(_normalize_answer_key(winner), 1))


class ExecutionBasedVoting:
    """Algorithm 3: per-step sampling with execution-equivalence merging."""

    def __init__(self, model: LanguageModel, *,
                 registry: ExecutorRegistry | None = None,
                 temperature: float = DEFAULT_VOTE_TEMPERATURE,
                 n: int = DEFAULT_VOTE_SAMPLES,
                 max_depth: int = HARD_ITERATION_CAP,
                 strategy: str = "react"):
        if not model.supports_logprobs:
            raise ModelError(
                f"execution-based voting needs log-probabilities, which "
                f"{model.name} does not provide")
        self.model = model
        self.registry = registry or default_registry()
        self.strategy = _branching_strategy(strategy, "execution-based")
        self.temperature = temperature
        self.n = n
        self.max_depth = max_depth

    def run(self, table: DataFrame, question: str) -> VotingResult:
        # Non-executing code never wins a vote: swallow everything.
        handler = EffectHandler(self.model, self.registry,
                                catch=(Exception,))
        engine = self.strategy.build_engine(EngineRequest(
            table=table, question=question,
            languages=tuple(self.registry.languages),
            temperature=self.temperature, n=self.n))
        iterations = 0
        with span("vote_run", method="e-vote", n=self.n):
            while True:
                iterations += 1
                force = iterations >= self.max_depth
                reply = handler.model_call(
                    engine.prompt_effect(force=force))
                # Score log: group key -> (score, representative
                # prediction).
                groups: dict[object, dict] = {}
                for completion in reply.completions:
                    try:
                        action = parse_action(completion.text)
                    except ActionParseError:
                        continue
                    logprob = (completion.logprob
                               if completion.logprob is not None else -1e9)
                    if action.kind == ActionKind.ANSWER:
                        key = ("answer",
                               _normalize_answer_key(action.answer_values))
                        entry = groups.setdefault(
                            key, {"score": logprob, "action": action,
                                  "table": None})
                    elif force:
                        continue
                    else:
                        result = handler.execute(
                            engine.execute_effect(action))
                        if result.outcome is None:
                            continue  # non-executing code never wins
                        key = ("table",
                               table_fingerprint(result.outcome.table))
                        entry = groups.setdefault(
                            key, {"score": logprob, "action": action,
                                  "table": result.outcome.table})
                    # Merge equivalent predictions by max log-probability.
                    entry["score"] = max(entry["score"], logprob)
                if not groups:
                    return VotingResult(answer=[], num_chains=self.n,
                                        iterations=iterations)
                best = max(groups.values(),
                           key=lambda entry: entry["score"])
                action = best["action"]
                if action.kind == ActionKind.ANSWER:
                    return VotingResult(
                        answer=action.answer_values,
                        votes={str(key): 1 for key in groups},
                        num_chains=self.n,
                        iterations=iterations)
                engine.apply(action, best["table"])


def make_voter(kind: str, model: LanguageModel, **kwargs):
    """Factory: ``"none" | "s-vote" | "t-vote" | "e-vote"`` → runner.

    ``"none"`` returns a greedy single-chain :class:`ReActTableAgent`.
    Every runner accepts ``strategy=<registered name>`` (default
    ``"react"``); the branch-forking voters refuse single-completion
    strategies with a :class:`~repro.errors.StrategyError`.
    """
    if kind in ("none", "greedy"):
        kwargs.pop("temperature", None)
        kwargs.pop("n", None)
        kwargs.pop("use_scheduler", None)
        return ReActTableAgent(model, temperature=0.0, **kwargs)
    if kind in ("s-vote", "simple"):
        return SimpleMajorityVoting(model, **kwargs)
    if kind in ("t-vote", "tree"):
        kwargs.pop("max_iterations", None)
        kwargs.pop("use_scheduler", None)
        return TreeExplorationVoting(model, **kwargs)
    if kind in ("e-vote", "execution"):
        kwargs.pop("max_iterations", None)
        kwargs.pop("use_scheduler", None)
        return ExecutionBasedVoting(model, **kwargs)
    raise ValueError(f"unknown voting kind {kind!r}")
