"""Tests for the TabFact verdict matcher."""

import pytest

from repro.evalkit import normalize_verdict, tabfact_match


class TestNormalizeVerdict:
    @pytest.mark.parametrize("text,expected", [
        ("yes", "yes"),
        ("Yes", "yes"),
        ("no", "no"),
        ("true", "yes"),
        ("False", "no"),
        ("correct", "yes"),
        ("incorrect", "no"),
        ("yes, that is correct", "yes"),
        ("no, the claim is false", "no"),
        ("based on the table, the answer is yes", "yes"),
        ("the claim is not supported", "no"),
        ("banana", None),
        ("", None),
        ("42", None),
    ])
    def test_cases(self, text, expected):
        assert normalize_verdict(text) == expected

    def test_earliest_verdict_wins(self):
        assert normalize_verdict("no, it is not true") == "no"


class TestTabfactMatch:
    def test_exact(self):
        assert tabfact_match(["yes"], ["yes"])
        assert not tabfact_match(["yes"], ["no"])

    def test_verbose_prediction_tolerated(self):
        assert tabfact_match(["yes, that is correct"], ["yes"])

    def test_unparseable_prediction_fails(self):
        assert not tabfact_match(["maybe"], ["yes"])

    def test_empty_inputs(self):
        assert not tabfact_match([], ["yes"])
        assert not tabfact_match(["yes"], [])
