"""Hierarchical spans with ``contextvars`` propagation.

A :class:`Span` is one timed stage of a request; spans nest into a tree
via parent links, so a serving request, the agent iterations inside it,
and the model/SQL/Python stages inside those all roll up into one
structure per request.  Propagation is ambient: entering a span sets two
context variables — the active :class:`Telemetry` store and the current
span — so deeply nested layers (the SQL parser, the sandbox) can
instrument themselves with the module-level :func:`span` helper without
any plumbing, and a worker thread's spans can never leak into another
thread's tree.

Design constraints, in force throughout:

* **zero-dependency** — stdlib only;
* **deterministic content** — ids are sequential, times are
  ``perf_counter`` offsets from the store's origin; no wall-clock
  timestamps, hostnames or randomness ever enter a span;
* **thread-safe** — the store locks its lists/counters; context
  variables give each thread its own current-span chain;
* **cheap when off** — with no active store, :func:`span` returns a
  shared no-op context after a single ``ContextVar.get``.

Token accounting: :meth:`Span.add_tokens` charges prompt/completion
token estimates and model-call counts to a span; when a span closes, its
totals fold into its parent, so a closed root span carries the whole
subtree's cost (the per-request view ``repro trace summary`` reports).
"""

from __future__ import annotations

import json
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass
from itertools import count
from pathlib import Path

__all__ = [
    "SpanContext",
    "Span",
    "TraceEvent",
    "Telemetry",
    "span",
    "activate",
    "current_span",
    "current_telemetry",
    "add_tokens",
]

#: The envelope fields of an exported event; payload keys must not
#: shadow them (see :meth:`TraceEvent.to_dict`).
_EVENT_ENVELOPE = ("kind", "chain_id", "iteration", "at")

_ACTIVE: ContextVar["Telemetry | None"] = ContextVar(
    "repro_telemetry_active", default=None)
_CURRENT: ContextVar["Span | None"] = ContextVar(
    "repro_telemetry_span", default=None)

# Bound once: saves a module-attribute lookup on every span open/close
# and event record (the hot path runs twice per span).
_perf = time.perf_counter


@dataclass(frozen=True)
class SpanContext:
    """The identity of one span: trace, span, and parent ids.

    ``trace_id`` groups every span of one request (it doubles as the
    ``ChainTracer`` chain id where both exist); ``parent_id`` is ``None``
    for a root span.
    """

    trace_id: int
    span_id: int
    parent_id: int | None = None


class Span:
    """One timed, attributed stage of a request.

    A span is its own context manager (``with telemetry.span(...) as s``)
    — entering binds it as the current span, exiting stamps the end time,
    folds token totals into the parent, and records it.  Ids are stored
    flat (not as a :class:`SpanContext`) and no intermediate scope object
    is allocated, keeping the instrumented hot path cheap enough to leave
    tracing on in production.
    """

    __slots__ = ("kind", "trace_id", "span_id", "parent_id", "start",
                 "end", "status", "attributes", "prompt_tokens",
                 "completion_tokens", "model_calls", "_telemetry",
                 "_parent", "_active_token", "_span_token")

    def __init__(self, kind: str, trace_id: int, span_id: int,
                 parent_id: int | None, start: float,
                 attributes: dict, telemetry: "Telemetry",
                 parent: "Span | None"):
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.attributes = attributes
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.model_calls = 0
        self._telemetry = telemetry
        self._parent = parent

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id,
                           parent_id=self.parent_id)

    def __enter__(self) -> "Span":
        # Nested spans of one store are the common case: skip the
        # redundant _ACTIVE set/reset churn when it is already bound.
        if _ACTIVE.get() is self._telemetry:
            self._active_token = None
        else:
            self._active_token = _ACTIVE.set(self._telemetry)
        self._span_token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        telemetry = self._telemetry
        self.end = _perf() - telemetry._origin
        _CURRENT.reset(self._span_token)
        if self._active_token is not None:
            _ACTIVE.reset(self._active_token)
        parent = self._parent
        if parent is not None and (self.model_calls or self.prompt_tokens
                                   or self.completion_tokens):
            parent.prompt_tokens += self.prompt_tokens
            parent.completion_tokens += self.completion_tokens
            parent.model_calls += self.model_calls
        # list.append is atomic under the GIL: no lock on the hot path.
        telemetry.spans.append(self)
        return False

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes) -> None:
        """Attach or overwrite attributes."""
        self.attributes.update(attributes)

    def add_tokens(self, *, prompt: int = 0, completion: int = 0,
                   calls: int = 0) -> None:
        """Charge model cost to this span (folds into the parent on close)."""
        self.prompt_tokens += prompt
        self.completion_tokens += completion
        self.model_calls += calls

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "end": round(self.end, 6) if self.end is not None else None,
            "status": self.status,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "model_calls": self.model_calls,
            "attrs": dict(self.attributes),
        }


class TraceEvent:
    """One flat traced event (the ``ChainTracer`` record type)."""

    __slots__ = ("kind", "chain_id", "iteration", "at", "data")

    def __init__(self, kind: str, chain_id: int, iteration: int,
                 at: float, data: dict | None = None):
        self.kind = kind          # one of telemetry.kinds.EVENT_KINDS
        self.chain_id = chain_id
        self.iteration = iteration
        self.at = at              # seconds since the store's origin
        self.data = data if data is not None else {}

    def __repr__(self) -> str:
        return (f"TraceEvent(kind={self.kind!r}, "
                f"chain_id={self.chain_id}, iteration={self.iteration}, "
                f"at={self.at:.6f}, data={self.data!r})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.kind == other.kind
                and self.chain_id == other.chain_id
                and self.iteration == other.iteration
                and self.at == other.at
                and self.data == other.data)

    def to_dict(self) -> dict:
        # The envelope always wins: a payload key that collides with an
        # envelope field is preserved under a ``data_`` prefix instead of
        # silently overwriting the field (or being dropped).
        record = {
            "kind": self.kind,
            "chain_id": self.chain_id,
            "iteration": self.iteration,
            "at": round(self.at, 6),
        }
        for key, value in self.data.items():
            record[f"data_{key}" if key in _EVENT_ENVELOPE else key] = value
        return record


class _NullSpanScope:
    """Reusable no-op context: what :func:`span` returns when inactive."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SCOPE = _NullSpanScope()


class _ActivationScope:
    """Context manager binding a store as ambient without opening a span."""

    __slots__ = ("_telemetry", "_token")

    def __init__(self, telemetry: "Telemetry | None"):
        self._telemetry = telemetry

    def __enter__(self) -> "Telemetry | None":
        if self._telemetry is not None:
            self._token = _ACTIVE.set(self._telemetry)
        return self._telemetry

    def __exit__(self, *exc_info) -> bool:
        if self._telemetry is not None:
            _ACTIVE.reset(self._token)
        return False


class Telemetry:
    """One trace store: spans, flat events, and id allocation.

    A store is shared by everything observing one run — the
    ``ChainTracer`` compatibility facade wraps one, the serving pool and
    the agents emit into the same instance — and is fully thread-safe.
    """

    def __init__(self):
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        # Event storage is lazily materialized: hot emitters append raw
        # ``(kind, chain_id, iteration, at, data)`` tuples and the
        # :attr:`events` property converts them to :class:`TraceEvent`
        # in place on first read, so the recording path never pays for
        # object construction.
        self._events: list = []
        # itertools.count.__next__ is atomic under the GIL, so span ids
        # are allocated without taking the lock on the hot path.
        self._next_span_id = count(1).__next__
        self._trace_counter = 0

    # --- time and ids -------------------------------------------------------

    def now(self) -> float:
        """Seconds since this store was created (monotonic)."""
        return time.perf_counter() - self._origin

    def new_trace_id(self) -> int:
        with self._lock:
            self._trace_counter += 1
            return self._trace_counter

    def reserve_trace_id(self, trace_id: int) -> None:
        """Keep allocated trace ids ahead of an externally chosen one."""
        with self._lock:
            self._trace_counter = max(self._trace_counter, trace_id)

    # --- spans --------------------------------------------------------------

    def span(self, kind: str, *, trace_id: int | None = None,
             **attributes) -> Span:
        """Open a child of the current span (or a new root) on entry.

        ``trace_id`` pins a root span to an externally allocated id (the
        serving pool uses the request's chain id); children always
        inherit their parent's trace id.
        """
        parent = _CURRENT.get()
        if parent is not None and parent._telemetry is not self:
            parent = None  # never graft onto another store's tree
        if parent is not None:
            resolved_trace = parent.trace_id
            parent_id = parent.span_id
        else:
            parent_id = None
            with self._lock:
                if trace_id is not None:
                    resolved_trace = trace_id
                    self._trace_counter = max(self._trace_counter,
                                              trace_id)
                else:
                    self._trace_counter += 1
                    resolved_trace = self._trace_counter
        return Span(kind, resolved_trace, self._next_span_id(),
                    parent_id, _perf() - self._origin,
                    attributes, self, parent)

    def activate(self) -> _ActivationScope:
        """Bind this store as the ambient one without opening a span."""
        return _ActivationScope(self)

    # --- events -------------------------------------------------------------

    @property
    def events(self) -> list:
        """Every recorded :class:`TraceEvent`, in emission order.

        Raw tuples appended by the hot emit path are materialized in
        place on access; the same list object is always returned, so
        facade invariants like ``tracer.events is telemetry.events``
        hold.  In-place slot assignment is atomic under the GIL, and
        materialization is idempotent, so concurrent readers are safe.
        """
        records = self._events
        for index in range(len(records)):
            record = records[index]
            if record.__class__ is tuple:
                records[index] = TraceEvent(*record)
        return records

    def event(self, kind: str, chain_id: int, iteration: int = 0,
              **data) -> TraceEvent:
        """Record one flat event at the current offset."""
        event = TraceEvent(kind, chain_id, iteration,
                           _perf() - self._origin, data)
        self._events.append(event)
        return event

    def record_event(self, event: TraceEvent) -> None:
        # list.append is atomic under the GIL.
        self._events.append(event)

    # --- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The full trace: meta line, then spans, then events."""
        from repro.telemetry.export import trace_to_jsonl
        return trace_to_jsonl(self)

    def save(self, path: str | Path) -> Path:
        """Write the full trace (spans + events) as JSONL to ``path``."""
        path = Path(path)
        path.write_text(self.to_jsonl() + "\n", encoding="utf-8")
        return path

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans) + len(self._events)

    def cost_summary(self) -> dict:
        """Aggregate model cost over closed root spans (see cost module)."""
        from repro.telemetry.cost import cost_summary
        return cost_summary(self.spans)


# --- ambient helpers (the instrumentation surface) --------------------------


def current_telemetry() -> Telemetry | None:
    """The ambient store, or None when tracing is off in this context."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    """The innermost open span in this context, or None."""
    return _CURRENT.get()


def span(kind: str, *, trace_id: int | None = None, **attributes):
    """Open ``kind`` under the ambient store; a shared no-op when off.

    This is the one-liner every instrumented layer uses::

        with span("sql_parse") as s:
            ...                      # s is None when tracing is off
    """
    telemetry = _ACTIVE.get()
    if telemetry is None:
        return _NULL_SCOPE
    # Inlined copy of Telemetry.span: this helper runs on every
    # instrumented hot path, and going through the method would repack
    # ``attributes`` into a second dict and add a call frame per span.
    parent = _CURRENT.get()
    if parent is not None and parent._telemetry is not telemetry:
        parent = None  # never graft onto another store's tree
    if parent is not None:
        resolved_trace = parent.trace_id
        parent_id = parent.span_id
    else:
        parent_id = None
        with telemetry._lock:
            if trace_id is not None:
                resolved_trace = trace_id
                telemetry._trace_counter = max(telemetry._trace_counter,
                                               trace_id)
            else:
                telemetry._trace_counter += 1
                resolved_trace = telemetry._trace_counter
    return Span(kind, resolved_trace, telemetry._next_span_id(),
                parent_id, _perf() - telemetry._origin,
                attributes, telemetry, parent)


def activate(telemetry: Telemetry | None) -> _ActivationScope:
    """Bind ``telemetry`` as ambient for a block; no-op when ``None``.

    Passing ``None`` deliberately leaves any *existing* ambient store in
    place, so an uninstrumented call path nested under a traced one keeps
    tracing.
    """
    return _ActivationScope(telemetry)


def add_tokens(*, prompt: int = 0, completion: int = 0,
               calls: int = 0) -> None:
    """Charge cost to the innermost open span, if any."""
    current = _CURRENT.get()
    if current is not None:
        current.add_tokens(prompt=prompt, completion=completion,
                           calls=calls)


# json imported for re-export convenience of callers embedding traces.
_ = json
