"""AST node definitions for the native SQL engine.

Expressions and the single supported statement form (SELECT) are plain
frozen dataclasses; the evaluator dispatches on node type.  Every node can
render itself back to SQL text via ``to_sql()`` — used for default output
column names and for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "InList",
    "Between",
    "IsNull",
    "LikeOp",
    "CaseWhen",
    "Cast",
    "SelectItem",
    "OrderItem",
    "JoinClause",
    "SelectStatement",
]


class Expression:
    """Base class for expression nodes."""

    def to_sql(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


def _quote_ident(name: str) -> str:
    if name.isidentifier():
        return name
    return '"' + name.replace('"', '""') + '"'


def _quote_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


@dataclass(frozen=True)
class Literal(Expression):
    value: object  # int | float | str | bool | None

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return _quote_string(self.value)
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: str | None = None

    def to_sql(self) -> str:
        if self.table:
            return f"{_quote_ident(self.table)}.{_quote_ident(self.name)}"
        return _quote_ident(self.name)


@dataclass(frozen=True)
class Star(Expression):
    """``*`` — valid only inside COUNT(*) and as a bare select item."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # "-", "+", "NOT"
    operand: Expression

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}{self.operand.to_sql()}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # arithmetic, comparison, AND/OR, ||
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str                      # lower-cased
    args: tuple[Expression, ...]
    distinct: bool = False         # COUNT(DISTINCT x)

    def to_sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        args = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name.upper()}({prefix}{args})"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        items = ", ".join(item.to_sql() for item in self.items)
        return f"{self.operand.to_sql()} {op} ({items})"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (f"{self.operand.to_sql()} {op} "
                f"{self.low.to_sql()} AND {self.high.to_sql()}")


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {op}"


@dataclass(frozen=True)
class LikeOp(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand.to_sql()} {op} {self.pattern.to_sql()}"


@dataclass(frozen=True)
class CaseWhen(Expression):
    whens: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expression):
    operand: Expression
    target: str  # "INTEGER" | "REAL" | "TEXT"

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.target})"


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return self.expression.to_sql()

    def to_sql(self) -> str:
        text = self.expression.to_sql()
        if self.alias:
            text += f" AS {_quote_ident(self.alias)}"
        return text


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        return self.expression.to_sql() + (" DESC" if self.descending else "")


@dataclass(frozen=True)
class JoinClause:
    """One ``[INNER|LEFT] JOIN table [alias] ON expr`` clause."""

    table: str
    alias: str | None
    kind: str               # "inner" | "left"
    on: Expression

    def to_sql(self) -> str:
        head = "LEFT JOIN" if self.kind == "left" else "JOIN"
        text = f"{head} {_quote_ident(self.table)}"
        if self.alias:
            text += f" AS {_quote_ident(self.alias)}"
        return f"{text} ON {self.on.to_sql()}"


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: str
    table_alias: str | None = None
    joins: tuple[JoinClause, ...] = field(default=())
    where: Expression | None = None
    group_by: tuple[Expression, ...] = field(default=())
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    offset: int = 0
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append(f"FROM {_quote_ident(self.table)}")
        if self.table_alias:
            parts.append(f"AS {_quote_ident(self.table_alias)}")
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(
                expr.to_sql() for expr in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(
                item.to_sql() for item in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
            if self.offset:
                parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)
