"""Tests for the retry policy and the deadline-enforcing model wrapper."""

import pytest

from repro.errors import ServingTimeoutError
from repro.llm.base import Completion, LanguageModel
from repro.retry import ExponentialBackoff
from repro.serving import DeadlineModel, RetryPolicy


class InstantModel(LanguageModel):
    """Answers immediately; records how often it was called."""

    name = "instant"
    supports_logprobs = False

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, *, temperature=0.0, n=1):
        self.calls += 1
        return [Completion("ReAcTable: Answer: ```ok```.")] * n


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.timeout is None
        assert policy.max_attempts == 2
        assert policy.degrade_on_exhaustion

    def test_attempt_seeds_deterministic_and_distinct(self):
        policy = RetryPolicy(max_retries=2)
        seeds = [policy.attempt_seed(5, attempt) for attempt in range(3)]
        assert seeds[0] == 5
        assert len(set(seeds)) == 3
        assert seeds == [policy.attempt_seed(5, a) for a in range(3)]

    def test_deadline_from_timeout(self):
        now = [100.0]
        policy = RetryPolicy(timeout=2.0)
        assert policy.deadline(clock=lambda: now[0]) == 102.0
        assert RetryPolicy().deadline(clock=lambda: now[0]) is None

    def test_attempt_seeds_collision_free_across_requests(self):
        # A batch of adjacent request seeds retrying a few times must
        # never land two attempts on the same effective seed — that
        # would make two "independent" retries identical.
        policy = RetryPolicy(max_retries=3)
        seeds = [policy.attempt_seed(base, attempt)
                 for base in range(64)
                 for attempt in range(policy.max_attempts)]
        assert len(seeds) == len(set(seeds))

    def test_backoff_delay_none_is_zero(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.backoff_delay(5, 0) == 0.0
        assert policy.backoff_delay(5, 1) == 0.0

    def test_backoff_delay_deterministic_and_growing(self):
        backoff = ExponentialBackoff(base=0.1, factor=2.0,
                                     max_delay=10.0, jitter=0.0)
        policy = RetryPolicy(max_retries=3, backoff=backoff)
        delays = [policy.backoff_delay(5, a) for a in range(3)]
        assert delays == [0.1, 0.2, 0.4]
        assert delays == [policy.backoff_delay(5, a) for a in range(3)]

    def test_backoff_delay_jitter_seeded_by_request(self):
        backoff = ExponentialBackoff(base=0.1, jitter=0.5)
        policy = RetryPolicy(max_retries=2, backoff=backoff)
        # Same request seed → same delay; different seeds de-synchronise.
        assert policy.backoff_delay(5, 1) == policy.backoff_delay(5, 1)
        assert policy.backoff_delay(5, 1) != policy.backoff_delay(6, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)


class TestDeadlineModel:
    def test_passes_through_before_deadline(self):
        inner = InstantModel()
        now = [0.0]
        model = DeadlineModel(inner, 10.0, clock=lambda: now[0])
        assert model.complete("p")[0].text.endswith("```ok```.")
        assert inner.calls == 1

    def test_refuses_after_deadline(self):
        inner = InstantModel()
        now = [11.0]
        model = DeadlineModel(inner, 10.0, clock=lambda: now[0])
        with pytest.raises(ServingTimeoutError):
            model.complete("p")
        assert inner.calls == 0   # refused before calling the model

    def test_catches_slow_completion(self):
        inner = InstantModel()
        ticks = iter([9.0, 12.0])   # before-check passes, after-check fails
        model = DeadlineModel(inner, 10.0, clock=lambda: next(ticks))
        with pytest.raises(ServingTimeoutError):
            model.complete("p")
        assert inner.calls == 1

    def test_delegates_identity(self):
        inner = InstantModel()
        model = DeadlineModel(inner, 10.0)
        assert model.name == "instant"
        assert model.supports_logprobs is False

    def test_fork_keeps_deadline(self):
        inner = InstantModel()
        now = [11.0]
        fork = DeadlineModel(inner, 10.0, clock=lambda: now[0]).fork(7)
        with pytest.raises(ServingTimeoutError):
            fork.complete("p")
