"""Table 2 — TabFact accuracy: ReAcTable configurations vs baselines.

Paper shape: ReAcTable with s-vote (86.1%) beats the training-free
baselines (Binder 85.1, Dater 85.6) but stays below the best fine-tuned
model (PASTA 90.8); all voting schemes improve on no voting.
"""

from harness import accuracy_suite, benchmark_for

from repro.reporting import ComparisonTable, save_result
from repro.reporting.paper import TABLE2_TABFACT


def run_experiment() -> dict[str, float | None]:
    return accuracy_suite(benchmark_for("tabfact"))


def test_table02_tabfact(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = ComparisonTable("Table 2: TabFact accuracy")
    table.section("approaches requiring training (published)")
    for name, value in TABLE2_TABFACT["baselines_training"].items():
        table.row(name, value)
    table.section("approaches without training (published)")
    for name, value in TABLE2_TABFACT["baselines_no_training"].items():
        table.row(name, value)
    table.section("ReAcTable (this reproduction)")
    keys = {"ReAcTable": "greedy", "with s-vote": "s-vote",
            "with t-vote": "t-vote", "with e-vote": "e-vote"}
    for label, config in keys.items():
        table.row(label, TABLE2_TABFACT["reactable"][label],
                  measured[config])
    table.print()
    save_result("table02_tabfact", table.render())

    greedy, svote = measured["greedy"], measured["s-vote"]
    assert svote > greedy, "s-vote must improve on no voting"
    assert svote > TABLE2_TABFACT["baselines_no_training"]["Dater"] - 0.02, \
        "s-vote must be competitive with the training-free baselines"
    assert svote < TABLE2_TABFACT["baselines_training"]["PASTA"] + 0.02, \
        "the fine-tuned PASTA row should remain the ceiling"
