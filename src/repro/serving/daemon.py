"""The ``repro serve`` daemon: AsyncServer + a scrapeable control plane.

:class:`ServeDaemon` wraps a running
:class:`~repro.aio.server.AsyncServer` with a tiny stdlib-only
HTTP/1.1 endpoint (hand-rolled over ``asyncio.start_server`` — no
``http.server`` thread, so scrapes share the event loop with live
request traffic and always see the current in-flight state):

======================  =================================================
``GET /metrics``        Prometheus text exposition (v0.0.4) of the
                        serving registry, ``GLOBAL_REGISTRY``, and the
                        daemon's own gauges (in-flight, queue depth,
                        drain state, SLO budgets, sampler occupancy).
``GET /healthz``        liveness: 200 while running, 503 once draining.
``GET /readyz``         readiness: 200 only when new work would be
                        admitted — not draining, breaker not open,
                        fair queue not full.  JSON body lists checks.
``GET /slo``            per-tenant error budgets and burn-rate alert
                        states as JSON (:meth:`SLOTracker.snapshot`).
``GET /traces``         the tail sampler's kept traces as NDJSON
                        (``?limit=N`` for the newest N).
======================  =================================================

The daemon observes the server through the ``on_complete`` seam: every
settled primary request feeds the SLO tracker and the tail sampler,
with spans/events claimed incrementally from the shared telemetry
store (each completion only scans records appended since the last
claim, so observation stays O(new work), not O(trace history)).

Shutdown is a graceful drain: :meth:`stop` flips ``/healthz`` to 503
(load balancers stop sending), waits for in-flight and queued work to
finish (bounded by ``drain_timeout``), then closes the server and the
listener.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.telemetry.metrics import GLOBAL_REGISTRY, MetricsRegistry
from repro.telemetry.prom import render
from repro.telemetry.sampling import TailSampler
from repro.telemetry.slo import SLOConfig, SLOTracker

__all__ = ["ServeDaemon", "http_get"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 503: "Service Unavailable"}

#: Default ``/traces`` tail length when the query says nothing.
_DEFAULT_TRACE_LIMIT = 100


class ServeDaemon:
    """Expose one ``AsyncServer``'s observability over HTTP."""

    def __init__(self, server, *, host: str = "127.0.0.1", port: int = 0,
                 slo: SLOTracker | None = None,
                 sampler: TailSampler | None = None,
                 registries=()):
        self.server = server
        self.host = host
        self.port = port
        self.registry = MetricsRegistry()
        self.slo = slo if slo is not None else SLOTracker(SLOConfig())
        self.sampler = (sampler if sampler is not None
                        else TailSampler(registry=self.registry))
        self._extra_registries = tuple(registries)
        self._http: asyncio.AbstractServer | None = None
        self._draining = False
        # Incremental span/event claim state (see _claim_trace).
        self._span_cursor = 0
        self._event_cursor = 0
        self._pending_spans: dict[int, list[dict]] = {}
        self._pending_events: dict[int, list[dict]] = {}
        self._scrapes = self.registry.counter(
            "daemon.requests", "control-plane HTTP requests by endpoint")
        # Observe completions; chain any observer the caller installed.
        self._chained = getattr(server, "on_complete", None)
        server.on_complete = self._observe

    # --- lifecycle ----------------------------------------------------------

    async def start(self) -> "ServeDaemon":
        """Bind the control-plane listener (port 0 = ephemeral)."""
        self._http = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._http.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining

    async def stop(self, *, drain_timeout: float = 10.0) -> None:
        """Drain gracefully: stop admitting, finish work, close."""
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while ((self.server.active > 0 or len(self.server.queue) > 0)
               and loop.time() < deadline):
            await asyncio.sleep(0.005)
        await self.server.close()
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()

    async def __aenter__(self) -> "ServeDaemon":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # --- completion observation ---------------------------------------------

    def _observe(self, chain: int, request, response) -> None:
        slo_violation = (response.latency
                         > self.slo.config.latency_threshold)
        self.slo.record(request.tenant, outcome=response.outcome,
                        latency=response.latency)
        spans, events = self._claim_trace(chain)
        self.sampler.record_trace(
            chain, outcome=response.outcome, tenant=request.tenant,
            latency=response.latency, slo_violation=slo_violation,
            spans=spans, events=events, uid=response.uid)
        if self._chained is not None:
            self._chained(chain, request, response)

    def _claim_trace(self, chain: int) -> tuple[list[dict], list[dict]]:
        """Claim ``chain``'s spans/events from the shared stores.

        New records (any trace) are bucketed by trace id as they are
        discovered; completing a chain pops its bucket.  Cursors only
        move forward, so each span/event is converted exactly once.
        """
        telemetry = self.server.telemetry
        if telemetry is not None:
            spans = telemetry.spans
            while self._span_cursor < len(spans):
                span = spans[self._span_cursor]
                self._span_cursor += 1
                self._pending_spans.setdefault(
                    span.trace_id, []).append(span.to_dict())
        tracer = self.server.tracer
        if tracer is not None:
            events = tracer.telemetry.events
            while self._event_cursor < len(events):
                event = events[self._event_cursor]
                self._event_cursor += 1
                if event.chain_id == 0:
                    continue  # serverwide events (breaker...) — no trace
                self._pending_events.setdefault(
                    event.chain_id, []).append(event.to_dict())
        return (self._pending_spans.pop(chain, []),
                self._pending_events.pop(chain, []))

    # --- rendering ----------------------------------------------------------

    def render_metrics(self) -> str:
        """The ``/metrics`` payload: live gauges + every registry."""
        gauges = self.registry
        inflight = gauges.gauge(
            "daemon.inflight_requests", "requests currently running")
        inflight.set(float(self.server.active))
        queued = gauges.gauge(
            "daemon.queue_depth", "requests parked in the fair queue")
        queued.set(float(len(self.server.queue)))
        drain = gauges.gauge(
            "daemon.draining", "1 while a graceful drain is underway")
        drain.set(1.0 if self._draining else 0.0)
        self.slo.publish(gauges)
        self.sampler.publish(gauges)
        seen: list[MetricsRegistry] = []
        for registry in (self.server.metrics.registry, GLOBAL_REGISTRY,
                         *self._extra_registries, gauges):
            if all(registry is not other for other in seen):
                seen.append(registry)
        return render(seen)

    def readiness(self) -> dict:
        """The ``/readyz`` checks (all must hold to admit work)."""
        breaker = self.server.breaker
        queue_free = (self.server.max_queued is None
                      or len(self.server.queue) < self.server.max_queued)
        checks = {
            "not_draining": not self._draining,
            "breaker_closed": breaker is None or breaker.state != "open",
            "queue_has_room": queue_free,
        }
        return {"ready": all(checks.values()), "checks": checks}

    # --- HTTP plumbing ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            while True:  # drain headers; the control plane ignores them
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2:
                status, ctype, body = 400, "text/plain", "bad request\n"
            else:
                status, ctype, body = self._route(parts[0], parts[1])
            payload = body.encode("utf-8")
            head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, method: str, target: str) -> tuple[int, str, str]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if method != "GET":
            return 405, "text/plain", "only GET is supported\n"
        if path == "/metrics":
            self._scrapes.inc(endpoint="metrics")
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    self.render_metrics())
        if path == "/healthz":
            self._scrapes.inc(endpoint="healthz")
            if self._draining:
                return 503, "text/plain", "draining\n"
            return 200, "text/plain", "ok\n"
        if path == "/readyz":
            self._scrapes.inc(endpoint="readyz")
            state = self.readiness()
            body = json.dumps(state, sort_keys=True) + "\n"
            return (200 if state["ready"] else 503,
                    "application/json", body)
        if path == "/slo":
            self._scrapes.inc(endpoint="slo")
            body = json.dumps(self.slo.snapshot(), sort_keys=True) + "\n"
            return 200, "application/json", body
        if path == "/traces":
            self._scrapes.inc(endpoint="traces")
            limit = _DEFAULT_TRACE_LIMIT
            raw = parse_qs(split.query).get("limit", [None])[0]
            if raw is not None:
                try:
                    limit = max(0, int(raw))
                except ValueError:
                    return 400, "text/plain", f"bad limit {raw!r}\n"
            body = self.sampler.to_ndjson(limit)
            return (200, "application/x-ndjson",
                    body + "\n" if body else "")
        self._scrapes.inc(endpoint="other")
        return 404, "text/plain", f"no route for {path}\n"


async def http_get(host: str, port: int,
                   path: str) -> tuple[int, str, str]:
    """Minimal stdlib HTTP GET: ``(status, content_type, body)``.

    Used by the CLI's self-scrape and the tests — both run on the same
    event loop as the daemon, which is the point: a successful scrape
    mid-burst proves the control plane shares the loop with traffic.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    ctype = ""
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-type":
            ctype = value.strip()
    return status, ctype, body.decode("utf-8")
