"""Table 9 — TabFact with only the SQL executor.

Paper shape: the drop is much larger than on WikiTQ (83.1 → 75.4, i.e.
−7.7 points) — TabFact's verification claims depend more on string
reformatting, so losing Python hurts more.
"""

from harness import accuracy_suite, benchmark_for, sql_only_suite

from repro.reporting import ComparisonTable, save_result
from repro.reporting.paper import TABLE9_SQL_ONLY_TABFACT


def run_experiment():
    bench = benchmark_for("tabfact")
    full = accuracy_suite(bench, configurations=("greedy", "s-vote"))
    sql_only = sql_only_suite(bench)
    return full, sql_only


def test_table09_sql_only_tabfact(benchmark):
    full, sql_only = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)

    table = ComparisonTable(
        "Table 9: TabFact with only the SQL executor")
    table.section("ReAcTable (SQL + Python)")
    table.row("ReAcTable", TABLE9_SQL_ONLY_TABFACT["full"]["ReAcTable"],
              full["greedy"])
    table.row("with s-vote",
              TABLE9_SQL_ONLY_TABFACT["full"]["with s-vote"],
              full["s-vote"])
    table.section("ReAcTable (only the SQL executor)")
    keys = {"ReAcTable": "greedy", "with s-vote": "s-vote",
            "with t-vote": "t-vote", "with e-vote": "e-vote"}
    for label, config in keys.items():
        table.row(label, TABLE9_SQL_ONLY_TABFACT["sql_only"][label],
                  sql_only[config])
    table.print()
    save_result("table09_sql_only_tabfact", table.render())

    wikitq_gap_hint = 0.01
    gap = full["greedy"] - sql_only["greedy"]
    assert gap > wikitq_gap_hint, \
        "removing the Python executor must reduce TabFact accuracy"
    assert sql_only["s-vote"] < full["s-vote"], \
        "the gap must persist under s-vote"
