"""Cross-strategy evaluation matrix: strategies × suites, plus ensemble.

Not a paper experiment — this measures the strategy layer
(``repro.strategies``): every registered reasoning strategy, and the
heterogeneous ensemble voting across all of them, over the seeded WikiTQ
and TabFact suites.  Shape contracts:

* the registry exposes at least four strategies (react, cot,
  chain-of-table, commented-code);
* react — the paper's method, grounded on intermediate tables — beats
  the one-shot CoT program on WikiTQ (the Table 4 mechanism);
* the ensemble row matches or beats the best single strategy on at
  least one suite: approach diversity is a second ensembling axis, and
  majority across approaches votes down each one's idiosyncratic
  failures.

The rendered matrix is persisted to ``results/strategy_matrix.txt``
(also produced by ``repro bench strategies``).
"""

from harness import scale

from repro.reporting import save_result
from repro.reporting.strategy_matrix import (
    ENSEMBLE_ROW,
    best_single,
    render_matrix,
    run_matrix,
)

#: Matches the ``repro bench strategies`` default at the stock scale, so
#: the committed artifact and the bench regeneration agree bit-for-bit.
SIZE = max(40, scale(240) // 4)


def run_experiment() -> dict[str, dict[str, float]]:
    return run_matrix(size=SIZE)


def test_strategy_matrix(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_matrix(results, size=SIZE)
    print("\n" + text + "\n")
    save_result("strategy_matrix", text)

    for dataset, cells in results.items():
        # >= 4 single strategies + the ensemble row, all of them live.
        assert len(cells) >= 5, dataset
        assert all(accuracy > 0.0 for accuracy in cells.values()), dataset
    # Grounding on intermediate tables must beat the one-shot program
    # where answers are open-ended (TabFact's binary verdicts give CoT
    # a coin-flip floor, so the contract is pinned on WikiTQ).
    assert results["wikitq"]["react"] > results["wikitq"]["cot"]
    # Approach diversity must pay: ensemble >= best single somewhere.
    assert any(cells[ENSEMBLE_ROW] >= best_single(cells)[1]
               for cells in results.values()), results
