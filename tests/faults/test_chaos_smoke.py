"""Tier-1 chaos smoke test: the recovery stack must terminate everything.

A small benchmark is served through the worker pool under a heavy (20%)
per-call fault rate.  The acceptance bar of the robustness story:

* **every** request terminates with a classified outcome — faults never
  escape the degradation ladder as unhandled exceptions;
* the zero-rate injected run is bit-identical to the same evaluation
  without the fault wrappers installed.
"""

from repro.faults import FaultConfig, FaultyAgentSpec
from repro.serving import (
    OUTCOMES,
    BatchEvaluator,
    BreakerConfig,
    RetryPolicy,
    ServingMetrics,
)


def evaluate(benchmark, spec, **kwargs):
    evaluator = BatchEvaluator(
        spec, workers=4, seed=1,
        policy=RetryPolicy(max_retries=2),
        breakers=BreakerConfig(failure_threshold=5, cooldown=0.05),
        **kwargs)
    report = evaluator.evaluate(benchmark, limit=15)
    return report, evaluator.last_responses


def test_heavy_faults_all_requests_terminate_classified(wikitq_small):
    from repro.serving import AgentSpec

    metrics = ServingMetrics()
    spec = FaultyAgentSpec(
        AgentSpec(bank=wikitq_small.bank),
        FaultConfig.uniform(0.2, latency_seconds=0.001),
        model_retries=2,
        on_fault=lambda site, kind, index: metrics.record_fault(site,
                                                                kind))
    report, responses = evaluate(wikitq_small, spec, metrics=metrics)
    assert len(responses) == 15
    assert all(response.outcome in OUTCOMES for response in responses)
    assert metrics.snapshot()["faults_injected"] > 0
    # The ladder resolves every request: an answer (possibly degraded)
    # or a classified terminal error — never a hang or an escape.
    assert report.num_questions == 15


def test_rate_zero_bit_identical_to_uninjected(wikitq_small):
    from repro.serving import AgentSpec

    plain = AgentSpec(bank=wikitq_small.bank)
    wrapped = FaultyAgentSpec(plain, FaultConfig.uniform(0.0),
                              model_retries=2)
    plain_report, plain_responses = evaluate(wikitq_small, plain)
    faulty_report, faulty_responses = evaluate(wikitq_small, wrapped)
    assert plain_report == faulty_report
    assert ([(r.uid, r.answer, r.iterations, r.forced)
             for r in plain_responses]
            == [(r.uid, r.answer, r.iterations, r.forced)
                for r in faulty_responses])
