"""Seeded differential suite: engine-backed drivers vs the legacy loop.

The acceptance bar for the sans-IO refactor: across hundreds of seeded
benchmark questions, the refactored drivers must be **bit-identical** to
the vendored pre-refactor implementations (``tests/engine/legacy.py``) —
same answers, same transcripts (actions, table fingerprints, handling
notes), same handling events, same forced flags, same vote tallies in
the same insertion order.

Each side gets its own freshly-seeded :class:`SimulatedTQAModel`;
because the model's sampled draws depend on the *sequence* of calls it
serves, tallies matching across 200+ questions means the two
generations issue exactly the same calls in exactly the same order.
"""

import pytest

from repro.core.agent import ReActTableAgent
from repro.core.voting import (
    ExecutionBasedVoting,
    SimpleMajorityVoting,
    TreeExplorationVoting,
)
from repro.datasets import generate_dataset
from repro.llm import SimulatedTQAModel, get_profile
from repro.table.compare import table_fingerprint

from tests.engine.legacy import (
    LegacyAgent,
    LegacyExecutionBasedVoting,
    LegacySimpleMajorityVoting,
    LegacyTreeExplorationVoting,
)

#: ≥200 questions, per the acceptance criteria.
SIZE = 210
MODEL_SEED = 5


@pytest.fixture(scope="module")
def wikitq_diff():
    return generate_dataset("wikitq", size=SIZE, seed=11)


def fresh_model(bench):
    return SimulatedTQAModel(bench.bank, get_profile("codex-sim"),
                             seed=MODEL_SEED)


def transcript_key(transcript):
    """A bit-exact serialization of a chain transcript."""
    steps = []
    for step in transcript.steps:
        steps.append((
            step.action.kind,
            step.action.payload,
            table_fingerprint(step.table) if step.table is not None
            else None,
            step.table.name if step.table is not None else None,
            tuple(step.handling_notes),
        ))
    return (transcript.question, table_fingerprint(transcript.t0),
            tuple(steps))


def agent_key(result):
    return (result.answer, result.iterations, result.forced,
            result.handling_events, transcript_key(result.transcript))


def voting_key(result):
    # dict comparison is order-insensitive; compare insertion order too,
    # since the tally order is part of the tie-breaking contract.
    return (result.answer, result.votes, list(result.votes.items()),
            result.num_chains, result.iterations)


class TestAgentDifferential:
    def test_greedy_agent_bit_identical(self, wikitq_diff):
        legacy_model = fresh_model(wikitq_diff)
        engine_model = fresh_model(wikitq_diff)
        legacy = LegacyAgent(legacy_model)
        current = ReActTableAgent(engine_model)
        for example in wikitq_diff.examples:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert agent_key(new) == agent_key(old), example.question

    def test_iteration_capped_agent_bit_identical(self, wikitq_diff):
        # max_iterations=1 exercises the forcing ladder on every chain.
        legacy = LegacyAgent(fresh_model(wikitq_diff), max_iterations=1)
        current = ReActTableAgent(fresh_model(wikitq_diff), max_iterations=1)
        for example in wikitq_diff.examples[:60]:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert agent_key(new) == agent_key(old), example.question
            assert new.forced

    def test_sampled_agent_bit_identical(self, wikitq_diff):
        # temperature > 0 consumes model draws: matching across the whole
        # run proves the call sequences are identical, not just the logic.
        legacy = LegacyAgent(fresh_model(wikitq_diff), temperature=0.6)
        current = ReActTableAgent(fresh_model(wikitq_diff), temperature=0.6)
        for example in wikitq_diff.examples:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert agent_key(new) == agent_key(old), example.question


class TestVotingDifferential:
    def test_simple_majority_bit_identical(self, wikitq_diff):
        legacy = LegacySimpleMajorityVoting(fresh_model(wikitq_diff), n=3)
        current = SimpleMajorityVoting(fresh_model(wikitq_diff), n=3)
        for example in wikitq_diff.examples:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert voting_key(new) == voting_key(old), example.question

    def test_tree_exploration_bit_identical(self, wikitq_diff):
        legacy = LegacyTreeExplorationVoting(fresh_model(wikitq_diff), n=3)
        current = TreeExplorationVoting(fresh_model(wikitq_diff), n=3)
        for example in wikitq_diff.examples:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert voting_key(new) == voting_key(old), example.question

    def test_tree_exploration_capped_bit_identical(self, wikitq_diff):
        # Tight branch/depth budgets hit the force-answer and pruning
        # paths constantly.
        legacy = LegacyTreeExplorationVoting(
            fresh_model(wikitq_diff), n=3, max_branches=2, max_depth=2)
        current = TreeExplorationVoting(
            fresh_model(wikitq_diff), n=3, max_branches=2, max_depth=2)
        for example in wikitq_diff.examples[:60]:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert voting_key(new) == voting_key(old), example.question

    def test_execution_based_bit_identical(self, wikitq_diff):
        legacy = LegacyExecutionBasedVoting(fresh_model(wikitq_diff), n=3)
        current = ExecutionBasedVoting(fresh_model(wikitq_diff), n=3)
        for example in wikitq_diff.examples:
            old = legacy.run(example.table, example.question)
            new = current.run(example.table, example.question)
            assert voting_key(new) == voting_key(old), example.question
