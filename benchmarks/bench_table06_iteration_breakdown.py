"""Table 6 — WikiTQ accuracy broken down by iterations used.

Paper shape: accuracy peaks for questions answered in exactly two
iterations (72.3%) and declines as more iterations are needed — questions
that take longer are intrinsically harder.
"""

from harness import benchmark_for, model_for

from repro.core import SimpleMajorityVoting
from repro.evalkit import evaluate_agent
from repro.reporting import ComparisonTable, save_result
from repro.reporting.paper import TABLE6_ITERATION_BREAKDOWN


def run_experiment():
    bench = benchmark_for("wikitq")
    agent = SimpleMajorityVoting(model_for(bench), n=5)
    report = evaluate_agent(agent, bench)
    return report.iteration_accuracy(), report.iteration_histogram


def test_table06_iteration_breakdown(benchmark):
    accuracy, histogram = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)

    table = ComparisonTable(
        "Table 6: WikiTQ accuracy by iteration count (s-vote)")
    for iterations, (paper_acc, paper_n) in \
            TABLE6_ITERATION_BREAKDOWN.items():
        label = (f"iterations = {iterations} "
                 f"(paper n={paper_n}, ours n={histogram.get(iterations, 0)})")
        table.row(label, paper_acc, accuracy.get(iterations))
    table.print()
    save_result("table06_iteration_breakdown", table.render())

    assert 2 in accuracy, "two-iteration questions must exist"
    # The dominant two-iteration bucket outperforms the aggregate of the
    # late (3+) buckets; individual late buckets are tiny and noisy at
    # bench scale, so they are pooled before comparing.
    late_total = sum(histogram.get(k, 0) for k in histogram if k >= 3)
    late_correct = sum(
        round(accuracy.get(k, 0) * histogram.get(k, 0))
        for k in histogram if k >= 3)
    if late_total >= 10:
        late_accuracy = late_correct / late_total
        assert accuracy[2] > late_accuracy - 0.03, \
            "accuracy must decline beyond two iterations"
