"""Command-line interface: ``python -m repro`` / ``reactable-repro``.

Subcommands:

* ``ask`` — answer one natural-language question over a CSV table with a
  scripted demo chain (or over a generated benchmark question).
* ``demo`` — run the paper's Figure 1 running example end to end and print
  the full transcript.
* ``generate`` — emit a synthetic benchmark as JSON lines.
* ``evaluate`` — run one configuration over a benchmark and report
  accuracy plus the iteration histogram.
* ``batch`` — the same evaluation through the concurrent serving layer
  (worker pool + answer cache), with serving metrics.  ``--strategy``
  (or ``REPRO_STRATEGY``) picks any registered reasoning strategy or an
  ``ensemble:a+b+c`` heterogeneous vote.
* ``bench strategies`` — the cross-strategy evaluation matrix: every
  registered strategy plus the heterogeneous ensemble over seeded
  WikiTQ/TabFact suites, written to ``results/strategy_matrix.txt``.
* ``chaos`` — sweep deterministic fault-injection rates over a benchmark
  through the hardened serving stack and report the degradation curve
  (accuracy, answer rate, classified outcomes, breaker/retry activity).
* ``perf`` — the performance-layer smoke: optimisations disabled must
  produce identical results (compiled vs interpreted SQL, caches on vs
  off); ``--timings`` additionally runs the benchmark regression gate.
* ``trace`` — inspect a telemetry trace file written by ``batch``,
  ``chaos``, or ``analyze``: ``summary`` (per-request span depth,
  per-stage wall time, token totals), ``critical-path``, ``flame``
  (text flamegraph), and ``export --format chrome`` (Perfetto /
  ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import ReActTableAgent, make_voter
from repro.datasets import generate_dataset
from repro.evalkit import evaluate_agent
from repro.executors import default_registry, sql_only_registry
from repro.llm import SimulatedTQAModel, get_profile
from repro.table import io as table_io


def _cmd_demo(args) -> int:
    from repro.table import DataFrame

    table = DataFrame({
        "Rank": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        "Cyclist": [
            "Alejandro Valverde (ESP)", "Alexandr Kolobnev (RUS)",
            "Davide Rebellin (ITA)", "Paolo Bettini (ITA)",
            "Franco Pellizotti (ITA)", "Denis Menchov (RUS)",
            "Samuel Sanchez (ESP)", "Stephane Goubert (FRA)",
            "Haimar Zubeldia (ESP)", "David Moncoutie (FRA)",
        ],
        "Team": ["Caisse d'Epargne", "Team CSC Saxo Bank", "Gerolsteiner",
                 "Quick Step", "Liquigas", "Rabobank", "Euskaltel",
                 "AG2R", "Euskaltel", "Cofidis"],
        "Points": [40, 30, 25, 20, 15, 11, 7, 5, 3, 1],
    }, name="T0")
    question = "which country had the most cyclists finish in the top 10?"

    # Build a tiny bank holding just this question's gold plan.
    from repro.datasets.spec import QuestionBank, TQAExample
    from repro.plans import (AnswerStep, ExtractStep, FilterStep,
                             GroupCountStep, Plan)

    plan = Plan([
        FilterStep(condition="Rank <= 10", columns=("Cyclist",),
                   reads=("Rank",)),
        ExtractStep(source="Cyclist", target="Country",
                    pattern=r"\((\w+)\)"),
        GroupCountStep(key="Country", limit=1),
        AnswerStep(kind="cell"),
    ])
    example = TQAExample(uid="demo-0", dataset="wikitq", table=table,
                         question=question, plan=plan,
                         gold_answer=plan.execute(table).answer,
                         difficulty=0.05)
    bank = QuestionBank()
    bank.register(example)

    # The simulated model errs at a realistic rate; for a *demo* we want
    # the happy path, so scan model seeds until the chain solves cleanly.
    result = None
    for seed in range(64):
        model = SimulatedTQAModel(bank, get_profile(args.model),
                                  seed=seed)
        agent = ReActTableAgent(model)
        candidate = agent.run(table, question)
        if (candidate.answer == example.gold_answer
                and not candidate.forced
                and candidate.iterations == example.plan.num_iterations):
            result = candidate
            break
        result = result or candidate
    print(f"Question: {question}\n")
    for step in result.transcript.steps:
        print(f"  {step.action.kind.upper()}: {step.action.payload}")
        if step.table is not None:
            print("  ->", step.table.to_rows())
    print(f"\nAnswer: {result.answer_text}  "
          f"(gold: {'|'.join(example.gold_answer)}; "
          f"{result.iterations} iterations)")
    return 0


def _cmd_generate(args) -> int:
    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    for example in benchmark.examples:
        record = {
            "uid": example.uid,
            "question": example.question,
            "answer": example.gold_answer,
            "iterations": example.num_iterations,
            "table": json.loads(table_io.to_json(example.table)),
        }
        print(json.dumps(record, ensure_ascii=False))
    return 0


def _cmd_evaluate(args) -> int:
    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    model = SimulatedTQAModel(benchmark.bank, get_profile(args.model),
                              seed=args.model_seed)
    registry = (sql_only_registry() if args.sql_only
                else default_registry(sql_backend=args.sql_backend))
    kwargs = {"registry": registry}
    if args.voting != "none":
        kwargs["n"] = args.samples
    voter = make_voter(args.voting, model, **kwargs)
    report = evaluate_agent(voter, benchmark)
    print(f"dataset={args.dataset} model={model.name} "
          f"voting={args.voting} n={len(benchmark)}")
    print(f"accuracy: {report.accuracy:.3f}")
    print(f"iteration histogram: {dict(sorted(report.iteration_histogram.items()))}")
    if args.dataset == "fetaqa":
        rouge = report.rouge()
        print("ROUGE-1/2/L: "
              + " / ".join(f"{rouge[k]:.3f}"
                           for k in ("rouge1", "rouge2", "rougeL")))
    return 0


def _resolve_strategy(value: str | None) -> str:
    """The effective ``--strategy`` value, validated against the registry.

    Precedence: explicit flag, then ``REPRO_STRATEGY``, then the react
    default.  Raises :class:`repro.errors.StrategyError` for unknown
    names and malformed ensemble specs, so callers can turn it into a
    clean usage error instead of a traceback.
    """
    from repro.strategies import (get_strategy, is_ensemble_spec,
                                  parse_ensemble_spec)

    strategy = value or os.environ.get("REPRO_STRATEGY") or "react"
    if is_ensemble_spec(strategy):
        parse_ensemble_spec(strategy)
    else:
        get_strategy(strategy)
    return strategy


def _cmd_batch(args) -> int:
    from repro.errors import StrategyError
    from repro.serving import (AgentSpec, AnswerCache, BatchEvaluator,
                               RetryPolicy, ServingMetrics)
    from repro.tracing import ChainTracer

    try:
        strategy = _resolve_strategy(args.strategy)
    except StrategyError as exc:
        print(f"bad --strategy value: {exc}", file=sys.stderr)
        return 2
    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    spec = AgentSpec(bank=benchmark.bank, profile=args.model,
                     voting=args.voting, samples=args.samples,
                     sql_only=args.sql_only, sql_backend=args.sql_backend,
                     strategy=strategy)
    cache = (AnswerCache(args.cache_size) if args.cache_size > 0
             else None)
    policy = RetryPolicy(timeout=args.timeout, max_retries=args.retries)
    metrics = ServingMetrics()
    tracer = ChainTracer() if args.trace else None
    # --async (or REPRO_ASYNC_SERVER=1) swaps the thread pool for the
    # asyncio serving core: same ladder, coroutine concurrency.
    use_async = args.use_async or (
        os.environ.get("REPRO_ASYNC_SERVER", "0") == "1")
    # --reflect (or REPRO_REFLECT=1) arms the reflexion rung; None
    # leaves the decision to the serving layer's env switch.
    reflect = True if args.reflect else None
    if use_async:
        from repro.aio import AsyncBatchEvaluator

        evaluator = AsyncBatchEvaluator(
            spec, max_inflight=args.max_inflight, seed=args.model_seed,
            cache=cache, policy=policy, metrics=metrics, tracer=tracer,
            reflect=reflect)
        concurrency = f"async max_inflight={args.max_inflight}"
    else:
        evaluator = BatchEvaluator(spec, workers=args.workers,
                                   seed=args.model_seed, cache=cache,
                                   policy=policy, metrics=metrics,
                                   tracer=tracer,
                                   batch_scheduler=(
                                       True if args.batch_scheduler
                                       else None),
                                   reflect=reflect)
        concurrency = f"workers={args.workers}"
    report = evaluator.evaluate(benchmark)
    snapshot = metrics.snapshot()
    print(f"dataset={args.dataset} model={args.model} "
          f"voting={args.voting} strategy={strategy} n={len(benchmark)} "
          f"{concurrency}")
    print(f"accuracy: {report.accuracy:.3f}")
    print(f"iteration histogram: {dict(sorted(report.iteration_histogram.items()))}")
    if args.dataset == "fetaqa":
        rouge = report.rouge()
        print("ROUGE-1/2/L: "
              + " / ".join(f"{rouge[k]:.3f}"
                           for k in ("rouge1", "rouge2", "rougeL")))
    print(f"throughput: {snapshot['throughput_qps']:.2f} questions/s  "
          f"p50/p95 latency: {snapshot['latency_p50']:.4f}s"
          f"/{snapshot['latency_p95']:.4f}s")
    print(f"cache hit rate: {snapshot['cache_hit_rate']:.1%}  "
          f"timeouts: {snapshot['timeouts']}  "
          f"retries: {snapshot['retries']}  "
          f"forced answers: {snapshot['forced_answers']}")
    if reflect or snapshot["reflections"]:
        outcomes = snapshot["outcomes"]
        print(f"reflections: {snapshot['reflections']}  "
              f"reflected outcomes: {outcomes.get('reflected', 0)}")
    if args.metrics_out:
        path = metrics.save(args.metrics_out)
        print(f"metrics written: {path}")
    if tracer is not None:
        path = tracer.telemetry.save(args.trace)
        print(f"trace written: {path} "
              f"({len(tracer.telemetry.spans)} spans, "
              f"{len(tracer)} events)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.aio import AsyncServer
    from repro.serving import (AgentSpec, AnswerCache, BreakerConfig,
                               RetryPolicy, ServingMetrics, TQARequest)
    from repro.serving.daemon import ServeDaemon, http_get
    from repro.telemetry import SLOConfig, SLOTracker, TailSampler
    from repro.tracing import ChainTracer

    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    spec = AgentSpec(bank=benchmark.bank, profile=args.model,
                     voting=args.voting, samples=args.samples,
                     sql_only=args.sql_only, sql_backend=args.sql_backend)
    tenants = [name for name in args.tenants.split(",") if name]

    async def run() -> int:
        server = AsyncServer(
            spec, max_inflight=args.max_inflight,
            max_queued=args.max_queued,
            cache=(AnswerCache(args.cache_size)
                   if args.cache_size > 0 else None),
            policy=RetryPolicy(timeout=args.timeout,
                               max_retries=args.retries),
            metrics=ServingMetrics(), tracer=ChainTracer(),
            breakers=(BreakerConfig(
                failure_threshold=args.breaker_threshold)
                if args.breaker_threshold > 0 else None))
        slo = SLOTracker(SLOConfig(
            availability_target=args.slo_availability,
            latency_target=args.slo_latency_target,
            latency_threshold=args.slo_latency,
            budget_window=args.slo_window))
        sampler = TailSampler(ok_rate=args.sample_rate,
                              capacity=args.trace_capacity,
                              seed=args.seed)
        daemon = ServeDaemon(server, host=args.host, port=args.port,
                             slo=slo, sampler=sampler)
        await daemon.start()
        host, port = daemon.address
        print(f"serving on http://{host}:{port}  "
              f"(/metrics /healthz /readyz /slo /traces)")
        try:
            if args.requests > 0:
                examples = benchmark.examples
                responses = await asyncio.gather(*(
                    asyncio.ensure_future(server.answer(TQARequest(
                        table=examples[i % len(examples)].table,
                        question=examples[i % len(examples)].question,
                        seed=i,
                        uid=f"{examples[i % len(examples)].uid}#{i}",
                        tenant=tenants[i % len(tenants)])))
                    for i in range(args.requests)))
                outcomes: dict[str, int] = {}
                for response in responses:
                    outcomes[response.outcome] = (
                        outcomes.get(response.outcome, 0) + 1)
                snapshot = server.metrics.snapshot()
                print(f"replayed {len(responses)} requests over "
                      f"{len(tenants)} tenants  outcomes: "
                      f"{dict(sorted(outcomes.items()))}")
                print(f"p50/p95 latency: "
                      f"{snapshot['latency_p50']:.4f}s"
                      f"/{snapshot['latency_p95']:.4f}s  "
                      f"cache hit rate: "
                      f"{snapshot['cache_hit_rate']:.1%}")
                if args.scrape:
                    _, _, text = await http_get(host, port, "/metrics")
                    shown = [line for line in text.splitlines()
                             if line.startswith(("serving_outcomes",
                                                 "daemon_", "slo_",
                                                 "sampling_"))]
                    print("--- /metrics (excerpt) ---")
                    print("\n".join(shown[:20]))
                    _, _, slo_text = await http_get(host, port, "/slo")
                    print("--- /slo ---")
                    print(slo_text.rstrip())
            else:
                print("press Ctrl-C to drain and stop")
                while True:
                    await asyncio.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            await daemon.stop()
            print("drained and stopped")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultConfig, FaultyAgentSpec
    from repro.retry import ExponentialBackoff
    from repro.serving import (AgentSpec, BatchEvaluator, BreakerConfig,
                               OUTCOMES, RetryPolicy, ServingMetrics)
    from repro.tracing import ChainTracer

    try:
        rates = [float(rate) for rate in args.rates.split(",") if rate]
    except ValueError:
        print(f"bad --rates value {args.rates!r} "
              f"(expected e.g. 0,0.05,0.2)", file=sys.stderr)
        return 2
    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    spec = AgentSpec(bank=benchmark.bank, profile=args.model,
                     voting=args.voting, samples=args.samples,
                     sql_only=args.sql_only, sql_backend=args.sql_backend)
    backoff = (ExponentialBackoff(base=args.backoff)
               if args.backoff > 0 else None)
    breakers = (BreakerConfig(failure_threshold=args.breaker_threshold,
                              cooldown=args.breaker_cooldown)
                if args.breaker_threshold > 0 else None)
    policy = RetryPolicy(timeout=args.timeout, max_retries=args.retries,
                         backoff=backoff)
    tracer = ChainTracer() if args.trace else None
    # --async runs the sweep through the asyncio serving core instead of
    # the thread pool — the rate-0 verification then proves *that*
    # ladder's fault-path passthrough is bit-identical too.
    use_async = args.use_async or (
        os.environ.get("REPRO_ASYNC_SERVER", "0") == "1")

    def build_evaluator(eval_spec, eval_metrics=None, eval_tracer=None):
        if use_async:
            from repro.aio import AsyncBatchEvaluator

            return AsyncBatchEvaluator(
                eval_spec, max_inflight=args.workers,
                seed=args.model_seed, policy=policy,
                metrics=eval_metrics, tracer=eval_tracer,
                breakers=breakers)
        return BatchEvaluator(eval_spec, workers=args.workers,
                              seed=args.model_seed, policy=policy,
                              metrics=eval_metrics, tracer=eval_tracer,
                              breakers=breakers)

    concurrency = (f"async max_inflight={args.workers}" if use_async
                   else f"workers={args.workers}")
    print(f"dataset={args.dataset} model={args.model} n={len(benchmark)} "
          f"{concurrency} retries={args.retries} "
          f"model_retries={args.model_retries}")
    header = (f"{'rate':>6}  {'accuracy':>8}  {'answered':>8}  "
              f"{'degraded':>8}  {'errors':>6}  {'faults':>6}  "
              f"{'retries':>7}  {'breaker':>7}")
    print(header)
    print("-" * len(header))
    last_metrics = None
    exit_code = 0
    for rate in rates:
        metrics = ServingMetrics()

        def on_fault(site, kind, index, _metrics=metrics):
            _metrics.record_fault(site, kind)
            if tracer is not None:
                tracer.emit_for(0, "fault", 0, site=site, kind=kind,
                                index=index)

        faulty = FaultyAgentSpec(spec, FaultConfig.uniform(
                                     rate, latency_seconds=args.fault_latency),
                                 model_retries=args.model_retries,
                                 backoff=backoff, on_fault=on_fault)
        evaluator = build_evaluator(faulty, eval_metrics=metrics,
                                    eval_tracer=tracer)
        report = evaluator.evaluate(benchmark)
        responses = evaluator.last_responses
        unclassified = [r.uid for r in responses
                        if r.outcome not in OUTCOMES]
        answered = sum(1 for r in responses
                       if not r.outcome.startswith("error"))
        snapshot = metrics.snapshot()
        print(f"{rate:>6.2f}  {report.accuracy:>8.3f}  "
              f"{answered / len(responses):>8.1%}  "
              f"{snapshot['degraded']:>8}  {snapshot['errors']:>6}  "
              f"{snapshot['faults_injected']:>6}  "
              f"{snapshot['retries']:>7}  "
              f"{snapshot['breaker_opened']:>7}")
        if unclassified:
            print(f"  !! {len(unclassified)} responses without a "
                  f"classified outcome: {unclassified[:5]}")
            exit_code = 1
        if rate == 0.0 and args.verify_passthrough:
            plain = build_evaluator(spec)
            plain_report = plain.evaluate(benchmark)
            identical = (
                plain_report == report
                and [(r.uid, r.answer, r.iterations, r.forced)
                     for r in plain.last_responses]
                == [(r.uid, r.answer, r.iterations, r.forced)
                    for r in responses])
            print(f"  0% fault run bit-identical to uninjected run: "
                  f"{identical}")
            if not identical:
                exit_code = 1
        last_metrics = metrics
    if args.metrics_out and last_metrics is not None:
        path = last_metrics.save(args.metrics_out)
        print(f"metrics written (last rate): {path}")
    if tracer is not None:
        path = tracer.telemetry.save(args.trace)
        print(f"trace written: {path} "
              f"({len(tracer.telemetry.spans)} spans, "
              f"{len(tracer)} events)")
    return exit_code


def _cmd_bench(args) -> int:
    from repro.reporting import save_result
    from repro.reporting.strategy_matrix import render_matrix, run_matrix

    if args.bench_command == "strategies":
        results = run_matrix(size=args.size, seed=args.seed,
                             model_seed=args.model_seed,
                             profile=args.model,
                             use_scheduler=args.batch_scheduler)
        text = render_matrix(results, size=args.size, profile=args.model)
        print(text)
        if not args.no_save:
            path = save_result("strategy_matrix", text)
            print(f"\nmatrix written: {path}")
    return 0


def _cmd_perf(args) -> int:
    from repro.perf import gate as perf_gate

    gate_args: list[str] = []
    if args.case:
        gate_args.extend(["--case", args.case])
    elif not args.timings:
        gate_args.append("--check-only")
    if args.update_baseline:
        gate_args.append("--update-baseline")
    if args.baseline:
        gate_args.extend(["--baseline", args.baseline])
    return perf_gate.main(gate_args)


def _cmd_analyze(args) -> int:
    from repro.reporting.analysis import analyze_agent
    from repro.tracing import ChainTracer

    benchmark = generate_dataset(args.dataset, size=args.size,
                                 seed=args.seed)
    model = SimulatedTQAModel(benchmark.bank, get_profile(args.model),
                              seed=args.model_seed)
    tracer = ChainTracer() if args.trace else None
    agent = ReActTableAgent(model, tracer=tracer)
    report = analyze_agent(agent, benchmark)
    print(report.render())
    if tracer is not None:
        from repro.telemetry import TraceAnalyzer, load_trace

        path = tracer.telemetry.save(args.trace)
        print(f"\ntrace written: {path} "
              f"({len(tracer.telemetry.spans)} spans, "
              f"{len(tracer)} events)")
        # The same per-stage view `repro trace summary <path>` gives.
        analyzer = TraceAnalyzer(load_trace(path))
        summary = analyzer.summary()
        print(f"traced: {summary['total_requests']} chains, "
              f"{summary['prompt_tokens']} prompt + "
              f"{summary['completion_tokens']} completion tokens over "
              f"{summary['model_calls']} model calls")
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import (TraceAnalyzer, load_trace,
                                 write_chrome_trace)

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load trace {args.path!r}: {exc}", file=sys.stderr)
        return 2
    analyzer = TraceAnalyzer(trace)
    if args.trace_command == "summary":
        print(analyzer.summary_text())
    elif args.trace_command == "critical-path":
        print(analyzer.critical_path_text())
    elif args.trace_command == "flame":
        print(analyzer.flamegraph_text(width=args.width))
    elif args.trace_command == "export":
        out = args.output
        if args.format == "chrome":
            out = out or "trace.chrome.json"
            path = write_chrome_trace(trace, out)
            print(f"chrome trace written: {path} "
                  f"(open in Perfetto / chrome://tracing)")
        else:
            out = out or "trace.copy.jsonl"
            from pathlib import Path
            from shutil import copyfile
            copyfile(args.path, out)
            print(f"trace copied: {Path(out)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reactable-repro",
        description="ReAcTable (VLDB 2024) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the Figure 1 running example")
    demo.add_argument("--model", default="codex-sim")
    demo.set_defaults(func=_cmd_demo)

    gen = sub.add_parser("generate", help="emit a benchmark as JSONL")
    gen.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    gen.add_argument("--size", type=int, default=100)
    gen.add_argument("--seed", type=int, default=17)
    gen.set_defaults(func=_cmd_generate)

    ev = sub.add_parser("evaluate", help="run one configuration")
    ev.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    ev.add_argument("--size", type=int, default=200)
    ev.add_argument("--seed", type=int, default=17)
    ev.add_argument("--model", default="codex-sim")
    ev.add_argument("--model-seed", type=int, default=1)
    ev.add_argument("--voting", default="none",
                    choices=("none", "s-vote", "t-vote", "e-vote"))
    ev.add_argument("--samples", type=int, default=5)
    ev.add_argument("--sql-only", action="store_true")
    ev.add_argument("--sql-backend", default="sqlite",
                    choices=("sqlite", "native"))
    ev.set_defaults(func=_cmd_evaluate)

    batch = sub.add_parser(
        "batch", help="evaluate through the concurrent serving layer")
    batch.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    batch.add_argument("--size", type=int, default=200)
    batch.add_argument("--seed", type=int, default=17)
    batch.add_argument("--model", default="codex-sim")
    batch.add_argument("--model-seed", type=int, default=1)
    batch.add_argument("--voting", default="none",
                       choices=("none", "s-vote", "t-vote", "e-vote"))
    batch.add_argument("--samples", type=int, default=5)
    batch.add_argument("--sql-only", action="store_true")
    batch.add_argument("--sql-backend", default="sqlite",
                       choices=("sqlite", "native"))
    batch.add_argument("--workers", type=int, default=4,
                       help="concurrent agent workers")
    batch.add_argument("--cache-size", type=int, default=1024,
                       help="answer-cache entries (0 disables caching)")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-attempt timeout in seconds")
    batch.add_argument("--retries", type=int, default=1,
                       help="extra attempts before degrading")
    batch.add_argument("--async", dest="use_async", action="store_true",
                       help="serve through the asyncio core (continuous "
                            "batching + admission control; also enabled "
                            "by REPRO_ASYNC_SERVER=1)")
    batch.add_argument("--max-inflight", type=int, default=64,
                       help="async mode: concurrent in-flight request "
                            "budget")
    batch.add_argument("--batch-scheduler", action="store_true",
                       help="drive voted runners through the sans-IO "
                            "BatchScheduler (coalesced model calls; also "
                            "enabled by REPRO_BATCH_SCHEDULER=1)")
    batch.add_argument("--strategy", default=None, metavar="NAME",
                       help="reasoning strategy (react, cot, "
                            "chain-of-table, commented-code) or an "
                            "ensemble:a+b+c heterogeneous vote; defaults "
                            "to $REPRO_STRATEGY, then react")
    batch.add_argument("--reflect", action="store_true",
                       help="arm the reflexion rung: failed attempts "
                            "harvest a failure report, generate a verbal "
                            "reflection, and re-run with it injected "
                            "(also enabled by REPRO_REFLECT=1)")
    batch.add_argument("--metrics-out", metavar="PATH",
                       help="write serving metrics as JSON to PATH")
    batch.add_argument("--trace", metavar="PATH",
                       help="write a serving-lifecycle trace to PATH")
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="long-running daemon: async serving core + "
                      "scrapeable observability endpoints")
    serve.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    serve.add_argument("--size", type=int, default=50)
    serve.add_argument("--seed", type=int, default=17)
    serve.add_argument("--model", default="codex-sim")
    serve.add_argument("--voting", default="none",
                       choices=("none", "s-vote", "t-vote", "e-vote"))
    serve.add_argument("--samples", type=int, default=5)
    serve.add_argument("--sql-only", action="store_true")
    serve.add_argument("--sql-backend", default="sqlite",
                       choices=("sqlite", "native"))
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="control-plane port (0 = ephemeral)")
    serve.add_argument("--max-inflight", type=int, default=16)
    serve.add_argument("--max-queued", type=int, default=256)
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="answer-cache entries (0 disables caching)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-attempt timeout in seconds")
    serve.add_argument("--retries", type=int, default=1)
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="0 disables the circuit breaker")
    serve.add_argument("--tenants", default="gold,silver,bronze,default",
                       help="comma-separated tenant rotation for "
                            "replayed traffic")
    serve.add_argument("--requests", type=int, default=0,
                       help="replay N benchmark requests then drain and "
                            "exit (0 = serve until Ctrl-C)")
    serve.add_argument("--scrape", action="store_true",
                       help="after a replay, self-scrape /metrics and "
                            "/slo and print them")
    serve.add_argument("--slo-availability", type=float, default=0.995)
    serve.add_argument("--slo-latency-target", type=float, default=0.99)
    serve.add_argument("--slo-latency", type=float, default=1.0,
                       help="latency objective threshold in seconds")
    serve.add_argument("--slo-window", type=float, default=3600.0,
                       help="error-budget window in seconds")
    serve.add_argument("--sample-rate", type=float, default=0.1,
                       help="tail-sampling keep rate for OK traces")
    serve.add_argument("--trace-capacity", type=int, default=256,
                       help="ring-buffer capacity per trace class")
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep through the hardened stack")
    chaos.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    chaos.add_argument("--size", type=int, default=50)
    chaos.add_argument("--seed", type=int, default=17)
    chaos.add_argument("--model", default="codex-sim")
    chaos.add_argument("--model-seed", type=int, default=1)
    chaos.add_argument("--voting", default="none",
                       choices=("none", "s-vote", "t-vote", "e-vote"))
    chaos.add_argument("--samples", type=int, default=5)
    chaos.add_argument("--sql-only", action="store_true")
    chaos.add_argument("--sql-backend", default="sqlite",
                       choices=("sqlite", "native"))
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--async", dest="use_async", action="store_true",
                       help="sweep through the asyncio serving core "
                            "instead of the thread pool (also enabled by "
                            "REPRO_ASYNC_SERVER=1); the rate-0 check then "
                            "verifies that ladder's passthrough")
    chaos.add_argument("--rates", default="0,0.05,0.2",
                       help="comma-separated per-call fault rates")
    chaos.add_argument("--fault-latency", type=float, default=0.02,
                       help="injected latency-spike duration (seconds)")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-attempt serving deadline (seconds)")
    chaos.add_argument("--retries", type=int, default=2,
                       help="pool-level extra attempts before degrading")
    chaos.add_argument("--model-retries", type=int, default=2,
                       help="in-stack RetryingModel retries (0 disables)")
    chaos.add_argument("--backoff", type=float, default=0.0,
                       help="base backoff delay in seconds (0 disables)")
    chaos.add_argument("--breaker-threshold", type=int, default=5,
                       help="breaker consecutive-failure threshold "
                            "(0 disables the breaker)")
    chaos.add_argument("--breaker-cooldown", type=float, default=0.25,
                       help="breaker cooldown before half-open (seconds)")
    chaos.add_argument("--no-verify-passthrough", dest="verify_passthrough",
                       action="store_false",
                       help="skip the rate-0 bit-identical verification")
    chaos.add_argument("--metrics-out", metavar="PATH",
                       help="write last rate's serving metrics to PATH")
    chaos.add_argument("--trace", metavar="PATH",
                       help="write a fault/serving trace to PATH")
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench", help="cross-configuration evaluation matrices")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    b_strategies = bench_sub.add_parser(
        "strategies", help="every registered strategy + the "
                           "heterogeneous ensemble over seeded "
                           "wikitq/tabfact suites")
    b_strategies.add_argument("--size", type=int, default=60)
    b_strategies.add_argument("--seed", type=int, default=11)
    b_strategies.add_argument("--model", default="codex-sim")
    b_strategies.add_argument("--model-seed", type=int, default=1)
    b_strategies.add_argument("--batch-scheduler", action="store_true",
                              help="drive the ensemble through the "
                                   "sans-IO BatchScheduler")
    b_strategies.add_argument("--no-save", action="store_true",
                              help="print the matrix without writing "
                                   "results/strategy_matrix.txt")
    b_strategies.set_defaults(func=_cmd_bench)

    perf = sub.add_parser(
        "perf", help="performance-layer smoke / benchmark gate")
    perf.add_argument("--timings", action="store_true",
                      help="also run the timing suite and regression gate")
    perf.add_argument("--case", metavar="NAME", default=None,
                      help="run a single timing case by name")
    perf.add_argument("--update-baseline", action="store_true",
                      help="rewrite results/BENCH_perf_substrates.json")
    perf.add_argument("--baseline", metavar="PATH", default=None,
                      help="alternate baseline JSON path")
    perf.set_defaults(func=_cmd_perf)

    trace = sub.add_parser(
        "trace", help="inspect a telemetry trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    t_summary = trace_sub.add_parser(
        "summary", help="per-request span/time/token breakdown")
    t_summary.add_argument("path", help="trace JSONL file")
    t_summary.set_defaults(func=_cmd_trace)
    t_crit = trace_sub.add_parser(
        "critical-path", help="longest span chain per request")
    t_crit.add_argument("path", help="trace JSONL file")
    t_crit.set_defaults(func=_cmd_trace)
    t_flame = trace_sub.add_parser(
        "flame", help="text flamegraph per request")
    t_flame.add_argument("path", help="trace JSONL file")
    t_flame.add_argument("--width", type=int, default=60,
                         help="bar width in characters")
    t_flame.set_defaults(func=_cmd_trace)
    t_export = trace_sub.add_parser(
        "export", help="convert the trace for external viewers")
    t_export.add_argument("path", help="trace JSONL file")
    t_export.add_argument("--format", default="chrome",
                          choices=("chrome", "jsonl"),
                          help="chrome trace_event JSON or raw JSONL")
    t_export.add_argument("-o", "--output", metavar="PATH", default=None,
                          help="output path (defaults beside the input)")
    t_export.set_defaults(func=_cmd_trace)

    an = sub.add_parser("analyze",
                        help="error analysis with optional tracing")
    an.add_argument("dataset", choices=("wikitq", "tabfact", "fetaqa"))
    an.add_argument("--size", type=int, default=100)
    an.add_argument("--seed", type=int, default=17)
    an.add_argument("--model", default="codex-sim")
    an.add_argument("--model-seed", type=int, default=1)
    an.add_argument("--trace", metavar="PATH",
                    help="also write a JSONL chain trace to PATH")
    an.set_defaults(func=_cmd_analyze)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
