"""Language model protocol.

Anything implementing :class:`LanguageModel` can drive the agents: the
offline :class:`repro.llm.SimulatedTQAModel`, the scripted test model, or a
real API wrapper.  The interface mirrors the completion-style API the paper
used (prompt in, *n* sampled completions out, optional log-probabilities).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["Completion", "CompletionRequest", "LanguageModel",
           "ScriptedModel"]


@dataclass(frozen=True)
class Completion:
    """One sampled completion.

    ``logprob`` is the model's total log-probability for the completion,
    or None for models that do not expose scores (the paper notes
    gpt-3.5-turbo does not, which is why execution-based voting is N.A.
    for it).
    """

    text: str
    logprob: float | None = None


@dataclass(frozen=True)
class CompletionRequest:
    """One logical completion request inside a coalesced batch.

    The :class:`repro.engine.scheduler.BatchScheduler` collects the
    pending model calls of many concurrent chains into a list of these
    and submits them through :meth:`LanguageModel.complete_batch` —
    identical prompts are merged into a single request with a summed
    ``n`` (continuous-batching style).
    """

    prompt: str
    temperature: float = 0.0
    n: int = 1


class LanguageModel(abc.ABC):
    """Completion-style language model interface."""

    #: Identifier reported in experiment tables ("codex-sim", ...).
    name: str = "model"

    #: Whether completions carry log-probabilities (needed for e-vote).
    supports_logprobs: bool = True

    @abc.abstractmethod
    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        """Sample ``n`` completions for ``prompt`` at ``temperature``."""

    def complete_batch(self, requests) -> "list[list[Completion]]":
        """Sample completions for a batch of requests in one call.

        The batched-serving hook: the default performs the requests
        sequentially (so every model is batch-capable), while backends
        with a real batch endpoint — or latency models simulating one —
        override it to amortise per-call overhead across the batch.
        Returns one completion list per request, in request order.
        """
        return [self.complete(request.prompt,
                              temperature=request.temperature,
                              n=request.n)
                for request in requests]

    def fork(self, seed: int) -> "LanguageModel":
        """A copy of this model reseeded for one independent run.

        Seeded models override this to return a fresh instance whose
        randomness depends only on ``seed`` (the serving layer's
        per-request determinism hook).  Stateless models may return
        ``self`` — the default.
        """
        return self


class ScriptedModel(LanguageModel):
    """A deterministic model replaying a fixed list of completions.

    Used in unit tests to drive the agent through exact scenarios::

        model = ScriptedModel([
            "ReAcTable: SQL: ```SELECT * FROM T0;```.",
            "ReAcTable: Answer: ```42```.",
        ])
    """

    name = "scripted"

    def __init__(self, outputs, *, logprobs=None):
        self._outputs = list(outputs)
        self._logprobs = list(logprobs) if logprobs else None
        self._cursor = 0
        self.prompts: list[str] = []   # every prompt received, for asserts

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        self.prompts.append(prompt)
        batch = []
        for _ in range(n):
            if self._cursor >= len(self._outputs):
                raise IndexError("ScriptedModel ran out of outputs")
            text = self._outputs[self._cursor]
            logprob = None
            if self._logprobs is not None:
                logprob = self._logprobs[self._cursor]
            self._cursor += 1
            batch.append(Completion(text=text, logprob=logprob))
        return batch
