"""Column-at-a-time (vectorized) execution kernels for the SQL engine.

The row compiler (:mod:`repro.sqlengine.compiler`) already lowers each
expression once per query, but still pays one closure-tree walk *per
row*.  This module lowers **total** expressions (see
:func:`repro.sqlengine.planner.is_total`) to whole-column kernels: one
Python-level loop per *operator* instead of per row, with
dtype-specialised fast paths for the hot comparison shapes and an
optional numpy path behind ``REPRO_SQL_NUMPY=1``.

Totality is what makes eager evaluation sound.  A column kernel
evaluates its operands on every row, including rows the row-at-a-time
engine would short-circuit past (``AND``/``OR``, CASE branches, IN
early-exit); for expressions that can never raise, the only observable
difference would be errors — and there are none.  The *values* of
SQLite's three-valued logic are combination functions of the operand
values, so eager masks combine to exactly the short-circuit results.
Anything non-total simply does not get a vector kernel
(:func:`compile_vector` returns None) and the caller falls back to the
row-compiled path; ``REPRO_SQL_VECTOR=0`` disables this layer entirely,
keeping the row engine as a second oracle next to the interpreter
(``REPRO_SQL_COMPILE=0``).

Kernels must be loop-per-operator, never loop-per-row-tuple: a tier-1
lint (``tools/lint_vector.py``) rejects ``for row in`` / ``to_rows()``
/ ``iter_rows()`` in this file.

Caching layers, innermost first:

* ``VectorContext.memo`` — per-execution common-subexpression reuse:
  one stage shares a context, so ``SELECT x*y, x*y + 1 ... ORDER BY
  x*y`` computes ``x*y`` once (AST nodes are frozen dataclasses and
  hash structurally).
* ``DataFrame.kernel_cache()`` — per-frame, cross-query reuse of
  computed columns (and numpy mirrors), invalidated by
  ``DataFrame.__setitem__``.  Only full-range contexts read or write
  it; chunked scans (LIMIT short-circuit) stay out.
"""

from __future__ import annotations

import operator as _operator
import os

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeOp,
    Literal,
    UnaryOp,
)
from repro.sqlengine.evaluator import (
    COMPARISONS,
    _like_to_regex,
    _to_number,
    binary_values,
    cast_value,
    compare_values,
    is_truthy,
    unary_value,
)
from repro.sqlengine.functions import SCALAR_FUNCTIONS
from repro.sqlengine.planner import FrameShape, is_total, numeric_kind
from repro.table.frame import DataFrame
from repro.table.ops import aggregate_values
from repro.table.schema import ColumnType, is_missing
from repro.telemetry.metrics import GLOBAL_REGISTRY

__all__ = [
    "vector_enabled",
    "numpy_enabled",
    "VectorContext",
    "compile_vector",
    "compile_group_vector",
    "distinct_indexes",
    "truthy_indexes",
]


def vector_enabled() -> bool:
    """True unless ``REPRO_SQL_VECTOR=0`` forces the row-compiled path."""
    return os.environ.get("REPRO_SQL_VECTOR", "1") != "0"


_numpy_module = None


def numpy_enabled() -> bool:
    """True when ``REPRO_SQL_NUMPY=1`` and numpy imports cleanly."""
    global _numpy_module
    if os.environ.get("REPRO_SQL_NUMPY", "0") != "1":
        return False
    if _numpy_module is None:
        try:
            import numpy
            _numpy_module = numpy
        except ImportError:          # pragma: no cover - numpy is baked in
            _numpy_module = False
    return _numpy_module is not False


#: Sentinel for "this column cannot be mirrored as a numpy array".
_NO_ARRAY = object()

#: Dtypes whose non-missing values are bool/int/float — comparison and
#: arithmetic fast paths apply.
_NUMERIC_DTYPES = (ColumnType.NULL, ColumnType.BOOL, ColumnType.INTEGER,
                   ColumnType.REAL)


class VectorContext:
    """One stage's evaluation window over a frame.

    ``start``/``stop`` bound the row range (chunked LIMIT scans); the
    default covers the whole frame.  Columns are fetched once per
    resolved name, kernels index them positionally.
    """

    __slots__ = ("frame", "start", "stop", "length", "memo", "_full")

    def __init__(self, frame: DataFrame, start: int = 0,
                 stop: int | None = None):
        self.frame = frame
        self.start = start
        self.stop = frame.num_rows if stop is None else stop
        self.length = self.stop - self.start
        #: Per-execution CSE memo: AST node -> computed column.
        self.memo: dict = {}
        self._full = self.start == 0 and self.stop == frame.num_rows

    def column(self, name: str):
        values = self.frame.column(name).values
        if self._full:
            return values
        return values[self.start:self.stop]

    def numpy_column(self, name: str):
        """Numpy mirror of a column, or None when ineligible.

        Eligible: every value present (NULL-mask-free) and the array
        dtype is a plain int/float (big ints degrade to object arrays
        and are rejected, preserving exact comparisons).  Mirrors are
        cached on the frame alongside kernel results.
        """
        if not numpy_enabled():
            return None
        cache = self.frame.kernel_cache()
        key = ("np", name)
        mirror = cache.get(key)
        if mirror is None:
            values = self.frame.column(name).values
            mirror = _NO_ARRAY
            if not any(value is None or value != value for value in values):
                array = _numpy_module.asarray(values)
                if array.dtype.kind in "if":
                    mirror = array
            cache[key] = mirror
        if mirror is _NO_ARRAY:
            return None
        if self._full:
            return mirror
        return mirror[self.start:self.stop]


def distinct_indexes(frame: DataFrame) -> list[int]:
    """First-occurrence indexes of distinct rows, column-at-a-time.

    Value-identical to :func:`repro.table.ops.distinct`'s row scan: keys
    pair each value with its type name, so ``1`` / ``1.0`` / ``True``
    stay distinct rows, and first-occurrence order is preserved.  One
    typed-key pass per *column* (loop-per-operator); dtype-homogeneous
    columns — the planner's common case — collapse that pass to a
    constant type tag.  The final membership scan fuses the key columns
    positionally without materialising row tuples.
    """
    names = frame.columns
    if not names or not frame.num_rows:
        return list(range(frame.num_rows))
    key_columns = []
    for name in names:
        values = frame.column(name).values
        key_columns.append(
            [(type(value).__name__, value) for value in values])
    seen: set = set()
    keep: list[int] = []
    if len(key_columns) == 1:
        column = key_columns[0]
        for index in range(len(column)):
            key = column[index]
            if key not in seen:
                seen.add(key)
                keep.append(index)
        return keep
    for index, key in enumerate(zip(*key_columns)):
        if key not in seen:
            seen.add(key)
            keep.append(index)
    return keep


def truthy_indexes(mask, base: int = 0) -> list[int]:
    """Indexes (offset by ``base``) where the mask value is SQL-truthy."""
    return [base + position for position, value in enumerate(mask)
            if value is True
            or (value is not None and value is not False
                and is_truthy(value))]


# --- entry points ------------------------------------------------------------


def compile_vector(expr: Expression, shape: FrameShape):
    """Compile ``expr`` to ``fn(ctx) -> sequence`` of per-row values.

    Returns None when no sound kernel exists — the expression is not
    provably total, so eager evaluation could surface errors the
    row-at-a-time engine never reaches.  Callers fall back to
    :func:`repro.sqlengine.compiler.compile_row` for the whole stage.
    """
    if not is_total(expr, shape):
        return None
    fn = _compile_v(expr, shape)
    if fn is None:
        return None
    GLOBAL_REGISTRY.counter(
        "sqlengine.compiled_expressions",
        "expressions lowered to closures").inc(mode="vector")
    return fn


def _memoize(expr: Expression, fn):
    """Route a compound kernel through the context's CSE memo and the
    frame's cross-query kernel cache (full-range contexts only).

    Keys are ``repr(expr)``, not the node itself: dataclass equality
    rides Python ``==``, which conflates ``Literal(7)``, ``Literal(7.0)``
    and ``Literal(True)`` — distinct expressions that must not share a
    cached column.  ``repr`` spells each literal faithfully.
    """
    key = repr(expr)

    def memoized(ctx: VectorContext):
        hit = ctx.memo.get(key)
        if hit is not None:
            return hit
        if ctx._full:
            cache = ctx.frame.kernel_cache()
            hit = cache.get(key)
            if hit is None:
                hit = fn(ctx)
                if len(cache) < 64:
                    cache[key] = hit
        else:
            hit = fn(ctx)
        ctx.memo[key] = hit
        return hit

    return memoized


def _compile_v(expr: Expression, shape: FrameShape):
    """Inner lowering; assumes ``expr`` is total for ``shape``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: [value] * ctx.length
    if isinstance(expr, ColumnRef):
        name = shape.resolve(expr)
        if name is None:
            return None
        return lambda ctx: ctx.column(name)
    if isinstance(expr, UnaryOp):
        return _compile_v_unary(expr, shape)
    if isinstance(expr, BinaryOp):
        return _compile_v_binary(expr, shape)
    if isinstance(expr, FunctionCall):
        return _compile_v_function(expr, shape)
    if isinstance(expr, InList):
        return _compile_v_in_list(expr, shape)
    if isinstance(expr, Between):
        return _compile_v_between(expr, shape)
    if isinstance(expr, IsNull):
        operand = _compile_v(expr.operand, shape)
        if operand is None:
            return None
        if expr.negated:
            def not_null(ctx):
                return [value is not None and value == value
                        for value in operand(ctx)]
            return _memoize(expr, not_null)

        def null(ctx):
            return [value is None or value != value
                    for value in operand(ctx)]
        return _memoize(expr, null)
    if isinstance(expr, LikeOp):
        return _compile_v_like(expr, shape)
    if isinstance(expr, CaseWhen):
        return _compile_v_case(expr, shape)
    if isinstance(expr, Cast):
        operand = _compile_v(expr.operand, shape)
        if operand is None:
            return None
        target = expr.target

        def cast(ctx):
            return [cast_value(value, target) for value in operand(ctx)]
        return _memoize(expr, cast)
    return None


def _compile_v_unary(expr: UnaryOp, shape: FrameShape):
    operand = _compile_v(expr.operand, shape)
    if operand is None:
        return None
    op = expr.op
    if op == "NOT":
        def vnot(ctx):
            return [None if value is None or value != value
                    else not is_truthy(value)
                    for value in operand(ctx)]
        return _memoize(expr, vnot)

    def unary(ctx):
        return [unary_value(op, value) for value in operand(ctx)]
    return _memoize(expr, unary)


# --- comparisons -------------------------------------------------------------

#: Reflected operator name for column-on-the-right comparisons.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "=": "=", "<>": "<>"}

#: Eager numeric comparison ops (value semantics of ``compare_values``
#: restricted to two numeric-view operands).
_NUM_OPS = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def _column_spec(node: Expression, shape: FrameShape):
    """(resolved name, dtype) for a plain column reference, else None."""
    if isinstance(node, ColumnRef):
        name = shape.resolve(node)
        if name is not None:
            return name, shape.dtype_of(node)
    return None


def _compile_v_binary(expr: BinaryOp, shape: FrameShape):
    op = expr.op
    if op in ("AND", "OR"):
        left = _compile_v(expr.left, shape)
        right = _compile_v(expr.right, shape)
        if left is None or right is None:
            return None
        if op == "AND":
            def vand(ctx):
                return [_and3(a, b)
                        for a, b in zip(left(ctx), right(ctx))]
            return _memoize(expr, vand)

        def vor(ctx):
            return [_or3(a, b) for a, b in zip(left(ctx), right(ctx))]
        return _memoize(expr, vor)

    comparison = COMPARISONS.get(op)
    if comparison is not None:
        fast = _comparison_fast_path(expr, shape)
        if fast is not None:
            return _memoize(expr, fast)
        left = _compile_v(expr.left, shape)
        right = _compile_v(expr.right, shape)
        if left is None or right is None:
            return None

        def compare(ctx):
            out = []
            for a, b in zip(left(ctx), right(ctx)):
                order = compare_values(a, b)
                out.append(None if order is None else comparison(order))
            return out
        return _memoize(expr, compare)

    left = _compile_v(expr.left, shape)
    right = _compile_v(expr.right, shape)
    if left is None or right is None:
        return None
    if isinstance(expr.right, Literal):
        scalar = expr.right.value

        def binary_scalar(ctx):
            return [binary_values(op, value, scalar)
                    for value in left(ctx)]
        return _memoize(expr, binary_scalar)

    def binary(ctx):
        return [binary_values(op, a, b)
                for a, b in zip(left(ctx), right(ctx))]
    return _memoize(expr, binary)


def _comparison_fast_path(expr: BinaryOp, shape: FrameShape):
    """Dtype-specialised kernels for the hot comparison shapes.

    ``col <op> literal`` (either side) over numeric columns compares
    eagerly with the Python operator — exactly ``compare_values`` for
    two numeric-view operands — and rides numpy when enabled.  TEXT
    columns against non-numeric string literals replicate the
    type-class ordering branch.  ``col <op> col`` over two numeric
    columns compares positionally.  Anything else returns None and
    takes the generic ``compare_values`` loop.
    """
    op = expr.op
    left_col = _column_spec(expr.left, shape)
    right_col = _column_spec(expr.right, shape)

    if left_col and isinstance(expr.right, Literal):
        return _column_literal_cmp(op, left_col, expr.right.value)
    if right_col and isinstance(expr.left, Literal):
        return _column_literal_cmp(_FLIPPED[op], right_col,
                                   expr.left.value)
    if left_col and right_col \
            and left_col[1] in _NUMERIC_DTYPES \
            and right_col[1] in _NUMERIC_DTYPES:
        fn = _NUM_OPS[op]
        left_name, right_name = left_col[0], right_col[0]

        def col_col(ctx):
            return [None if a is None or a != a or b is None or b != b
                    else fn(a, b)
                    for a, b in zip(ctx.column(left_name),
                                    ctx.column(right_name))]
        return col_col
    return None


def _column_literal_cmp(op: str, col, literal):
    name, dtype = col
    fn = _NUM_OPS[op]
    if literal is None or literal != literal:
        return lambda ctx: [None] * ctx.length
    literal_num = _to_number(literal)
    if dtype in _NUMERIC_DTYPES and literal_num is not None:
        def numeric_cmp(ctx):
            array = ctx.numpy_column(name)
            if array is not None:
                return fn(array, literal_num).tolist()
            return [None if value is None or value != value
                    else fn(value, literal_num)
                    for value in ctx.column(name)]
        return numeric_cmp
    if dtype is ColumnType.TEXT and isinstance(literal, str) \
            and literal_num is None:
        # compare_values with a non-numeric string on the right: numbers
        # order before text (order -1), everything else compares as text.
        below = fn(-1, 0)   # a numeric value vs text yields order -1

        def text_cmp(ctx):
            out = []
            for value in ctx.column(name):
                if value is None or value != value:
                    out.append(None)
                elif isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    out.append(below)
                else:
                    text = str(value)
                    out.append(fn((text > literal) - (text < literal), 0))
            return out
        return text_cmp
    return None


def _and3(a, b):
    """Eager SQLite AND: value-identical to the short-circuit form."""
    if (a is not None and a == a) and not is_truthy(a):
        return False
    if (b is not None and b == b) and not is_truthy(b):
        return False
    if a is None or a != a or b is None or b != b:
        return None
    return True


def _or3(a, b):
    """Eager SQLite OR: value-identical to the short-circuit form."""
    if (a is not None and a == a) and is_truthy(a):
        return True
    if (b is not None and b == b) and is_truthy(b):
        return True
    if a is None or a != a or b is None or b != b:
        return None
    return False


# --- remaining node kernels --------------------------------------------------


def _compile_v_function(expr: FunctionCall, shape: FrameShape):
    fn = SCALAR_FUNCTIONS.get(expr.name.lower())
    if fn is None:        # aggregates never reach here (not total in rows)
        return None
    args = [_compile_v(arg, shape) for arg in expr.args]
    if any(arg is None for arg in args):
        return None
    if not args:          # e.g. COALESCE() — constant per row
        def call_none(ctx):
            return [fn([]) for _ in range(ctx.length)]
        return _memoize(expr, call_none)
    if len(args) == 1:
        arg = args[0]

        def call_one(ctx):
            return [fn([value]) for value in arg(ctx)]
        return _memoize(expr, call_one)

    def call(ctx):
        return [fn(list(values))
                for values in zip(*(arg(ctx) for arg in args))]
    return _memoize(expr, call)


def _compile_v_in_list(expr: InList, shape: FrameShape):
    operand = _compile_v(expr.operand, shape)
    items = [_compile_v(item, shape) for item in expr.items]
    if operand is None or any(item is None for item in items):
        return None
    negated = expr.negated

    def in_list(ctx):
        candidate_columns = [item(ctx) for item in items]
        out = []
        for position, value in enumerate(operand(ctx)):
            if value is None or value != value:
                out.append(None)
                continue
            saw_null = False
            result = negated
            for candidates in candidate_columns:
                order = compare_values(value, candidates[position])
                if order is None:
                    saw_null = True
                elif order == 0:
                    result = not negated
                    break
            else:
                if saw_null:
                    result = None
            out.append(result)
        return out
    return _memoize(expr, in_list)


def _compile_v_between(expr: Between, shape: FrameShape):
    operand = _compile_v(expr.operand, shape)
    low = _compile_v(expr.low, shape)
    high = _compile_v(expr.high, shape)
    if operand is None or low is None or high is None:
        return None
    negated = expr.negated

    def between(ctx):
        out = []
        for value, low_value, high_value in zip(operand(ctx), low(ctx),
                                                high(ctx)):
            low_cmp = compare_values(value, low_value)
            high_cmp = compare_values(value, high_value)
            if low_cmp is None or high_cmp is None:
                out.append(None)
                continue
            inside = low_cmp >= 0 and high_cmp <= 0
            out.append((not inside) if negated else inside)
        return out
    return _memoize(expr, between)


def _compile_v_like(expr: LikeOp, shape: FrameShape):
    operand = _compile_v(expr.operand, shape)
    if operand is None:
        return None
    negated = expr.negated
    if isinstance(expr.pattern, Literal):
        if is_missing(expr.pattern.value):
            return _memoize(expr,
                            lambda ctx: [None] * ctx.length)
        regex = _like_to_regex(str(expr.pattern.value))

        def literal_like(ctx):
            out = []
            for value in operand(ctx):
                if value is None or value != value:
                    out.append(None)
                else:
                    matched = regex.match(str(value)) is not None
                    out.append((not matched) if negated else matched)
            return out
        return _memoize(expr, literal_like)
    pattern = _compile_v(expr.pattern, shape)
    if pattern is None:
        return None

    def like(ctx):
        out = []
        for value, pattern_value in zip(operand(ctx), pattern(ctx)):
            if value is None or value != value \
                    or pattern_value is None \
                    or pattern_value != pattern_value:
                out.append(None)
                continue
            matched = (_like_to_regex(str(pattern_value))
                       .match(str(value)) is not None)
            out.append((not matched) if negated else matched)
        return out
    return _memoize(expr, like)


def _compile_v_case(expr: CaseWhen, shape: FrameShape):
    whens = [(_compile_v(cond, shape), _compile_v(result, shape))
             for cond, result in expr.whens]
    if any(cond is None or result is None for cond, result in whens):
        return None
    default = None
    if expr.default is not None:
        default = _compile_v(expr.default, shape)
        if default is None:
            return None

    def case(ctx):
        # All branches evaluate eagerly (total), then each row picks the
        # first truthy condition — the interpreter's value per row.
        branch_columns = [(cond(ctx), result(ctx))
                          for cond, result in whens]
        default_column = default(ctx) if default is not None else None
        out = []
        for position in range(ctx.length):
            for cond_column, result_column in branch_columns:
                if is_truthy(cond_column[position]):
                    out.append(result_column[position])
                    break
            else:
                out.append(None if default_column is None
                           else default_column[position])
        return out
    return _memoize(expr, case)


# --- group (aggregate) vectorization -----------------------------------------


def compile_group_vector(expr: Expression, shape: FrameShape):
    """Compile a group-context expression to a two-phase kernel.

    Returns ``prepare(ctx) -> per_group(indexes) -> value`` or None.
    ``prepare`` computes every needed whole column once (CSE-shared via
    the context); ``per_group`` then reduces a group's row indexes to
    one value.  Mirrors ``compile_group`` semantics exactly: aggregate
    arguments gather per group, bare (aggregate-free) subtrees take the
    group's first row, compound nodes combine per group through the
    same scalar kernels the row engine uses.
    """
    if not is_total(expr, shape, group=True):
        return None
    prepare = _compile_gv(expr, shape)
    if prepare is None:
        return None
    GLOBAL_REGISTRY.counter(
        "sqlengine.compiled_expressions",
        "expressions lowered to closures").inc(mode="group_vector")
    return prepare


def _first_row_gv(expr: Expression, shape: FrameShape):
    column_fn = _compile_v(expr, shape)
    if column_fn is None:
        return None

    def prepare(ctx):
        column = column_fn(ctx)
        return lambda indexes: column[indexes[0]]
    return prepare


def _compile_gv(expr: Expression, shape: FrameShape):
    from repro.sqlengine.evaluator import expression_uses_aggregate
    if not expression_uses_aggregate(expr):
        return _first_row_gv(expr, shape)
    if isinstance(expr, FunctionCall):
        from repro.sqlengine.functions import is_aggregate_name
        if is_aggregate_name(expr.name):
            return _compile_gv_aggregate(expr, shape)
        parts = [_compile_gv(arg, shape) for arg in expr.args]
        if any(part is None for part in parts):
            return None
        fn = SCALAR_FUNCTIONS.get(expr.name.lower())
        if fn is None:
            return None

        def prepare(ctx):
            prepared = [part(ctx) for part in parts]
            return lambda indexes: fn(
                [part(indexes) for part in prepared])
        return prepare
    if isinstance(expr, UnaryOp):
        operand = _compile_gv(expr.operand, shape)
        if operand is None:
            return None
        op = expr.op

        def prepare(ctx):
            prepared = operand(ctx)
            return lambda indexes: unary_value(op, prepared(indexes))
        return prepare
    if isinstance(expr, BinaryOp):
        return _compile_gv_binary(expr, shape)
    if isinstance(expr, IsNull):
        operand = _compile_gv(expr.operand, shape)
        if operand is None:
            return None
        negated = expr.negated

        def prepare(ctx):
            prepared = operand(ctx)
            if negated:
                return lambda indexes: not is_missing(prepared(indexes))
            return lambda indexes: is_missing(prepared(indexes))
        return prepare
    if isinstance(expr, Cast):
        operand = _compile_gv(expr.operand, shape)
        if operand is None:
            return None
        target = expr.target

        def prepare(ctx):
            prepared = operand(ctx)
            return lambda indexes: cast_value(prepared(indexes), target)
        return prepare
    if isinstance(expr, CaseWhen):
        whens = [(_compile_gv(cond, shape), _compile_gv(result, shape))
                 for cond, result in expr.whens]
        if any(cond is None or result is None for cond, result in whens):
            return None
        default = None
        if expr.default is not None:
            default = _compile_gv(expr.default, shape)
            if default is None:
                return None

        def prepare(ctx):
            prepared = [(cond(ctx), result(ctx))
                        for cond, result in whens]
            prepared_default = default(ctx) if default is not None \
                else None

            def per_group(indexes):
                for cond_fn, result_fn in prepared:
                    if is_truthy(cond_fn(indexes)):
                        return result_fn(indexes)
                if prepared_default is not None:
                    return prepared_default(indexes)
                return None
            return per_group
        return prepare
    if isinstance(expr, (InList, Between, LikeOp)):
        return _compile_gv_generic(expr, shape)
    return None


def _compile_gv_binary(expr: BinaryOp, shape: FrameShape):
    left = _compile_gv(expr.left, shape)
    right = _compile_gv(expr.right, shape)
    if left is None or right is None:
        return None
    op = expr.op
    if op == "AND":
        def prepare_and(ctx):
            left_fn, right_fn = left(ctx), right(ctx)
            return lambda indexes: _and3(left_fn(indexes),
                                         right_fn(indexes))
        return prepare_and
    if op == "OR":
        def prepare_or(ctx):
            left_fn, right_fn = left(ctx), right(ctx)
            return lambda indexes: _or3(left_fn(indexes),
                                        right_fn(indexes))
        return prepare_or
    comparison = COMPARISONS.get(op)
    if comparison is not None:
        def prepare_cmp(ctx):
            left_fn, right_fn = left(ctx), right(ctx)

            def per_group(indexes):
                order = compare_values(left_fn(indexes),
                                       right_fn(indexes))
                return None if order is None else comparison(order)
            return per_group
        return prepare_cmp

    def prepare(ctx):
        left_fn, right_fn = left(ctx), right(ctx)
        return lambda indexes: binary_values(op, left_fn(indexes),
                                             right_fn(indexes))
    return prepare


def _compile_gv_generic(expr: Expression, shape: FrameShape):
    """IN/BETWEEN/LIKE over aggregates: combine per group via the
    evaluator's value semantics on the already-reduced operands."""
    if isinstance(expr, InList):
        operand = _compile_gv(expr.operand, shape)
        items = [_compile_gv(item, shape) for item in expr.items]
        if operand is None or any(item is None for item in items):
            return None
        negated = expr.negated

        def prepare(ctx):
            operand_fn = operand(ctx)
            item_fns = [item(ctx) for item in items]

            def per_group(indexes):
                value = operand_fn(indexes)
                if is_missing(value):
                    return None
                saw_null = False
                for item_fn in item_fns:
                    order = compare_values(value, item_fn(indexes))
                    if order is None:
                        saw_null = True
                    elif order == 0:
                        return not negated
                if saw_null:
                    return None
                return negated
            return per_group
        return prepare
    if isinstance(expr, Between):
        operand = _compile_gv(expr.operand, shape)
        low = _compile_gv(expr.low, shape)
        high = _compile_gv(expr.high, shape)
        if operand is None or low is None or high is None:
            return None
        negated = expr.negated

        def prepare(ctx):
            operand_fn, low_fn, high_fn = operand(ctx), low(ctx), \
                high(ctx)

            def per_group(indexes):
                value = operand_fn(indexes)
                low_cmp = compare_values(value, low_fn(indexes))
                high_cmp = compare_values(value, high_fn(indexes))
                if low_cmp is None or high_cmp is None:
                    return None
                inside = low_cmp >= 0 and high_cmp <= 0
                return (not inside) if negated else inside
            return per_group
        return prepare
    if isinstance(expr, LikeOp):
        operand = _compile_gv(expr.operand, shape)
        pattern = _compile_gv(expr.pattern, shape)
        if operand is None or pattern is None:
            return None
        negated = expr.negated

        def prepare(ctx):
            operand_fn, pattern_fn = operand(ctx), pattern(ctx)

            def per_group(indexes):
                value = operand_fn(indexes)
                pattern_value = pattern_fn(indexes)
                if is_missing(value) or is_missing(pattern_value):
                    return None
                matched = (_like_to_regex(str(pattern_value))
                           .match(str(value)) is not None)
                return (not matched) if negated else matched
            return per_group
        return prepare
    return None


def _compile_gv_aggregate(call: FunctionCall, shape: FrameShape):
    """One aggregate call as a two-phase kernel.

    The argument is computed as a whole column once (shared through the
    context memo with every other kernel in the stage); each group then
    gathers its rows' values and folds them — the same name
    normalisation, COUNT(*)/group_concat special cases, and DISTINCT
    dedupe as ``GroupContext.aggregate`` and the row compiler.
    """
    from repro.sqlengine.ast_nodes import Star
    name = call.name.lower()
    if name == "total":
        name = "sum"
    if name == "count" and call.args and isinstance(call.args[0], Star):
        return lambda ctx: len
    if len(call.args) != 1:
        return None
    column_fn = _compile_v(call.args[0], shape)
    if column_fn is None:
        return None
    distinct = call.distinct

    if name == "group_concat":
        def prepare_concat(ctx):
            column = column_fn(ctx)

            def per_group(indexes):
                present = [str(column[i]) for i in indexes
                           if not (column[i] is None
                                   or column[i] != column[i])]
                return ",".join(present) if present else None
            return per_group
        return prepare_concat

    if not distinct and name in ("count", "sum", "avg") \
            and numeric_kind(call.args[0], shape) is not None:
        # Provably numeric-or-NULL argument: fold directly instead of
        # gathering a list and re-classifying every value inside
        # ``aggregate_values`` (its ``_numeric`` scan).  Semantics are
        # identical because the value domain is {None, bool, int, float}.
        return _numeric_fold(name, column_fn)

    def prepare(ctx):
        column = column_fn(ctx)

        def per_group(indexes):
            values = [column[i] for i in indexes]
            if distinct:
                seen, unique = set(), []
                for value in values:
                    key = (type(value).__name__, value)
                    if key not in seen:
                        seen.add(key)
                        unique.append(value)
                values = unique
            return aggregate_values(name, values)
        return per_group
    return prepare


def _numeric_fold(name: str, column_fn):
    """COUNT/SUM/AVG folds specialised to numeric-or-NULL columns.

    Mirrors ``_agg_count``/``_agg_sum``/``_agg_avg`` exactly on their
    post-``_numeric`` value domain: missing values skip, bools count as
    ints, SUM returns int iff every contributing value was integral,
    empty folds return NULL (COUNT returns 0).
    """
    if name == "count":
        def prepare_count(ctx):
            column = column_fn(ctx)

            def per_group(indexes):
                count = 0
                for i in indexes:
                    value = column[i]
                    if value is not None and value == value:
                        count += 1
                return count
            return per_group
        return prepare_count

    if name == "sum":
        def prepare_sum(ctx):
            column = column_fn(ctx)

            def per_group(indexes):
                total = 0
                count = 0
                has_float = False
                for i in indexes:
                    value = column[i]
                    if value is None or value != value:
                        continue
                    count += 1
                    if isinstance(value, float):
                        has_float = True
                    total += value
                if not count:
                    return None
                return total if has_float else int(total)
            return per_group
        return prepare_sum

    def prepare_avg(ctx):
        column = column_fn(ctx)

        def per_group(indexes):
            total = 0
            count = 0
            for i in indexes:
                value = column[i]
                if value is None or value != value:
                    continue
                total += value
                count += 1
            return total / count if count else None
        return per_group
    return prepare_avg
