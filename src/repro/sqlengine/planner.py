"""Plan-level rewrites and the totality analysis that licenses them.

The executor's pipeline is semantically fixed: FROM -> WHERE -> GROUP BY
-> HAVING -> select-list -> DISTINCT -> ORDER BY -> LIMIT.  This module
rewrites a parsed :class:`~repro.sqlengine.ast_nodes.SelectStatement`
into a cheaper but *bit-identical* plan:

* **Predicate pushdown below joins** — WHERE conjuncts that reference a
  single source table filter that table *before* the join materialises
  the cross product;
* **HAVING pushdown below GROUP BY** — aggregate-free HAVING conjuncts
  that only touch GROUP BY key columns move into WHERE, shrinking every
  group before bucketing;
* **LIMIT short-circuit into the scan** — plain filtered queries stop
  evaluating the WHERE mask once ``OFFSET + LIMIT`` rows have matched.

Every rewrite changes *when* (or whether) expressions are evaluated, so
each is gated on :func:`is_total`: a conservative, dtype-aware proof
that an expression can never raise and resolves statically.  A rewrite
that cannot be proven safe simply does not fire — the unrewritten plan
runs and the interpreter oracle (``REPRO_SQL_COMPILE=0``) stays
bit-identical, errors included.  The same analysis is what licenses the
eager column-at-a-time evaluation in :mod:`repro.sqlengine.vector`
(eager kernels evaluate expressions on rows the row-at-a-time engine
would short-circuit past, which is only sound if those expressions
cannot raise).

Planned statements are memoised through the same LRU machinery as the
parse cache (see :data:`repro.sqlengine.plancache.DEFAULT_REWRITE_CACHE`),
keyed by the parsed statement *and* the catalog schema signature —
dtype-aware safety proofs are only valid for the column types they were
made against.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import SQLRuntimeError, TableError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeOp,
    Literal,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sqlengine.evaluator import resolve_joined_ref
from repro.sqlengine.functions import (
    NUMERIC_SAFE_FUNCTIONS,
    TOTAL_TEXT_FUNCTIONS,
    is_aggregate_name,
)
from repro.table.frame import DataFrame
from repro.table.schema import ColumnType

__all__ = [
    "FrameShape",
    "PlannedSelect",
    "plan_select",
    "is_total",
    "numeric_kind",
    "split_conjuncts",
    "conjoin",
    "resolve_aliases",
    "resolve_table",
]


def resolve_table(name: str, tables: Mapping[str, DataFrame]) -> DataFrame:
    """Catalog lookup: exact name first, then case-insensitive."""
    if name in tables:
        return tables[name]
    lowered = name.lower()
    for key, frame in tables.items():
        if key.lower() == lowered:
            return frame
    raise SQLRuntimeError(
        f"no such table: {name} (available: {', '.join(tables)})")


class FrameShape:
    """Static resolution + dtype view of one frame (or join shape).

    Mirrors the runtime resolution rules (``Layout`` for indexes, the
    joined suffix scheme) but never raises: :meth:`resolve` returns
    ``None`` on a miss or ambiguity, which the analysis treats as
    "cannot prove safe".
    """

    __slots__ = ("frame", "joined", "_dtypes")

    def __init__(self, frame: DataFrame, *, joined: bool = False,
                 dtypes: dict[str, ColumnType] | None = None):
        self.frame = frame
        self.joined = joined
        # Join shapes are built over empty frames, so dtypes come from
        # the source frames via an explicit map.
        self._dtypes = dtypes

    @classmethod
    def for_join(cls, parts: list[tuple[str, DataFrame]]) -> "FrameShape":
        """Shape of ``parts`` (alias, frame) pairs joined and prefixed."""
        names: list[str] = []
        dtypes: dict[str, ColumnType] = {}
        for alias, frame in parts:
            for column in frame.columns:
                prefixed = f"{alias}.{column}"
                names.append(prefixed)
                dtypes[prefixed] = frame.column(column).dtype
        return cls(DataFrame.empty(names), joined=True, dtypes=dtypes)

    def resolve(self, ref: ColumnRef) -> str | None:
        """Resolved column name for ``ref``, or None if unresolvable."""
        try:
            if self.joined:
                return resolve_joined_ref(self.frame, ref)
            found = self.frame._columns.get(ref.name)  # noqa: SLF001
            if found is not None:
                return found.name
            return self.frame.lowered_names().get(ref.name.lower())
        except SQLRuntimeError:
            return None

    def has_exact(self, name: str) -> bool:
        return name in self.frame

    def dtype_of(self, ref: ColumnRef) -> ColumnType | None:
        name = self.resolve(ref)
        if name is None:
            return None
        if self._dtypes is not None:
            return self._dtypes.get(name)
        return self.frame.column(name).dtype


# --- totality / kind analysis ------------------------------------------------

#: Dtypes whose non-missing values are int/float/bool — arithmetic-safe.
_INT_KINDS = (ColumnType.NULL, ColumnType.BOOL, ColumnType.INTEGER)


def numeric_kind(expr: Expression, shape: FrameShape, *,
                 group: bool = False) -> str | None:
    """``"int"`` / ``"float"`` if ``expr`` provably yields only numbers
    (or NULL) of that kind; ``None`` when no proof exists.

    "int" additionally promises finiteness (no inf), which is what makes
    ``CAST(... AS INTEGER)``, ``floor`` and ``round`` total.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if value is None or isinstance(value, (bool, int)):
            return "int"
        if isinstance(value, float):
            return None if value != value or value in (
                float("inf"), float("-inf")) else "float"
        if isinstance(value, str):
            text = value.strip().replace(",", "")
            try:
                int(text)
                return "int"
            except ValueError:
                try:
                    parsed = float(text)
                except ValueError:
                    return None
                # 'nan'/'inf' literals parse but break floor/ceil/CAST.
                if parsed != parsed or parsed in (float("inf"),
                                                 float("-inf")):
                    return None
                return "float"
        return None
    if isinstance(expr, ColumnRef):
        dtype = shape.dtype_of(expr)
        if dtype in _INT_KINDS:
            return "int"
        if dtype is ColumnType.REAL:
            # REAL columns may in principle hold inf; arithmetic on them
            # is still total (IEEE), but int-only contexts must refuse.
            return "float"
        return None
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return "int" if is_total(expr.operand, shape,
                                     group=group) else None
        return numeric_kind(expr.operand, shape, group=group)
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op in ("AND", "OR") or op in _COMPARISON_OPS:
            total = (is_total(expr.left, shape, group=group)
                     and is_total(expr.right, shape, group=group))
            return "int" if total else None
        if op in ("+", "-", "*", "/", "%"):
            left = numeric_kind(expr.left, shape, group=group)
            right = numeric_kind(expr.right, shape, group=group)
            if left is None or right is None:
                return None
            return "float" if "float" in (left, right) else "int"
        return None  # || yields text
    if isinstance(expr, (IsNull, InList, Between, LikeOp)):
        return "int" if is_total(expr, shape, group=group) else None
    if isinstance(expr, CaseWhen):
        if not is_total(expr, shape, group=group):
            return None
        kinds = {numeric_kind(result, shape, group=group)
                 for _, result in expr.whens}
        kinds.add("int" if expr.default is None
                  else numeric_kind(expr.default, shape, group=group))
        if None in kinds:
            return None
        return "float" if "float" in kinds else "int"
    if isinstance(expr, Cast):
        if not is_total(expr, shape, group=group):
            return None
        if expr.target == "INTEGER":
            return "int"
        if expr.target == "REAL":
            return "float"
        return None
    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        if is_aggregate_name(name):
            if not group or not is_total(expr, shape, group=True):
                return None
            if name == "count":
                return "int"
            if name in ("sum", "total", "min", "max"):
                return numeric_kind(expr.args[0], shape, group=False) \
                    if expr.args else None
            if name == "avg":
                arg = numeric_kind(expr.args[0], shape, group=False) \
                    if expr.args else None
                return "float" if arg is not None else None
            return None  # group_concat yields text
        if not is_total(expr, shape, group=group):
            return None
        if name in ("length", "instr", "floor", "ceil", "ceiling"):
            return "int"
        if name == "abs":
            return numeric_kind(expr.args[0], shape, group=group)
        if name == "round":
            return "float"
        return None
    return None


_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def _arity_ok(spec: tuple[int, int], count: int) -> bool:
    low, high = spec
    return low <= count <= high


def is_total(expr: Expression, shape: FrameShape, *,
             group: bool = False) -> bool:
    """True when evaluating ``expr`` can never raise, for any row of a
    frame matching ``shape``.

    Conservative by construction: unknown nodes, unresolvable column
    references, arithmetic over TEXT columns, and functions outside the
    never-raising whitelist all answer False.  ``group=True`` admits
    aggregate calls (whose arguments are checked in row context).

    One documented assumption: stored numeric columns hold *finite*
    human-scale values (no inf/nan floats — NaN is "missing" anyway —
    and integers well below 1e308).  The dataset loaders and generators
    guarantee this, and it is what makes ``round``/``floor``/``CAST AS
    REAL`` over numeric columns total (``float()`` of a >1e308 integer
    would raise).  The analysis rejects the cases that violate it
    statically (``'inf'``/``'nan'`` literals, TEXT operands).
    """
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, ColumnRef):
        return shape.resolve(expr) is not None
    if isinstance(expr, Star):
        return False
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return is_total(expr.operand, shape, group=group)
        return numeric_kind(expr.operand, shape, group=group) is not None
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op in ("AND", "OR") or op in _COMPARISON_OPS or op == "||":
            return (is_total(expr.left, shape, group=group)
                    and is_total(expr.right, shape, group=group))
        if op in ("+", "-", "*", "/", "%"):
            return (numeric_kind(expr.left, shape, group=group) is not None
                    and numeric_kind(expr.right, shape,
                                     group=group) is not None)
        return False
    if isinstance(expr, InList):
        return (is_total(expr.operand, shape, group=group)
                and all(is_total(item, shape, group=group)
                        for item in expr.items))
    if isinstance(expr, Between):
        return all(is_total(part, shape, group=group)
                   for part in (expr.operand, expr.low, expr.high))
    if isinstance(expr, IsNull):
        return is_total(expr.operand, shape, group=group)
    if isinstance(expr, LikeOp):
        return (is_total(expr.operand, shape, group=group)
                and is_total(expr.pattern, shape, group=group))
    if isinstance(expr, CaseWhen):
        parts = [part for pair in expr.whens for part in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return all(is_total(part, shape, group=group) for part in parts)
    if isinstance(expr, Cast):
        if expr.target == "TEXT":
            return is_total(expr.operand, shape, group=group)
        if expr.target == "REAL":
            # float(number) is total (inf passes through); the numeric
            #-prefix fallback regex never raises either.
            return is_total(expr.operand, shape, group=group)
        # INTEGER: int(inf) raises, so demand finite ("int") operands.
        return numeric_kind(expr.operand, shape, group=group) == "int"
    if isinstance(expr, FunctionCall):
        name = expr.name.lower()
        args = expr.args
        if is_aggregate_name(name):
            if not group:
                return False
            if name == "count" and len(args) == 1 \
                    and isinstance(args[0], Star):
                return True
            return len(args) == 1 and is_total(args[0], shape,
                                               group=False)
        if name in TOTAL_TEXT_FUNCTIONS:
            return _arity_ok(TOTAL_TEXT_FUNCTIONS[name], len(args)) \
                and all(is_total(arg, shape, group=group) for arg in args)
        if name in NUMERIC_SAFE_FUNCTIONS:
            return _arity_ok(NUMERIC_SAFE_FUNCTIONS[name], len(args)) \
                and all(numeric_kind(arg, shape, group=group) is not None
                        for arg in args)
        if name in ("substr", "substring"):
            return (len(args) in (2, 3)
                    and is_total(args[0], shape, group=group)
                    and all(numeric_kind(arg, shape,
                                         group=group) is not None
                            for arg in args[1:]))
        return False
    return False


# --- conjunct utilities ------------------------------------------------------


def split_conjuncts(expr: Expression) -> list[Expression]:
    """Flatten a top-level AND chain into its conjuncts, left to right."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(parts: list[Expression]) -> Expression | None:
    """Left-associated AND of ``parts`` (None for an empty list)."""
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("AND", result, part)
    return result


def resolve_aliases(expr: Expression,
                    alias_map: Mapping[str, Expression]) -> Expression:
    """Substitute select-list aliases (SQLite allows them in HAVING)."""

    def walk(node):
        if isinstance(node, ColumnRef):
            if node.table is None and node.name in alias_map:
                return alias_map[node.name]
            return node
        if isinstance(node, UnaryOp):
            return dataclasses.replace(node, operand=walk(node.operand))
        if isinstance(node, BinaryOp):
            return dataclasses.replace(node, left=walk(node.left),
                                       right=walk(node.right))
        if isinstance(node, FunctionCall):
            return dataclasses.replace(
                node, args=tuple(walk(a) for a in node.args))
        if isinstance(node, InList):
            return dataclasses.replace(
                node, operand=walk(node.operand),
                items=tuple(walk(i) for i in node.items))
        if isinstance(node, Between):
            return dataclasses.replace(
                node, operand=walk(node.operand), low=walk(node.low),
                high=walk(node.high))
        if isinstance(node, IsNull):
            return dataclasses.replace(node, operand=walk(node.operand))
        if isinstance(node, LikeOp):
            return dataclasses.replace(
                node, operand=walk(node.operand),
                pattern=walk(node.pattern))
        if isinstance(node, CaseWhen):
            whens = tuple((walk(c), walk(r)) for c, r in node.whens)
            default = walk(node.default) if node.default else None
            return dataclasses.replace(node, whens=whens, default=default)
        if isinstance(node, Cast):
            return dataclasses.replace(node, operand=walk(node.operand))
        return node

    return walk(expr)


# --- the planned form --------------------------------------------------------


@dataclass(frozen=True)
class PlannedSelect:
    """A statement plus the rewrites the executor should apply.

    ``pushed`` maps join positions to pre-join filters: position ``-1``
    is the FROM table, position ``i`` is ``stmt.joins[i]``'s table.  The
    predicates are rewritten against *source-frame* column names (the
    alias prefix stripped), ready to evaluate before prefixing.
    """

    stmt: SelectStatement
    pushed: tuple[tuple[int, Expression], ...] = ()
    scan_limit: int | None = None
    rewrites: tuple[str, ...] = ()


def _expression_uses_aggregate(expr: Expression) -> bool:
    from repro.sqlengine.evaluator import expression_uses_aggregate
    return expression_uses_aggregate(expr)


def _collect_refs(expr: Expression) -> list[ColumnRef]:
    refs: list[ColumnRef] = []

    def walk(node):
        if isinstance(node, ColumnRef):
            refs.append(node)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, LikeOp):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, CaseWhen):
            for cond, result in node.whens:
                walk(cond)
                walk(result)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, Cast):
            walk(node.operand)

    walk(expr)
    return refs


def _strip_prefix(expr: Expression, alias: str,
                  shape: FrameShape) -> Expression:
    """Rewrite refs resolved as ``alias.col`` down to bare ``col``."""
    prefix = f"{alias}."

    def walk(node):
        if isinstance(node, ColumnRef):
            resolved = shape.resolve(node)
            return ColumnRef(resolved[len(prefix):])
        if isinstance(node, UnaryOp):
            return dataclasses.replace(node, operand=walk(node.operand))
        if isinstance(node, BinaryOp):
            return dataclasses.replace(node, left=walk(node.left),
                                       right=walk(node.right))
        if isinstance(node, FunctionCall):
            return dataclasses.replace(
                node, args=tuple(walk(a) for a in node.args))
        if isinstance(node, InList):
            return dataclasses.replace(
                node, operand=walk(node.operand),
                items=tuple(walk(i) for i in node.items))
        if isinstance(node, Between):
            return dataclasses.replace(
                node, operand=walk(node.operand), low=walk(node.low),
                high=walk(node.high))
        if isinstance(node, IsNull):
            return dataclasses.replace(node, operand=walk(node.operand))
        if isinstance(node, LikeOp):
            return dataclasses.replace(
                node, operand=walk(node.operand),
                pattern=walk(node.pattern))
        if isinstance(node, CaseWhen):
            whens = tuple((walk(c), walk(r)) for c, r in node.whens)
            default = walk(node.default) if node.default else None
            return dataclasses.replace(node, whens=whens, default=default)
        if isinstance(node, Cast):
            return dataclasses.replace(node, operand=walk(node.operand))
        return node

    return walk(expr)


# --- the rewrites ------------------------------------------------------------


def _plan_join_pushdown(stmt: SelectStatement,
                        tables: Mapping[str, DataFrame]):
    """Split WHERE conjuncts onto their single source tables.

    Safe only when the *whole* WHERE and every ON predicate are total:
    pushdown changes which rows (and row pairs) ever see an expression,
    which is invisible exactly when no expression can raise.  Right-side
    pushes additionally require the target join to be INNER — filtering
    the nullable side of a LEFT JOIN changes null-extension.
    """
    parts = [(stmt.table_alias or stmt.table,
              resolve_table(stmt.table, tables))]
    for join in stmt.joins:
        parts.append((join.alias or join.table,
                      resolve_table(join.table, tables)))
    shape = FrameShape.for_join(parts)

    aliases = [alias for alias, _ in parts]
    if len(set(aliases)) != len(aliases):
        # Duplicate aliases make prefix ownership ambiguous; leave the
        # statement for the runtime to reject (or resolve) unrewritten.
        return stmt, (), shape
    if stmt.where is None:
        return stmt, (), shape
    if not is_total(stmt.where, shape):
        return stmt, (), shape
    if not all(is_total(join.on, shape) for join in stmt.joins):
        return stmt, (), shape
    pushed: list[tuple[int, Expression]] = []
    remaining: list[Expression] = []
    for conjunct in split_conjuncts(stmt.where):
        owners = set()
        for ref in _collect_refs(conjunct):
            resolved = shape.resolve(ref)
            owners.add(resolved.split(".", 1)[0])
        target = None
        if len(owners) == 1:
            alias = owners.pop()
            position = aliases.index(alias) - 1
            if position < 0 or stmt.joins[position].kind == "inner":
                target = (position, alias)
        if target is None:
            remaining.append(conjunct)
            continue
        position, alias = target
        source_shape = FrameShape(dict(parts)[alias])
        stripped = _strip_prefix(conjunct, alias, shape)
        # The stripped form must still be total against the bare source
        # frame (it is, by construction; verify rather than trust).
        if is_total(stripped, source_shape):
            pushed.append((position, stripped))
        else:  # pragma: no cover - defensive
            remaining.append(conjunct)
    if not pushed:
        return stmt, (), shape
    stmt = dataclasses.replace(stmt, where=conjoin(remaining))
    return stmt, tuple(pushed), shape


def _plan_having_pushdown(stmt: SelectStatement, shape: FrameShape):
    """Move key-only, aggregate-free HAVING conjuncts into WHERE.

    Group keys are uniform within a group, so a key-only predicate
    filters identical row sets before or after bucketing; totality of
    the whole HAVING keeps error behaviour identical on both paths.
    """
    if stmt.having is None or not stmt.group_by or stmt.joins:
        return stmt, False
    alias_map = {item.alias: item.expression
                 for item in stmt.items if item.alias}
    resolved_having = resolve_aliases(stmt.having, alias_map)
    if not is_total(resolved_having, shape, group=True):
        return stmt, False

    key_names = set()
    for expr in stmt.group_by:
        if (isinstance(expr, ColumnRef) and expr.table is None
                and not shape.has_exact(expr.name)
                and expr.name in alias_map):
            expr = alias_map[expr.name]
        if isinstance(expr, ColumnRef):
            resolved = shape.resolve(expr)
            if resolved is not None:
                key_names.add(resolved)

    # Split the *original* HAVING so the conjuncts left behind are still
    # unresolved — the executor alias-resolves HAVING itself, and handing
    # it a pre-resolved tree would substitute aliases twice (wrong when
    # an alias shadows a source column, e.g. ``value+1 AS value``).  The
    # pushed conjuncts go into WHERE pre-resolved, because WHERE never
    # sees alias substitution.
    pushed: list[Expression] = []
    remaining: list[Expression] = []
    for conjunct in split_conjuncts(stmt.having):
        resolved = resolve_aliases(conjunct, alias_map)
        refs = _collect_refs(resolved)
        if (not _expression_uses_aggregate(resolved)
                and refs
                and all(shape.resolve(ref) in key_names for ref in refs)
                and is_total(resolved, shape)):
            pushed.append(resolved)
        else:
            remaining.append(conjunct)
    if not pushed:
        return stmt, False
    new_where = conjoin(([stmt.where] if stmt.where is not None else [])
                        + pushed)
    stmt = dataclasses.replace(stmt, where=new_where,
                               having=conjoin(remaining))
    return stmt, True


def _plan_limit_scan(stmt: SelectStatement,
                     shape: FrameShape) -> int | None:
    """Row budget for an early-stopping scan, or None.

    Only plain pipelines (no grouping, ordering, or DISTINCT) can stop
    early, and only when neither the WHERE mask nor any select item can
    raise on the rows the scan skips.
    """
    if (stmt.limit is None or stmt.group_by or stmt.having is not None
            or stmt.order_by or stmt.distinct or stmt.joins):
        return None
    for item in stmt.items:
        if isinstance(item.expression, Star):
            continue
        if _expression_uses_aggregate(item.expression):
            return None
        if not is_total(item.expression, shape):
            return None
    if stmt.where is not None and not is_total(stmt.where, shape):
        return None
    return stmt.offset + stmt.limit


# --- entry point -------------------------------------------------------------


def _schema_signature(stmt: SelectStatement,
                      tables: Mapping[str, DataFrame]) -> tuple:
    names = [stmt.table] + [join.table for join in stmt.joins]
    signature = []
    for name in names:
        frame = resolve_table(name, tables)
        signature.append((tuple(frame.columns),
                          tuple(frame.column(c).dtype
                                for c in frame.columns)))
    return tuple(signature)


def plan_select(stmt: SelectStatement,
                tables: Mapping[str, DataFrame]) -> PlannedSelect:
    """Rewrite ``stmt`` for execution against ``tables`` (memoised)."""
    from repro.sqlengine.plancache import (
        DEFAULT_REWRITE_CACHE,
        plan_cache_enabled,
    )
    from repro.telemetry.metrics import GLOBAL_REGISTRY

    signature = _schema_signature(stmt, tables)
    # repr, not the statement itself: dataclass equality conflates
    # Literal(7) / Literal(7.0) / Literal(True), which are distinct
    # statements that must not share a cached plan.
    key = (repr(stmt), signature)
    caching = plan_cache_enabled()
    if caching:
        lookups = GLOBAL_REGISTRY.counter(
            "cache.lookups", "cache lookups by cache name and result")
        cached = DEFAULT_REWRITE_CACHE.get(key)
        if cached is not None:
            lookups.inc(cache="sql_rewrite", result="hit")
            return cached
        lookups.inc(cache="sql_rewrite", result="miss")

    rewrites: list[str] = []
    pushed: tuple[tuple[int, Expression], ...] = ()
    scan_limit = None
    original = stmt
    try:
        if stmt.joins:
            stmt, pushed, shape = _plan_join_pushdown(stmt, tables)
            if pushed:
                rewrites.append("join_pushdown")
        else:
            shape = FrameShape(resolve_table(stmt.table, tables))
            stmt, moved = _plan_having_pushdown(stmt, shape)
            if moved:
                rewrites.append("having_pushdown")
        scan_limit = _plan_limit_scan(stmt, shape)
        if scan_limit is not None:
            rewrites.append("limit_scan")
    except TableError:
        # Malformed shapes (duplicate prefixed columns, …) are the
        # runtime's errors to raise, in its own order — don't plan.
        stmt, rewrites, pushed, scan_limit = original, [], (), None

    planned = PlannedSelect(stmt=stmt, pushed=pushed,
                            scan_limit=scan_limit,
                            rewrites=tuple(rewrites))
    if caching:
        DEFAULT_REWRITE_CACHE.put(key, planned)
    return planned
