"""Agent specifications: recipes for building per-request agents.

Workers never share agents.  Each request is answered by a fresh runner
built from an :class:`AgentSpec` with the request's seed, so every model
holds its own draw state and executor registry — the property that makes
pool results independent of worker count and dispatch order.  Any object
with the same ``build`` / ``build_forced`` / ``config_key`` surface can
stand in for :class:`AgentSpec` (tests use stubs with scripted models).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import ReActTableAgent
from repro.core.voting import (
    DEFAULT_VOTE_SAMPLES,
    DEFAULT_VOTE_TEMPERATURE,
    make_voter,
)
from repro.datasets.spec import QuestionBank
from repro.executors.registry import default_registry, sql_only_registry
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedTQAModel
from repro.strategies.ensemble import HeterogeneousEnsemble
from repro.strategies.registry import is_ensemble_spec, parse_ensemble_spec

__all__ = ["AgentSpec"]


@dataclass(frozen=True)
class AgentSpec:
    """Everything needed to build one request's agent, minus the seed.

    Mirrors the knobs of the ``evaluate`` CLI: model profile, voting
    method and sample count, executor-registry flavour, and the optional
    iteration cap.  ``bank`` is the simulated model's question corpus.
    """

    bank: QuestionBank
    profile: str = "codex-sim"
    voting: str = "none"
    samples: int = DEFAULT_VOTE_SAMPLES
    temperature: float = DEFAULT_VOTE_TEMPERATURE
    sql_only: bool = False
    sql_backend: str = "sqlite"
    max_iterations: int | None = None
    #: A registered strategy name, or an ``ensemble:a+b+c`` spec (which
    #: overrides ``voting`` — the ensemble is its own voting method).
    strategy: str = "react"

    @property
    def config_key(self) -> str:
        """Canonical config string, part of every cache fingerprint."""
        return ("profile={};voting={};samples={};temperature={};"
                "sql_only={};sql_backend={};max_iterations={};"
                "strategy={}").format(
            self.profile, self.voting, self.samples, self.temperature,
            self.sql_only, self.sql_backend, self.max_iterations,
            self.strategy)

    def _model(self, seed: int) -> SimulatedTQAModel:
        return SimulatedTQAModel(self.bank, get_profile(self.profile),
                                 seed=seed)

    def _registry(self):
        if self.sql_only:
            return sql_only_registry()
        return default_registry(sql_backend=self.sql_backend)

    def build(self, seed: int):
        """A fresh runner (agent, voter or ensemble) seeded per request."""
        if is_ensemble_spec(self.strategy):
            return HeterogeneousEnsemble(
                self._model(seed), parse_ensemble_spec(self.strategy),
                registry=self._registry(),
                max_iterations=self.max_iterations)
        kwargs = {"registry": self._registry()}
        if self.strategy != "react":
            kwargs["strategy"] = self.strategy
        if self.max_iterations is not None:
            kwargs["max_iterations"] = self.max_iterations
        if self.voting not in ("none", "greedy"):
            kwargs["n"] = self.samples
            kwargs["temperature"] = self.temperature
        return make_voter(self.voting, self._model(seed), **kwargs)

    def build_forced(self, seed: int) -> ReActTableAgent:
        """The degradation runner: one iteration, forced direct answer.

        Always the react ladder regardless of ``strategy``: forcing is a
        chain-engine capability, and the degraded rung's contract is "one
        model call, direct answer" for every strategy.
        """
        return ReActTableAgent(self._model(seed),
                               registry=self._registry(),
                               max_iterations=1)
