"""Token definitions for the native SQL engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    DOT = "dot"
    SEMICOLON = "semicolon"
    STAR = "star"
    EOF = "eof"


#: Reserved words recognised by the parser (upper-case canonical form).
KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "IN", "BETWEEN", "LIKE", "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE",
    "END", "CAST", "TRUE", "FALSE",
    "JOIN", "INNER", "LEFT", "OUTER", "ON",
})


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.upper in words

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}@{self.position})"
