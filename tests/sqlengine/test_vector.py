"""Unit tests for the vectorized (column-at-a-time) execution tier."""

import pytest

from repro.sqlengine import execute_sql, parse_expression
from repro.sqlengine.planner import FrameShape
from repro.sqlengine.vector import (
    VectorContext,
    compile_vector,
    distinct_indexes,
    truthy_indexes,
    vector_enabled,
)
from repro.table import DataFrame


@pytest.fixture
def frame() -> DataFrame:
    return DataFrame({
        "a": [1, 2, None, 4, 5],
        "b": [10.0, None, 30.0, 2.5, 5.0],
        "s": ["alpha", "Beta", None, "delta", "Echo"],
    }, name="T0")


def _kernel(frame: DataFrame, text: str):
    return compile_vector(parse_expression(text), FrameShape(frame))


def _run(frame: DataFrame, text: str):
    fn = _kernel(frame, text)
    assert fn is not None, f"expected a kernel for {text!r}"
    return list(fn(VectorContext(frame)))


class TestFlag:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SQL_VECTOR", raising=False)
        assert vector_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_VECTOR", "0")
        assert not vector_enabled()


class TestKernels:
    def test_column_passthrough(self, frame):
        assert _run(frame, "a") == [1, 2, None, 4, 5]

    def test_numeric_comparison_null_mask(self, frame):
        assert _run(frame, "a > 1") == [False, True, None, True, True]

    def test_text_comparison_type_classes(self, frame):
        # Numbers order before text in SQLite's type-class ordering,
        # so a numeric cell would be < any string; here all text.
        assert _run(frame, "s < 'c'") == [True, True, None, False, True]

    def test_arithmetic_and_division_by_zero(self, frame):
        assert _run(frame, "a * 2 + 1") == [3, 5, None, 9, 11]
        assert _run(frame, "a / 0") == [None] * 5

    def test_eager_and_matches_three_valued_logic(self, frame):
        # NULL AND False = False, NULL AND True = NULL.
        assert _run(frame, "a > 1 AND b > 3") == \
            [False, None, None, False, True]

    def test_eager_or(self, frame):
        assert _run(frame, "a > 4 OR b > 3") == \
            [True, None, True, False, True]

    def test_like_literal_pattern(self, frame):
        assert _run(frame, "s LIKE '%a'") == \
            [True, True, None, True, False]

    def test_case_when(self, frame):
        got = _run(frame, "CASE WHEN a > 3 THEN 'hi' ELSE 'lo' END")
        assert got == ["lo", "lo", "lo", "hi", "hi"]

    def test_in_list_with_null_item(self, frame):
        # 1 IN (1, NULL) is True; 2 IN (1, NULL) is NULL.
        assert _run(frame, "a IN (1, NULL)") == \
            [True, None, None, None, None]

    def test_between(self, frame):
        assert _run(frame, "a BETWEEN 2 AND 4") == \
            [False, True, None, True, False]

    def test_is_null(self, frame):
        assert _run(frame, "a IS NULL") == \
            [False, False, True, False, False]

    def test_scalar_function(self, frame):
        assert _run(frame, "UPPER(s)") == \
            ["ALPHA", "BETA", None, "DELTA", "ECHO"]


class TestFallback:
    def test_unresolvable_column_is_not_total(self, frame):
        assert _kernel(frame, "missing > 1") is None

    def test_unsafe_function_is_not_total(self, frame):
        # sqrt raises on negative input, so it never vectorizes.
        assert _kernel(frame, "SQRT(a)") is None

    def test_aggregate_is_not_total_rowwise(self, frame):
        assert _kernel(frame, "SUM(a)") is None

    def test_non_numeric_arithmetic_is_not_total(self, frame):
        assert _kernel(frame, "s + 1") is None


class TestTruthyIndexes:
    def test_filters_and_offsets(self):
        mask = [True, False, None, True, 1, 0]
        assert truthy_indexes(mask) == [0, 3, 4]
        assert truthy_indexes(mask, base=10) == [10, 13, 14]


class TestDistinctIndexes:
    def test_multi_column_first_occurrence_order(self):
        frame = DataFrame({
            "a": [1, 2, 1, 2, 1],
            "b": ["x", "y", "x", "y", "z"],
        }, name="T0")
        assert distinct_indexes(frame) == [0, 1, 4]

    def test_type_tagged_keys_keep_lookalikes_distinct(self):
        # 1 / 1.0 / True hash and compare equal in Python; the SQL
        # engine (like the row scan it replaces) keeps them distinct.
        frame = DataFrame({"a": [1, 1.0, True, 1]}, name="T0")
        assert distinct_indexes(frame) == [0, 1, 2]

    def test_nulls_dedupe_to_one_row(self):
        frame = DataFrame({"a": [None, 1, None]}, name="T0")
        assert distinct_indexes(frame) == [0, 1]

    def test_empty_frame(self):
        frame = DataFrame({"a": []}, name="T0")
        assert distinct_indexes(frame) == []

    def test_matches_row_scan_exactly(self):
        import random

        from repro.table.ops import distinct as row_distinct
        rng = random.Random(13)
        frame = DataFrame({
            "a": [rng.choice([1, 2, None, 1.0, "1"])
                  for _ in range(60)],
            "b": [rng.choice(["x", "y"]) for _ in range(60)],
        }, name="T0")
        vectorized = frame.take(distinct_indexes(frame))
        assert vectorized.to_rows() == row_distinct(frame).to_rows()


class TestCaching:
    def test_full_range_kernels_cached_on_frame(self, frame):
        fn = _kernel(frame, "a * 2 + 1")
        first = fn(VectorContext(frame))
        assert frame.kernel_cache(), "full-range result should be cached"
        again = fn(VectorContext(frame))
        assert first is again

    def test_chunked_contexts_stay_out_of_frame_cache(self, frame):
        fn = _kernel(frame, "a * 3 + 1")
        before = dict(frame.kernel_cache())
        fn(VectorContext(frame, 1, 3))
        assert dict(frame.kernel_cache()) == before

    def test_literal_types_do_not_collide(self):
        # Literal(7) == Literal(7.0) == Literal(True) under dataclass
        # equality; the kernel/plan caches must still keep them apart.
        frame = DataFrame({"x": [1, 2]}, name="T0")
        catalog = {"T0": frame}
        assert execute_sql("SELECT 7 / 2 FROM T0", catalog).to_rows() \
            == [(3,), (3,)]
        assert execute_sql("SELECT 7.0 / 2 FROM T0", catalog).to_rows() \
            == [(3.5,), (3.5,)]
        assert execute_sql("SELECT 1 = 1 FROM T0", catalog).to_rows() \
            == [(True,), (True,)]

    def test_setitem_invalidates_kernel_cache(self):
        frame = DataFrame({"x": [1, 2, 3]}, name="T0")
        catalog = {"T0": frame}
        sql = "SELECT x * 10 FROM T0 WHERE x + 0 > 1"
        assert execute_sql(sql, catalog).to_rows() == [(20,), (30,)]
        frame["x"] = [5, 6, 1]
        assert execute_sql(sql, catalog).to_rows() == [(50,), (60,)]


class TestNumpy:
    def test_numpy_matches_plain_kernels(self, monkeypatch):
        pytest.importorskip("numpy")
        frame = DataFrame({"v": list(range(50))}, name="T0")
        catalog = {"T0": frame}
        sql = "SELECT v FROM T0 WHERE v >= 25"
        monkeypatch.delenv("REPRO_SQL_NUMPY", raising=False)
        plain = execute_sql(sql, catalog).to_rows()
        numpy_frame = DataFrame({"v": list(range(50))}, name="T0")
        monkeypatch.setenv("REPRO_SQL_NUMPY", "1")
        accelerated = execute_sql(sql, {"T0": numpy_frame}).to_rows()
        assert accelerated == plain

    def test_numpy_rejects_columns_with_nulls(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_SQL_NUMPY", "1")
        frame = DataFrame({"v": [1, None, 3]}, name="T0")
        ctx = VectorContext(frame)
        assert ctx.numpy_column("v") is None


class TestGroupBySemantics:
    """NULL and mixed-dtype group keys on every execution tier."""

    MODES = ({}, {"REPRO_SQL_VECTOR": "0"}, {"REPRO_SQL_COMPILE": "0"})

    def _run_modes(self, sql, catalog, monkeypatch):
        outcomes = []
        for env in self.MODES:
            for key in ("REPRO_SQL_VECTOR", "REPRO_SQL_COMPILE"):
                monkeypatch.delenv(key, raising=False)
            for key, value in env.items():
                monkeypatch.setenv(key, value)
            result = execute_sql(sql, catalog)
            outcomes.append((result.columns, result.to_rows()))
        for key in ("REPRO_SQL_VECTOR", "REPRO_SQL_COMPILE"):
            monkeypatch.delenv(key, raising=False)
        assert outcomes[0] == outcomes[1] == outcomes[2]
        return outcomes[0]

    def test_null_group_keys_form_one_group(self, monkeypatch):
        frame = DataFrame({
            "k": ["a", None, "a", None, "b"],
            "v": [1, 2, 3, 4, 5],
        }, name="T0")
        columns, rows = self._run_modes(
            "SELECT k, COUNT(*) AS n, SUM(v) FROM T0 "
            "GROUP BY k ORDER BY n DESC, k",
            {"T0": frame}, monkeypatch)
        # NULLs sort last within the n=2 tie (engine convention).
        assert rows == [("a", 2, 4), (None, 2, 6), ("b", 1, 5)]

    def test_mixed_dtype_keys(self, monkeypatch):
        frame = DataFrame({
            "k": [1, "1", 1.0, "one", None, 1],
            "v": [10, 20, 30, 40, 50, 60],
        }, name="T0")
        _, rows = self._run_modes(
            "SELECT COUNT(*) AS n, SUM(v) AS s FROM T0 "
            "GROUP BY k ORDER BY s",
            {"T0": frame}, monkeypatch)
        # Whatever the grouping classes are, all tiers must agree and
        # cover every row exactly once.
        assert sum(n for n, _ in rows) == 6
        assert sum(s for _, s in rows) == 210
