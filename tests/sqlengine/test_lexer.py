"""Tests for the SQL tokeniser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlengine import tokenize
from repro.sqlengine.tokens import TokenKind


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def texts(sql):
    return [token.text for token in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_recognised(self):
        tokens = tokenize("SELECT a FROM t")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].upper == "SELECT"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind is TokenKind.KEYWORD

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz2")
        assert all(token.kind is TokenKind.IDENT for token in tokens[:-1])

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("a")[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert kinds("( ) , ; . *")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.COMMA,
            TokenKind.SEMICOLON, TokenKind.DOT, TokenKind.STAR]


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        token = tokenize('"My Column"')[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "My Column"

    def test_backtick(self):
        assert tokenize("`weird name`")[0].text == "weird name"

    def test_brackets(self):
        assert tokenize("[col 1]")[0].text == "col 1"

    def test_unterminated_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')


class TestNumbers:
    @pytest.mark.parametrize("text", ["1", "42", "3.14", ".5", "1e3",
                                      "2.5E-2"])
    def test_number_forms(self, text):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.NUMBER
        assert token.text == text

    def test_number_then_dot_access(self):
        tokens = tokenize("1.5.")
        assert tokens[0].text == "1.5"
        assert tokens[1].kind is TokenKind.DOT


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "||", "=",
                                    "<", ">", "+", "-", "/", "%"])
    def test_operator_forms(self, op):
        token = tokenize(op)[0]
        assert token.kind is TokenKind.OPERATOR
        assert token.text == op


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_end(self):
        assert texts("a -- trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a /* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as exc_info:
            tokenize("a ? b")
        assert exc_info.value.position is not None
