"""Differential parity: AsyncServer vs WorkerPool, response for response.

The async serving core replaces the thread pool's substrate, not its
semantics.  For every request the two paths must return bit-identical
responses — same answers, iterations, forcing flags, handling events,
attempt counts, error strings and outcome classes — across the whole
outcome taxonomy: ``ok``, ``degraded``, ``deadline_exceeded`` and both
error classes.  (``rejected`` is async-only by design — the pool buffers
instead of shedding — and is pinned separately below.)
"""

import asyncio

import pytest

from repro.aio import AsyncServer
from repro.core import ReActTableAgent
from repro.datasets import generate_dataset
from repro.errors import TransientModelError
from repro.llm.base import LanguageModel, ScriptedModel
from repro.serving import (
    AgentSpec,
    RetryPolicy,
    TQARequest,
    WorkerPool,
)
from repro.serving.request import OUTCOMES


@pytest.fixture(scope="module")
def wikitq_parity():
    """The 200+ question differential suite (seeded, module-cached)."""
    return generate_dataset("wikitq", size=220, seed=77)


def pool_responses(spec, bench, *, policy=None, batch_scheduler=False,
                   workers=8, seed=1):
    with WorkerPool(spec, workers=workers, policy=policy,
                    batch_scheduler=batch_scheduler,
                    queue_capacity=1024,
                    sleep=lambda _delay: None) as pool:
        slots = [pool.submit(ex.table, ex.question, seed=seed, uid=ex.uid)
                 for ex in bench.examples]
        return [slot.result(timeout=60) for slot in slots]


def async_responses(spec, bench, *, policy=None, max_inflight=16, seed=1):
    async def _sleep(_delay):
        return None

    async def scenario():
        async with AsyncServer(spec, max_inflight=max_inflight,
                               max_queued=None, policy=policy,
                               sleep=_sleep) as server:
            tasks = [asyncio.create_task(server.answer(TQARequest(
                table=ex.table, question=ex.question, seed=seed,
                uid=ex.uid))) for ex in bench.examples]
            return await asyncio.gather(*tasks)

    return asyncio.run(scenario())


def assert_bit_identical(pool, async_, *, check_errors=True):
    assert len(pool) == len(async_)
    for old, new in zip(pool, async_):
        assert new.uid == old.uid
        assert new.answer == old.answer, new.uid
        assert new.iterations == old.iterations, new.uid
        assert new.forced == old.forced, new.uid
        assert new.handling_events == old.handling_events, new.uid
        assert new.degraded == old.degraded, new.uid
        assert new.attempts == old.attempts, new.uid
        assert new.outcome == old.outcome, new.uid
        if check_errors:
            assert new.error == old.error, new.uid


class TestHealthyParity:
    def test_greedy_suite_bit_identical(self, wikitq_parity):
        """220 greedy questions: substrate swap, zero drift."""
        spec = AgentSpec(bank=wikitq_parity.bank)
        expected = pool_responses(spec, wikitq_parity)
        actual = async_responses(spec, wikitq_parity)
        assert_bit_identical(expected, actual)
        assert {r.outcome for r in actual} == {"ok"}

    def test_voted_suite_matches_scheduled_pool(self, wikitq_parity):
        """s-vote chains: the async batcher must reproduce the pool's
        ``batch_scheduler=True`` contract (coalesced ticks), which is
        always on in the async server."""
        spec = AgentSpec(bank=wikitq_parity.bank, voting="s-vote",
                         samples=3)
        subset = type(wikitq_parity)(
            name=wikitq_parity.name, examples=wikitq_parity.examples[:40],
            bank=wikitq_parity.bank)
        expected = pool_responses(spec, subset, batch_scheduler=True)
        actual = async_responses(spec, subset)
        assert_bit_identical(expected, actual)


class TestDegradedParity:
    def test_expired_deadlines_degrade_identically(self, wikitq_small):
        """Every attempt times out on both substrates; both land on the
        same forced direct answer from ``build_forced(request.seed)``."""
        spec = AgentSpec(bank=wikitq_small.bank)
        policy = RetryPolicy(timeout=1e-9, max_retries=1)
        expected = pool_responses(spec, wikitq_small, policy=policy,
                                  workers=4)
        actual = async_responses(spec, wikitq_small, policy=policy,
                                 max_inflight=8)
        # Timeout error strings embed wall-clock remaining time; compare
        # everything else bit-for-bit.
        assert_bit_identical(expected, actual, check_errors=False)
        assert {r.outcome for r in actual} == {"degraded"}
        assert all(r.attempts == 2 for r in actual)

    def test_deadline_exceeded_identically(self, wikitq_small):
        spec = AgentSpec(bank=wikitq_small.bank)
        policy = RetryPolicy(timeout=1e-9, max_retries=0,
                             degrade_on_exhaustion=False)
        expected = pool_responses(spec, wikitq_small, policy=policy,
                                  workers=4)
        actual = async_responses(spec, wikitq_small, policy=policy,
                                 max_inflight=8)
        assert_bit_identical(expected, actual, check_errors=False)
        assert {r.outcome for r in actual} == {"deadline_exceeded"}
        assert all(r.answer == [] for r in actual)


class _TransientSpec:
    """Agents whose model always fails with a retryable error."""

    config_key = "transient-stub"

    class _Model(LanguageModel):
        name = "transient"
        supports_logprobs = False

        def complete(self, prompt, *, temperature=0.0, n=1):
            raise TransientModelError("backend down")

    def build(self, seed):
        return ReActTableAgent(self._Model())

    def build_forced(self, seed):
        return ReActTableAgent(self._Model(), max_iterations=1)


class _BrokenSpec:
    """A spec whose builds fail outright (permanent error class)."""

    config_key = "broken-stub"

    def build(self, seed):
        raise RuntimeError("cannot build agent")

    build_forced = build


class TestErrorClassParity:
    def test_transient_errors_classified_identically(self, wikitq_small):
        spec = _TransientSpec()
        policy = RetryPolicy(max_retries=2, degrade_on_exhaustion=False)
        expected = pool_responses(spec, wikitq_small, policy=policy,
                                  workers=4)
        actual = async_responses(spec, wikitq_small, policy=policy,
                                 max_inflight=8)
        assert_bit_identical(expected, actual)
        assert {r.outcome for r in actual} == {"error_transient"}
        assert all(r.attempts == 3 for r in actual)

    def test_permanent_errors_classified_identically(self, wikitq_small):
        spec = _BrokenSpec()
        policy = RetryPolicy(max_retries=0)
        expected = pool_responses(spec, wikitq_small, policy=policy,
                                  workers=4)
        actual = async_responses(spec, wikitq_small, policy=policy,
                                 max_inflight=8)
        assert_bit_identical(expected, actual)
        assert {r.outcome for r in actual} == {"error_permanent"}


class TestRejectedClass:
    def test_rejection_is_a_registered_classified_outcome(self,
                                                          wikitq_small):
        """The async-only outcome still speaks the shared taxonomy: it
        is in OUTCOMES, carries no answer, burned no attempts."""
        assert "rejected" in OUTCOMES
        spec = AgentSpec(bank=wikitq_small.bank)

        async def scenario():
            async with AsyncServer(spec, max_inflight=1,
                                   max_queued=0) as server:
                tasks = [asyncio.create_task(server.answer(TQARequest(
                    table=ex.table, question=ex.question, seed=1,
                    uid=ex.uid))) for ex in wikitq_small.examples[:8]]
                return await asyncio.gather(*tasks)

        responses = asyncio.run(scenario())
        rejected = [r for r in responses if r.outcome == "rejected"]
        assert rejected
        for r in rejected:
            assert r.answer == [] and r.attempts == 0 and r.error
