"""Adapter for real completion APIs.

The reproduction runs fully offline, but the agents accept any
:class:`LanguageModel`.  :class:`CallableModel` wraps a plain callable —
an OpenAI-style client call, an HTTP request, anything — so plugging a
real LLM into the framework is one lambda::

    def call_api(prompt, temperature, n):
        response = client.completions.create(
            model="code-davinci-002", prompt=prompt,
            temperature=temperature, n=n, logprobs=1, ...)
        return [(choice.text, sum(choice.logprobs.token_logprobs))
                for choice in response.choices]

    model = CallableModel(call_api, name="code-davinci-002")
    agent = ReActTableAgent(model)

:class:`RetryingModel` adds bounded retries with deterministic backoff
hooks around any model — transient API failures should not kill a
benchmark run.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ModelError
from repro.llm.base import Completion, LanguageModel

__all__ = ["CallableModel", "RetryingModel"]


class CallableModel(LanguageModel):
    """Wrap ``fn(prompt, temperature, n)`` as a :class:`LanguageModel`.

    ``fn`` may return a list of strings, of ``(text, logprob)`` pairs, or
    of :class:`Completion` objects.
    """

    def __init__(self, fn: Callable, *, name: str = "callable",
                 supports_logprobs: bool = True):
        self._fn = fn
        self.name = name
        self.supports_logprobs = supports_logprobs

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        raw = self._fn(prompt, temperature, n)
        completions = [self._coerce(item) for item in raw]
        if len(completions) != n:
            raise ModelError(
                f"backend returned {len(completions)} completions, "
                f"expected {n}")
        return completions

    def _coerce(self, item) -> Completion:
        if isinstance(item, Completion):
            return item
        if isinstance(item, str):
            return Completion(item)
        if isinstance(item, (tuple, list)) and len(item) == 2:
            text, logprob = item
            return Completion(str(text),
                              None if logprob is None else float(logprob))
        raise ModelError(
            f"backend returned an unsupported completion shape: "
            f"{type(item).__name__}")


class RetryingModel(LanguageModel):
    """Retry transient model failures a bounded number of times.

    Exceptions of the types in ``retry_on`` are retried up to
    ``max_retries`` times; the last failure is re-raised wrapped in
    :class:`ModelError`.  ``on_retry`` (if given) is called with
    ``(attempt, exception)`` — hook in sleeps or logging there.
    """

    def __init__(self, inner: LanguageModel, *, max_retries: int = 2,
                 retry_on: tuple[type[Exception], ...] = (Exception,),
                 on_retry: Callable | None = None):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.inner = inner
        self.name = inner.name
        self.max_retries = max_retries
        self.retry_on = retry_on
        self.on_retry = on_retry
        self.retries_used = 0

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.inner.complete(prompt,
                                           temperature=temperature, n=n)
            except self.retry_on as exc:
                last_error = exc
                if attempt < self.max_retries:
                    self.retries_used += 1
                    if self.on_retry is not None:
                        self.on_retry(attempt + 1, exc)
        raise ModelError(
            f"model {self.name!r} failed after "
            f"{self.max_retries + 1} attempts: {last_error}"
        ) from last_error
