"""Tests for the chain tracer and agent instrumentation."""

import json

from repro.core import ReActTableAgent
from repro.llm import ScriptedModel
from repro.tracing import ChainTracer


QUESTION = "which country had the most cyclists finish in the top 10?"


def run_traced(cyclists, outputs):
    tracer = ChainTracer()
    agent = ReActTableAgent(ScriptedModel(outputs), tracer=tracer)
    result = agent.run(cyclists, QUESTION)
    return tracer, result


class TestChainTracer:
    def test_happy_path_event_sequence(self, cyclists):
        tracer, _ = run_traced(cyclists, [
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: Answer: ```done```.",
        ])
        kinds = [event.kind for event in tracer.events]
        assert kinds == ["start", "prompt", "action", "execution",
                         "prompt", "action", "end"]

    def test_execution_event_details(self, cyclists):
        tracer, _ = run_traced(cyclists, [
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: Answer: ```done```.",
        ])
        execution = next(e for e in tracer.events
                         if e.kind == "execution")
        assert execution.data["language"] == "sql"
        assert execution.data["failed"] is False
        assert execution.data["rows"] == 4

    def test_failed_execution_traced(self, cyclists):
        tracer, _ = run_traced(cyclists, [
            "ReAcTable: SQL: ```SELECT Nope FROM T0;```.",
            "ReAcTable: Answer: ```forced```.",
        ])
        execution = next(e for e in tracer.events
                         if e.kind == "execution")
        assert execution.data["failed"] is True
        end = tracer.events[-1]
        assert end.data["forced"] is True

    def test_recovery_event(self, cyclists):
        tracer, _ = run_traced(cyclists, [
            "ReAcTable: SQL: ```SELECT Cyclist FROM T0;```.",
            "ReAcTable: SQL: ```SELECT Cyclist FROM T1 "
            "WHERE Rank <= 2;```.",
            "ReAcTable: Answer: ```x```.",
        ])
        assert any(e.kind == "recovery" for e in tracer.events)

    def test_multiple_chains_grouped(self, cyclists):
        tracer = ChainTracer()
        agent = ReActTableAgent(
            ScriptedModel(["ReAcTable: Answer: ```a```.",
                           "ReAcTable: Answer: ```b```."]),
            tracer=tracer)
        agent.run(cyclists, QUESTION)
        agent.run(cyclists, QUESTION)
        assert set(tracer.chains()) == {1, 2}
        assert tracer.counts()["start"] == 2

    def test_durations_monotonic(self, cyclists):
        tracer, _ = run_traced(cyclists,
                               ["ReAcTable: Answer: ```a```."])
        durations = tracer.chain_durations()
        assert durations[1] >= 0.0

    def test_payload_clipping(self, cyclists):
        tracer = ChainTracer(max_payload_chars=10)
        agent = ReActTableAgent(
            ScriptedModel(["ReAcTable: Answer: ```a```."]),
            tracer=tracer)
        agent.run(cyclists, "a very long question " * 10)
        start = tracer.events[0]
        assert len(start.data["question"]) <= 13  # 10 + "..."

    def test_jsonl_export(self, cyclists, tmp_path):
        tracer, _ = run_traced(cyclists,
                               ["ReAcTable: Answer: ```a```."])
        path = tracer.save(tmp_path / "trace.jsonl")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == len(tracer)
        first = json.loads(lines[0])
        assert first["kind"] == "start"
        assert "at" in first

    def test_untraced_agent_unaffected(self, cyclists):
        agent = ReActTableAgent(
            ScriptedModel(["ReAcTable: Answer: ```a```."]))
        result = agent.run(cyclists, QUESTION)
        assert result.answer == ["a"]


class TestExplicitChainEmission:
    def test_emit_for_addresses_an_explicit_chain(self):
        tracer = ChainTracer()
        tracer.emit_for(42, "serving_enqueue", uid="req-1")
        event = tracer.events[0]
        assert event.chain_id == 42
        assert event.kind == "serving_enqueue"
        assert event.iteration == 0
        assert event.data["uid"] == "req-1"

    def test_emit_for_is_thread_safe(self):
        import threading

        tracer = ChainTracer()

        def emitter(chain_id):
            for index in range(200):
                tracer.emit_for(chain_id, "serving_dispatch", index)

        threads = [threading.Thread(target=emitter, args=(cid,))
                   for cid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == 800
        chains = tracer.chains()
        assert {len(events) for events in chains.values()} == {200}


class TestContextLocalCurrentChain:
    def test_concurrent_emit_stays_on_the_starting_thread_chain(self):
        """The historical race: ``emit`` read a shared current-chain id.

        Each thread starts its own chain, then emits events tagged with
        the chain it *believes* it is on; with the ``ContextVar`` fix the
        recorded chain id must match the one that thread started even
        while siblings start chains concurrently.
        """
        import threading

        tracer = ChainTracer()
        barrier = threading.Barrier(6)
        mismatches = []

        def work():
            chain = tracer.start_chain("q")
            barrier.wait()  # every thread now races the others
            for index in range(50):
                tracer.emit("action", index, expected=chain)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for event in tracer.of_kind("action"):
            if event.chain_id != event.data["expected"]:
                mismatches.append(event)
        assert mismatches == []

    def test_tracer_exposes_its_telemetry_store(self, cyclists):
        tracer, _ = run_traced(cyclists,
                               ["ReAcTable: Answer: ```a```."])
        # Facade invariant: events live in the shared store, spans too.
        assert tracer.events is tracer.telemetry.events
        assert any(s.kind == "agent_run" for s in tracer.telemetry.spans)


class TestEnvelopeShadowGuard:
    def test_payload_keys_cannot_overwrite_envelope(self):
        from repro.tracing import ChainEvent

        tracer = ChainTracer()
        event = ChainEvent("fault", 7, 2, 0.25,
                           {"kind": "injected", "at": "model",
                            "site": "complete"})
        tracer.telemetry.record_event(event)
        record = tracer.events[0].to_dict()
        assert record["kind"] == "fault"
        assert record["chain_id"] == 7
        assert record["at"] == 0.25
        assert record["data_kind"] == "injected"
        assert record["data_at"] == "model"
        assert record["site"] == "complete"
