"""The simulated LLM: a deterministic, seeded stand-in for the GPT models.

The model receives *only the prompt string*, exactly like an API model.  It
re-parses the prompt (question, original table, current intermediate table,
steps taken so far), recovers the gold plan from its question bank (its
"pre-training corpus"), and emits the next action — either the correct
rendering of the next plan step, or a genuinely erroneous variant drawn
from a calibrated error model.  Everything downstream (executors, exception
handling, voting) then operates on real generated code.

Success of each step is a Bernoulli draw whose logit combines:

* the profile's ``skill``;
* the example's latent ``difficulty`` (scaled);
* per-question correlated noise (so repeated samples of a hard question
  fail *together* — without this, majority voting would be implausibly
  effective);
* a **grounding bonus** per intermediate table already produced — the
  paper's core mechanism (Section 4.3.1);
* a CoT penalty when the whole program must be produced in one completion;
* a temperature penalty;
* an extra penalty when a Python-affine step must be attempted in SQL
  (the executor ablation, Section 4.3.3).
"""

from __future__ import annotations

import hashlib
import math
import random

from repro.core.prompt import ParsedPrompt, parse_prompt
from repro.datasets.spec import QuestionBank, TQAExample
from repro.errors import UnknownQuestionError
from repro.executors.registry import ExecutorRegistry, default_registry
from repro.llm.base import Completion, LanguageModel
from repro.llm.profiles import CODEX_SIM, ModelProfile
from repro.plans.corruption import (
    ErrorMode,
    apply_corruption,
    corrupt_code_text,
)
from repro.plans.operators import break_operator, render_operator
from repro.plans.steps import AnswerStep, CodeStep, ExtractStep
from repro.table.frame import DataFrame
from repro.table.schema import is_missing

__all__ = ["SimulatedTQAModel"]


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    expz = math.exp(z)
    return expz / (1.0 + expz)


class SimulatedTQAModel(LanguageModel):
    """Offline stand-in for the completion models the paper uses."""

    def __init__(self, bank: QuestionBank,
                 profile: ModelProfile = CODEX_SIM, *, seed: int = 0):
        self.bank = bank
        self.profile = profile
        self.seed = seed
        self.name = profile.name
        self._draws = 0
        # Private registry for simulating the model's *internal* reasoning
        # about what its CoT code would produce (never shared with agents).
        self._internal: ExecutorRegistry = default_registry(
            sql_backend="sqlite")

    @property
    def supports_logprobs(self) -> bool:
        return self.profile.provides_logprobs

    def fork(self, seed: int) -> "SimulatedTQAModel":
        """A fresh model over the same corpus, reseeded with ``seed``.

        The fork starts with a zero draw counter, so its behaviour
        depends only on ``seed`` and the prompts it sees — never on what
        this instance completed before the fork.
        """
        return SimulatedTQAModel(self.bank, self.profile, seed=seed)

    # --- public API -----------------------------------------------------------

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        parsed = parse_prompt(prompt)
        if parsed.reflect:
            # A reflection request (repro.reflect): write a short verbal
            # diagnosis instead of the next action.
            return self._complete_reflection(parsed, temperature, n)
        try:
            example = self.bank.lookup(parsed.question, parsed.t0)
        except UnknownQuestionError:
            # Out-of-distribution question: the best a model can do is an
            # uncommitted direct answer.
            return [Completion("ReAcTable: Answer: ```unknown```.",
                               self._logprob_value(False, self._rng("oob")))
                    for _ in range(n)]
        completions = []
        base_draw = self._next_draw(temperature)
        batch_rng = self._rng("batch", example.uid, base_draw)
        for index in range(n):
            if index == 0 or temperature <= 0:
                draw = base_draw
            elif batch_rng.random() < self.profile.batch_diversity:
                draw = self._next_draw(temperature)
            else:
                draw = base_draw
            if parsed.chain_of_table:
                completions.append(
                    self._complete_chain_of_table(example, parsed,
                                                  temperature, draw))
            elif parsed.commented:
                completions.append(
                    self._complete_commented(example, parsed, temperature,
                                             draw))
            elif parsed.cot:
                completions.append(
                    self._complete_cot(example, parsed, temperature, draw))
            else:
                completions.append(
                    self._complete_react(example, parsed, temperature,
                                         draw))
        return completions

    # --- seeding helpers --------------------------------------------------------

    def _next_draw(self, temperature: float) -> int:
        if temperature <= 0:
            return 0  # greedy decoding is deterministic
        self._draws += 1
        return self._draws

    def _rng(self, *key) -> random.Random:
        hasher = hashlib.blake2b(digest_size=8)
        hasher.update(repr((self.seed, self.profile.name) + key)
                      .encode("utf-8"))
        return random.Random(int.from_bytes(hasher.digest(), "big"))

    def _question_noise(self, example: TQAExample) -> float:
        rng = self._rng("qnoise", example.uid)
        return rng.gauss(0.0, self.profile.question_noise)

    # --- probability model --------------------------------------------------------

    def _step_probability(self, example: TQAExample, step_index: int, *,
                          grounding: int, cot: bool, temperature: float,
                          sql_fallback: bool,
                          mental: bool = False,
                          demo_similarity: float = 0.0,
                          reflections: int = 0,
                          commented: bool = False) -> float:
        profile = self.profile
        z = profile.skill
        z -= profile.difficulty_scale * example.difficulty
        z -= self._question_noise(example)
        z += profile.demo_affinity * demo_similarity
        z += profile.reflection_bonus * min(reflections, 2)
        if cot:
            penalty = profile.cot_penalty
            if commented:
                # Plan comments scaffold the blind program partially.
                penalty *= max(0.0, 1.0 - profile.commented_relief)
            z -= penalty
            z -= profile.cot_temperature_sensitivity * temperature
        else:
            z += profile.grounding_bonus * min(grounding, 3)
            z -= profile.temperature_sensitivity * temperature
        if sql_fallback:
            z -= profile.sql_fallback_penalty
        if mental:
            z -= profile.mental_penalty
        return _sigmoid(z / profile.sample_noise)

    def _answer_probability(self, example: TQAExample, *,
                            temperature: float, cot: bool,
                            reflections: int = 0,
                            commented: bool = False) -> float:
        profile = self.profile
        z = profile.answer_skill
        z -= profile.difficulty_scale * example.difficulty * 0.55
        z -= self._question_noise(example) * 0.6
        z += profile.reflection_bonus * min(reflections, 2) * 0.5
        if cot:
            penalty = profile.cot_penalty
            if commented:
                penalty *= max(0.0, 1.0 - profile.commented_relief)
            z -= penalty * 0.5
            z -= profile.cot_temperature_sensitivity * temperature * 0.5
        else:
            z -= profile.temperature_sensitivity * temperature * 0.5
        return _sigmoid(z / profile.sample_noise)

    def _demo_similarity(self, example: TQAExample,
                         parsed: ParsedPrompt) -> float:
        """Similarity of the most relevant demonstration, in [0, 1]."""
        if not parsed.demo_questions or self.profile.demo_affinity == 0:
            return 0.0
        from repro.core.fewshot import question_similarity
        return max(question_similarity(example.question, demo)
                   for demo in parsed.demo_questions)

    def _logprob_value(self, correct: bool, rng: random.Random):
        if not self.profile.provides_logprobs:
            return None
        mean = (self.profile.logprob_correct_mean if correct
                else self.profile.logprob_wrong_mean)
        return rng.gauss(mean, self.profile.logprob_std)

    # --- ReAct-mode completion ---------------------------------------------------

    def _complete_react(self, example: TQAExample, parsed: ParsedPrompt,
                        temperature: float, draw: int) -> Completion:
        step_index = parsed.num_code_steps
        code_steps = example.plan.code_steps
        if parsed.force_answer or step_index >= len(code_steps):
            return self._emit_answer(example, parsed, temperature, draw)
        # Premature direct answer (more likely at high temperature).
        premature_rng = self._rng("premature", example.uid, step_index,
                                  draw)
        premature_p = self.profile.premature_answer_rate * (1 + temperature)
        if premature_rng.random() < premature_p:
            return self._emit_answer(example, parsed, temperature, draw)
        step = code_steps[step_index]
        sql_fallback = step.language not in parsed.languages
        if sql_fallback and not isinstance(step, ExtractStep):
            # No reasonable SQL surrogate: answer directly instead.
            return self._emit_answer(example, parsed, temperature, draw)
        if sql_fallback:
            # Sometimes the model gives up rather than attempt the awkward
            # SQL reformulation — the Section 4.3.3 "Spain" failure mode.
            giveup = self._rng("giveup", example.uid, step_index, draw)
            if giveup.random() < self.profile.fallback_giveup_rate:
                return self._emit_answer(example, parsed, temperature,
                                         draw)
        probability = self._step_probability(
            example, step_index, grounding=parsed.num_code_steps,
            cot=False, temperature=temperature, sql_fallback=sql_fallback,
            demo_similarity=self._demo_similarity(example, parsed),
            reflections=parsed.num_reflections)
        roll = self._rng("roll", example.uid, step_index, draw)
        correct = roll.random() < probability
        text, language = self._render_step(
            example, step, step_index, parsed.current_table, parsed.t0,
            correct=correct, sql_fallback=sql_fallback)
        label = {"sql": "SQL", "python": "Python"}.get(language,
                                                       language.capitalize())
        completion_text = f"ReAcTable: {label}: ```{text}```."
        logprob = self._logprob_value(
            correct, self._rng("lp", example.uid, step_index, draw))
        return Completion(completion_text, logprob)

    def _render_step(self, example: TQAExample, step: CodeStep,
                     step_index: int, current: DataFrame, t0: DataFrame,
                     *, correct: bool, sql_fallback: bool) -> tuple[str, str]:
        table_name = current.name or f"T{step_index}"
        if sql_fallback:
            assert isinstance(step, ExtractStep)
            return (self._render_sql_extract(step, table_name,
                                             correct=correct), "sql")
        if correct:
            code = step.render(table_name)
            if step.language == "python":
                quirk = self._rng("quirk", example.uid, step_index)
                if quirk.random() < self.profile.module_quirk_rate:
                    code = corrupt_code_text(
                        code, ErrorMode.MODULE_HALLUCINATION, quirk)
            return code, step.language
        return self._render_corrupted(example, step, step_index, current,
                                      t0, table_name)

    def _render_corrupted(self, example: TQAExample, step: CodeStep,
                          step_index: int, current: DataFrame,
                          t0: DataFrame,
                          table_name: str) -> tuple[str, str]:
        # Corruption content is seeded per (question, step) — NOT per draw —
        # so repeated failures produce the *same* wrong code and therefore
        # the same wrong answer.  This correlation is what keeps majority
        # voting's gains realistic.
        rng = self._rng("corrupt", example.uid, step_index)
        weights = self.profile.error_mode_weights
        modes = list(weights)
        ordering = rng.choices(modes, weights=[weights[m] for m in modes],
                               k=len(modes))
        seen = set()
        for mode in ordering + modes:
            if mode in seen:
                continue
            seen.add(mode)
            if mode is ErrorMode.SYNTAX_ERROR:
                return (corrupt_code_text(step.render(table_name), mode,
                                          rng), step.language)
            if mode is ErrorMode.MODULE_HALLUCINATION:
                if step.language != "python":
                    continue
                # Benign on its own; combine with a wrong constant so the
                # step is still an error.
                damaged = apply_corruption(
                    step, ErrorMode.WRONG_CONSTANT, current=current,
                    original=t0, rng=rng)
                target = damaged if damaged is not None else step
                return (corrupt_code_text(target.render(table_name), mode,
                                          rng), step.language)
            damaged = apply_corruption(step, mode, current=current,
                                       original=t0, rng=rng)
            if damaged is not None:
                return damaged.render(table_name), step.language
        # Every structured mode was inapplicable: break the syntax.
        return (corrupt_code_text(step.render(table_name),
                                  ErrorMode.SYNTAX_ERROR, rng),
                step.language)

    def _render_sql_extract(self, step: ExtractStep, table_name: str, *,
                            correct: bool) -> str:
        """SQL surrogate for a Python regex extraction (SQL-only mode)."""
        offset = "+ 1" if correct else "+ 0"
        source = step.source
        return (
            f"SELECT *, SUBSTR({source}, INSTR({source}, '(') {offset}, "
            f"LENGTH({source}) - INSTR({source}, '(') - 1) "
            f"AS {step.target} FROM {table_name};"
        )

    # --- answers --------------------------------------------------------------------

    def _emit_answer(self, example: TQAExample, parsed: ParsedPrompt,
                     temperature: float, draw: int) -> Completion:
        reading_table = parsed.current_table
        remaining = (len(example.plan.code_steps)
                     - parsed.num_code_steps)
        if remaining > 0:
            # Forced / premature answer: the model runs the remaining steps
            # *in its head* — real reasoning, but at tool-free reliability.
            reading_table = self._mental_execute(
                example, parsed, temperature, draw)
        probability = self._answer_probability(
            example, temperature=temperature, cot=False,
            reflections=parsed.num_reflections)
        roll = self._rng("aroll", example.uid, draw)
        correct = roll.random() < probability
        values = self._derive_answer(example, reading_table)
        if not correct:
            values = self._corrupt_answer(example, values, reading_table)
        text = self._format_answer(example, values, reading_table, draw)
        logprob = self._logprob_value(
            correct, self._rng("alp", example.uid, draw))
        return Completion(text, logprob)

    def _mental_execute(self, example: TQAExample, parsed: ParsedPrompt,
                        temperature: float, draw: int) -> DataFrame:
        """Simulate the remaining plan steps without tools.

        Each step succeeds with a probability penalised by
        ``mental_penalty`` (no executor, no intermediate feedback); failed
        steps corrupt the imagined table exactly like emitted bad code
        would.  This is why capping the iteration limit at 1 scores close
        to the Codex-CoT baseline (Table 7 vs Table 4).
        """
        tables = [parsed.t0.with_name("T0")]
        if parsed.num_code_steps > 0:
            tables.append(parsed.current_table)
        for step_index in range(parsed.num_code_steps,
                                len(example.plan.code_steps)):
            step = example.plan.code_steps[step_index]
            # Steps the available tools cannot express are also harder
            # to simulate mentally (the model is weak at exactly those
            # operations) — this is what makes the SQL-only ablation bite.
            hard_mentally = step.language not in parsed.languages
            probability = self._step_probability(
                example, step_index, grounding=0, cot=True,
                temperature=temperature, sql_fallback=hard_mentally,
                mental=True)
            roll = self._rng("mroll", example.uid, step_index, draw)
            correct = roll.random() < probability
            code, language = self._render_step(
                example, step, step_index, tables[-1], parsed.t0,
                correct=correct, sql_fallback=False)
            try:
                executor = self._internal.get(language)
                outcome = executor.execute(code, tables)
                tables.append(outcome.table.with_name(
                    f"T{len(tables)}"))
            except Exception:
                pass  # imagined step crashed; reason on with what we have
        return tables[-1]

    def _derive_answer(self, example: TQAExample,
                       current: DataFrame) -> list[str]:
        """Read the answer off whatever table is in front of the model.

        If earlier (corrupted) steps produced a wrong table, the honest
        reading of that table is simply wrong — correctness is emergent.
        """
        try:
            return example.plan.answer_step.derive(current)
        except Exception:
            return [""]

    def _corrupt_answer(self, example: TQAExample, values: list[str],
                        current: DataFrame) -> list[str]:
        rng = self._rng("acorrupt", example.uid)
        kind = example.plan.answer_step.kind
        if kind == "boolean":
            flipped = "no" if values and values[0] == "yes" else "yes"
            return [flipped]
        if not values or not values[0]:
            return ["unknown"]
        choice = rng.random()
        first = values[0]
        if choice < 0.45:
            bumped = _bump_number(first, rng)
            if bumped is not None:
                return [bumped] + values[1:]
        if choice < 0.7 and len(values) > 1:
            return values[:-1]  # drop an element from a list answer
        # Substitute a different cell from the visible table.
        alternatives = [
            str(v) for v in _first_column(current)
            if not is_missing(v) and str(v) != first
        ]
        if alternatives:
            return [rng.choice(alternatives)]
        bumped = _bump_number(first, rng)
        return [bumped if bumped is not None else first + "x"]

    def _format_answer(self, example: TQAExample, values: list[str],
                       reading_table: DataFrame, draw: int) -> str:
        answer_step = example.plan.answer_step
        if answer_step.kind == "sentence":
            joined = self._phrase_sentence(example, values, reading_table,
                                           draw)
        else:
            joined = "|".join(values) if values else "unknown"
            wrap = self._rng("verbose", example.uid, draw)
            if wrap.random() < self.profile.verbose_answer_rate:
                joined = _verbose_wrap(example.question, values, wrap)
        return f"ReAcTable: Answer: ```{joined}```."

    def _phrase_sentence(self, example: TQAExample, values: list[str],
                         reading_table: DataFrame, draw: int) -> str:
        """Free-form answers are phrased in the model's own words.

        The facts (template slots) come from the table the model is
        looking at; the phrasing is sampled — so even perfectly correct
        FeTaQA answers score ROUGE < 1 against the gold sentence, as real
        system outputs do.
        """
        rng = self._rng("phrase", example.uid, draw)
        style = rng.random()
        if style < 0.10:
            # Sometimes the model's phrasing matches the reference style.
            return values[0] if values else "unknown"
        try:
            slots = example.plan.answer_step.derive_slots(reading_table)
        except Exception:
            slots = []
        if not values or not values[0]:
            return "unknown"
        if not slots:
            return values[0]
        if style < 0.80:
            # Echo the question's own words around the facts: high word
            # overlap with the reference, different word order.
            echoed = _echo_question(example.question, slots, rng)
            if echoed:
                return echoed
        filler = rng.choice((
            "The answer is {0}, with {1}.",
            "It was {0} with {1}.",
            "According to the table, {0} with {1}.",
            "{0}, with a total of {1}.",
        ))
        padded = slots + [""] * 2
        # When the model mis-derived values (corrupted answer), phrase the
        # corrupted values rather than the table slots.
        if values and slots and values[0] and slots[0] not in values[0]:
            padded = [values[0], padded[1] if len(slots) > 1 else ""]
        try:
            return filler.format(*padded)
        except (IndexError, KeyError):
            return values[0]

    # --- reflection-mode completion ------------------------------------------------

    #: Category-specific diagnosis templates; the tail advice is shared.
    _REFLECTION_TEMPLATES = {
        "vote_minority": (
            "The sampled chains disagreed and the winning answer held "
            "only a minority of the votes.",
            "Most chains diverged early, so the majority answer was "
            "weakly supported.",
        ),
        "iteration_cap": (
            "The chain hit its iteration limit before reaching a "
            "final answer.",
            "Too many intermediate steps were spent without converging "
            "on an answer.",
        ),
        "forced_answer": (
            "An execution error forced a direct answer before the plan "
            "finished.",
            "The generated code failed and the chain had to answer "
            "without its intermediate tables.",
        ),
        "executor_error": (
            "The generated code crashed in the executor.",
            "A code step raised instead of producing an intermediate "
            "table.",
        ),
        "empty_answer": (
            "The chain finished without producing any answer values.",
            "No answer could be read off the final table.",
        ),
    }

    def _complete_reflection(self, parsed: ParsedPrompt,
                             temperature: float, n: int) -> list[Completion]:
        """Write a short verbal reflection about a failed run.

        Deterministic per (seed, question, failure category, draw): the
        reflect engine's re-run depends on this text, so the whole
        reflexion cycle stays reproducible.
        """
        try:
            uid = self.bank.lookup(parsed.question, parsed.t0).uid
        except UnknownQuestionError:
            uid = "oob"
        draw = self._next_draw(temperature)
        # Keyed by the number of reflections already prepended so a second
        # reflection on the same failure reads differently from the first.
        rng = self._rng("reflection", uid, parsed.failure_category,
                        parsed.num_reflections, draw)
        diagnoses = self._REFLECTION_TEMPLATES.get(
            parsed.failure_category,
            ("The previous attempt failed before producing a reliable "
             "answer.",))
        advice = rng.choice((
            "Re-check the column names against the table header and "
            "prefer one simple SQL filter per step.",
            "Take smaller steps: filter first, aggregate second, and "
            "verify the intermediate table before answering.",
            "Ground the final answer in the last intermediate table "
            "instead of recalling values from memory.",
        ))
        text = f"{rng.choice(diagnoses)} {advice}"
        logprob = self._logprob_value(True, rng)
        return [Completion(text, logprob) for _ in range(n)]

    # --- CoT-mode completion -------------------------------------------------------

    def _complete_cot(self, example: TQAExample, parsed: ParsedPrompt,
                      temperature: float, draw: int) -> Completion:
        """One-shot program generation (the Codex-CoT baseline).

        The model samples every step under the CoT penalty (no grounding),
        simulates execution internally through the real executors, and
        states the answer its own program would produce.
        """
        lines = []
        logprobs = []
        tables = [parsed.t0.with_name("T0")]
        for step_index, step in enumerate(example.plan.code_steps):
            sql_fallback = step.language not in parsed.languages
            if sql_fallback and not isinstance(step, ExtractStep):
                break
            probability = self._step_probability(
                example, step_index, grounding=0, cot=True,
                temperature=temperature, sql_fallback=sql_fallback)
            roll = self._rng("cot-roll", example.uid, step_index, draw)
            correct = roll.random() < probability
            current = tables[-1]
            code, language = self._render_step(
                example, step, step_index, current, parsed.t0,
                correct=correct, sql_fallback=sql_fallback)
            label = {"sql": "SQL", "python": "Python"}[language]
            lines.append(f"ReAcTable: {label}: ```{code}```.")
            logprobs.append(self._logprob_value(
                correct, self._rng("cot-lp", example.uid, step_index,
                                   draw)))
            # Internal simulation of what this code yields (blind: the
            # model never sees the real intermediate tables in CoT mode).
            try:
                executor = self._internal.get(language)
                outcome = executor.execute(code, tables)
                tables.append(outcome.table.with_name(f"T{len(tables)}"))
            except Exception:
                pass  # the imagined program crashed; reason on without it
        answer_p = self._answer_probability(
            example, temperature=temperature, cot=True)
        aroll = self._rng("cot-aroll", example.uid, draw)
        values = self._derive_answer(example, tables[-1])
        if aroll.random() >= answer_p:
            values = self._corrupt_answer(example, values, tables[-1])
        lines.append(self._format_answer(example, values, tables[-1],
                                         draw))
        logprob = None
        present = [lp for lp in logprobs if lp is not None]
        if self.profile.provides_logprobs:
            logprob = (sum(present) / len(present)) if present else (
                self._logprob_value(True, aroll))
        return Completion("\n".join(lines), logprob)

    # --- chain-of-table-mode completion ----------------------------------------

    def _complete_chain_of_table(self, example: TQAExample,
                                 parsed: ParsedPrompt, temperature: float,
                                 draw: int) -> Completion:
        """Next typed operator (the chain-of-table strategy).

        Same per-step Bernoulli model as ReAct mode — grounding bonus
        and all — but the emission vocabulary is the operator algebra:
        a step the vocabulary cannot express makes the model answer
        directly, and an incorrect draw damages the *plan step* and
        re-renders it as a well-formed operator computing the wrong
        thing (plus the occasional outright syntax break).
        """
        step_index = parsed.num_code_steps
        code_steps = example.plan.code_steps
        if parsed.force_answer or step_index >= len(code_steps):
            return self._emit_answer(example, parsed, temperature, draw)
        premature_rng = self._rng("ot-premature", example.uid, step_index,
                                  draw)
        premature_p = self.profile.premature_answer_rate * (1 + temperature)
        if premature_rng.random() < premature_p:
            return self._emit_answer(example, parsed, temperature, draw)
        step = code_steps[step_index]
        operator = render_operator(step)
        if operator is None:
            # Whole-table aggregate / conditional count / diff: the
            # operator vocabulary cannot evolve the table further, so
            # read the answer off what has been built.
            return self._emit_answer(example, parsed, temperature, draw)
        probability = self._step_probability(
            example, step_index, grounding=parsed.num_code_steps,
            cot=False, temperature=temperature, sql_fallback=False,
            demo_similarity=self._demo_similarity(example, parsed),
            reflections=parsed.num_reflections)
        roll = self._rng("ot-roll", example.uid, step_index, draw)
        correct = roll.random() < probability
        if not correct:
            operator = self._corrupt_operator(example, step, step_index,
                                              parsed, operator)
        logprob = self._logprob_value(
            correct, self._rng("ot-lp", example.uid, step_index, draw))
        return Completion(f"ReAcTable: Operator: ```{operator}```.",
                          logprob)

    def _corrupt_operator(self, example: TQAExample, step: CodeStep,
                          step_index: int, parsed: ParsedPrompt,
                          operator: str) -> str:
        # Same correlation contract as _render_corrupted: corruption
        # content is seeded per (question, step) — never per draw.
        rng = self._rng("ot-corrupt", example.uid, step_index)
        weights = self.profile.error_mode_weights
        modes = list(weights)
        ordering = rng.choices(modes, weights=[weights[m] for m in modes],
                               k=len(modes))
        seen = set()
        for mode in ordering + modes:
            if mode in seen:
                continue
            seen.add(mode)
            if mode is ErrorMode.SYNTAX_ERROR:
                return break_operator(operator, rng)
            if mode is ErrorMode.MODULE_HALLUCINATION:
                continue   # no import surface in operator text
            damaged = apply_corruption(step, mode,
                                       current=parsed.current_table,
                                       original=parsed.t0, rng=rng)
            if damaged is None:
                continue
            rendered = render_operator(damaged)
            if rendered is not None:
                return rendered
        # Every structured mode was inapplicable: break the syntax.
        return break_operator(operator, rng)

    # --- commented-program-mode completion --------------------------------------

    def _complete_commented(self, example: TQAExample,
                            parsed: ParsedPrompt, temperature: float,
                            draw: int) -> Completion:
        """One-shot commented program (the commented-code strategy).

        Structurally the CoT generator with a plan comment preceding
        each block; the comments partially relieve the CoT penalty
        (``commented_relief``) — planning in words before each block is
        a weaker form of the grounding the chain gets from real
        intermediate tables.
        """
        lines = []
        logprobs = []
        tables = [parsed.t0.with_name("T0")]
        for step_index, step in enumerate(example.plan.code_steps):
            sql_fallback = step.language not in parsed.languages
            if sql_fallback and not isinstance(step, ExtractStep):
                break
            probability = self._step_probability(
                example, step_index, grounding=0, cot=True,
                temperature=temperature, sql_fallback=sql_fallback,
                commented=True)
            roll = self._rng("cc-roll", example.uid, step_index, draw)
            correct = roll.random() < probability
            current = tables[-1]
            code, language = self._render_step(
                example, step, step_index, current, parsed.t0,
                correct=correct, sql_fallback=sql_fallback)
            label = {"sql": "SQL", "python": "Python"}[language]
            lines.append(f"# {step.describe()}")
            lines.append(f"ReAcTable: {label}: ```{code}```.")
            logprobs.append(self._logprob_value(
                correct, self._rng("cc-lp", example.uid, step_index,
                                   draw)))
            # Blind internal simulation, exactly like CoT mode.
            try:
                executor = self._internal.get(language)
                outcome = executor.execute(code, tables)
                tables.append(outcome.table.with_name(f"T{len(tables)}"))
            except Exception:
                pass
        answer_p = self._answer_probability(
            example, temperature=temperature, cot=True, commented=True)
        aroll = self._rng("cc-aroll", example.uid, draw)
        values = self._derive_answer(example, tables[-1])
        if aroll.random() >= answer_p:
            values = self._corrupt_answer(example, values, tables[-1])
        lines.append("# state the final answer")
        lines.append(self._format_answer(example, values, tables[-1],
                                         draw))
        logprob = None
        present = [lp for lp in logprobs if lp is not None]
        if self.profile.provides_logprobs:
            logprob = (sum(present) / len(present)) if present else (
                self._logprob_value(True, aroll))
        return Completion("\n".join(lines), logprob)


def _first_column(frame: DataFrame) -> list:
    if frame.num_columns == 0:
        return []
    return frame.column(frame.columns[0]).tolist()


def _bump_number(text: str, rng: random.Random) -> str | None:
    try:
        number = float(text)
    except ValueError:
        return None
    delta = rng.choice((-2, -1, 1, 2))
    if number == int(number):
        return str(int(number) + delta)
    return str(number + delta)


def _echo_question(question: str, slots: list[str],
                   rng: random.Random) -> str | None:
    """Build an answer sentence by echoing the question clause.

    "who recorded the highest points, and how many was it?" with slots
    ("Jamie (BEL)", "115") becomes "Jamie (BEL) recorded the highest
    points with 115." — the typical high-overlap paraphrase real systems
    produce on FeTaQA.
    """
    clause = question.rstrip("?").split(",")[0].strip()
    words = clause.split()
    while words and words[0].lower() in ("who", "which", "what", "by",
                                         "how", "much", "many", "did",
                                         "is", "was"):
        words.pop(0)
    if not words or not slots:
        return None
    # Real paraphrases keep most content words but not the exact runs:
    # drop a quarter of the clause words to break bigram matches.
    kept = [word for word in words if rng.random() >= 0.25]
    if not kept:
        kept = words[:1]
    tail = f" with {slots[1]}" if len(slots) > 1 and slots[1] else ""
    return f"{slots[0]} {' '.join(kept)}{tail}."


def _verbose_wrap(question: str, values: list[str],
                  rng: random.Random) -> str:
    joined = " and ".join(values) if values else "unknown"
    templates = (
        "the answer to the question is {answer}",
        "based on the table, the answer is {answer}",
        "{answer} is the answer according to the data",
    )
    return rng.choice(templates).format(answer=joined)
