"""Per-request timeout and bounded-retry policy, with degradation.

Chains cannot be preempted mid-executor, so timeouts are enforced at the
LLM boundary: :class:`DeadlineModel` wraps a request's model and raises
:class:`~repro.errors.ServingTimeoutError` once the attempt deadline has
passed — checked both before each completion (cheap refusal) and after it
returns (catches one slow call).  Since every prompt/response round trips
through the model, a timed-out chain stops within one completion of its
deadline.

:class:`RetryPolicy` decides how many attempts a request gets, how each
attempt's seed is derived (deterministically, so retries are reproducible
but explore different model randomness), how long the pool backs off
between attempts (deterministic exponential schedule with seeded jitter —
see :class:`repro.retry.ExponentialBackoff`), and whether an exhausted
request degrades to a forced direct answer instead of failing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ServingTimeoutError, is_retryable
from repro.llm.base import Completion, LanguageModel
from repro.retry import ExponentialBackoff

__all__ = ["RetryPolicy", "DeadlineModel", "classify_failure"]


def classify_failure(exc: Exception | None) -> str:
    """Terminal-error rung of the ladder, per the failure taxonomy.

    Deadline expiry gets its own classification (rather than the generic
    transient bucket): a ``deadline_exceeded`` response means the ladder
    ran out of *time*, not out of attempts, which callers treat
    differently (resubmit with a longer budget, not a retry).  Shared by
    the thread pool and the async server so both classify identically.
    """
    if isinstance(exc, ServingTimeoutError):
        return "deadline_exceeded"
    if exc is not None and is_retryable(exc):
        return "error_transient"
    return "error_permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How the pool treats one request's failures.

    ``timeout`` is wall-clock seconds per *attempt* (``None`` disables
    deadlines); ``max_retries`` is the number of extra attempts after the
    first.  When every attempt fails and ``degrade_on_exhaustion`` is
    set, the worker runs a one-iteration forced-direct-answer chain (the
    paper's Section 3.3 fallback) instead of returning an error.
    """

    timeout: float | None = None
    max_retries: int = 1
    #: Seed offset between attempts; prime so attempt seeds of nearby
    #: request seeds never collide.
    retry_seed_stride: int = 7919
    degrade_on_exhaustion: bool = True
    #: Deterministic between-attempt backoff; ``None`` retries
    #: immediately (the historical behaviour and the test default).
    backoff: ExponentialBackoff | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def attempt_seed(self, base_seed: int, attempt: int) -> int:
        """Deterministic seed for attempt ``attempt`` (0-based)."""
        return base_seed + attempt * self.retry_seed_stride

    def backoff_delay(self, base_seed: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (0-based), jittered
        deterministically from the request's base seed."""
        if self.backoff is None:
            return 0.0
        return self.backoff.delay(attempt, seed=base_seed)

    def deadline(self, clock=time.monotonic) -> float | None:
        """Absolute deadline for an attempt starting now, or ``None``."""
        if self.timeout is None:
            return None
        return clock() + self.timeout


class DeadlineModel(LanguageModel):
    """A model wrapper that enforces an absolute completion deadline."""

    def __init__(self, inner: LanguageModel, deadline: float, *,
                 clock=time.monotonic):
        self.inner = inner
        self.deadline = deadline
        self._clock = clock

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def supports_logprobs(self) -> bool:
        return self.inner.supports_logprobs

    def fork(self, seed: int) -> LanguageModel:
        """Fork the wrapped model; the deadline follows the wrapper."""
        return DeadlineModel(self.inner.fork(seed), self.deadline,
                             clock=self._clock)

    def _check(self, moment: str) -> None:
        if self._clock() >= self.deadline:
            raise ServingTimeoutError(
                f"attempt deadline exceeded ({moment} completion)")

    def complete(self, prompt: str, *, temperature: float = 0.0,
                 n: int = 1) -> list[Completion]:
        self._check("before")
        completions = self.inner.complete(prompt, temperature=temperature,
                                          n=n)
        self._check("after")
        return completions

    def complete_batch(self, requests) -> list[list[Completion]]:
        """Deadline-checked batching that keeps the inner batch endpoint.

        The default ``LanguageModel.complete_batch`` would loop this
        wrapper's ``complete`` per request — correct, but it degrades a
        real batch endpoint (one round-trip per tick) into per-request
        round-trips.  Scheduler-driven chains therefore check once before
        and once after the whole tick instead.
        """
        self._check("before")
        batches = self.inner.complete_batch(requests)
        self._check("after")
        return batches
