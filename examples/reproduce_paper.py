"""Regenerate the paper's headline table (Table 1) at a chosen scale.

The full benchmark suite lives under ``benchmarks/``; this example shows
how to drive the same experiment directly from the public API.

Run with::

    python examples/reproduce_paper.py [scale]
"""

import sys

from repro import (
    ExecutionBasedVoting,
    ReActTableAgent,
    SimpleMajorityVoting,
    SimulatedTQAModel,
    TreeExplorationVoting,
    evaluate_agent,
    generate_dataset,
)
from repro.reporting import ComparisonTable
from repro.reporting.paper import TABLE1_WIKITQ


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    benchmark = generate_dataset("wikitq", size=scale, seed=11)

    def fresh_model():
        return SimulatedTQAModel(benchmark.bank, seed=1)

    measured = {
        "ReAcTable": evaluate_agent(
            ReActTableAgent(fresh_model()), benchmark).accuracy,
        "with s-vote": evaluate_agent(
            SimpleMajorityVoting(fresh_model(), n=5),
            benchmark).accuracy,
        "with t-vote": evaluate_agent(
            TreeExplorationVoting(fresh_model(), n=5),
            benchmark).accuracy,
        "with e-vote": evaluate_agent(
            ExecutionBasedVoting(fresh_model(), n=5),
            benchmark).accuracy,
    }

    table = ComparisonTable(
        f"Table 1: WikiTQ accuracy ({scale} synthetic questions)")
    table.section("published baselines")
    for name, value in TABLE1_WIKITQ["baselines_training"].items():
        table.row(name, value)
    for name, value in TABLE1_WIKITQ["baselines_no_training"].items():
        table.row(name, value)
    table.section("reproduced")
    for name, value in measured.items():
        table.row(name, TABLE1_WIKITQ["reactable"][name], value)
    table.print()


if __name__ == "__main__":
    main()
