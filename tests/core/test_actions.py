"""Tests for LLM action parsing and formatting."""

import pytest

from repro.core import Action, ActionKind, format_action, parse_action
from repro.errors import ActionParseError


class TestParseAction:
    def test_sql_with_prefix(self):
        action = parse_action(
            "ReAcTable: SQL: ```SELECT * FROM T0;```.")
        assert action.kind == ActionKind.SQL
        assert action.payload == "SELECT * FROM T0;"

    def test_sql_without_prefix(self):
        action = parse_action("SQL: ```SELECT 1 FROM T0```")
        assert action.kind == ActionKind.SQL

    def test_python(self):
        action = parse_action(
            "ReAcTable: Python: ```T1['x'] = 1```.")
        assert action.kind == ActionKind.PYTHON

    def test_multiline_code_fence(self):
        completion = ("ReAcTable: Python: ```\n"
                      "def f(x):\n    return x\n"
                      "T1['c'] = T1.apply(lambda r: f(r['a']), axis=1)\n"
                      "```.")
        action = parse_action(completion)
        assert "def f(x):" in action.payload

    def test_fence_with_language_tag(self):
        action = parse_action("SQL: ```sql\nSELECT 1 FROM t\n```")
        assert action.payload == "SELECT 1 FROM t"

    def test_answer(self):
        action = parse_action("ReAcTable: Answer: ```Italy```.")
        assert action.kind == ActionKind.ANSWER
        assert action.payload == "Italy"

    def test_answer_without_fences(self):
        action = parse_action("Answer: Italy")
        assert action.payload == "Italy"

    def test_answer_values_split_on_pipe(self):
        action = parse_action("Answer: ```2001|2002| 2003```")
        assert action.answer_values == ["2001", "2002", "2003"]

    def test_answer_values_on_code_raises(self):
        action = parse_action("SQL: ```SELECT 1 FROM t```")
        with pytest.raises(ActionParseError):
            action.answer_values

    @pytest.mark.parametrize("alias,expected", [
        ("sqlite", ActionKind.SQL),
        ("py", ActionKind.PYTHON),
        ("pandas", ActionKind.PYTHON),
        ("final", ActionKind.ANSWER),
    ])
    def test_kind_aliases(self, alias, expected):
        assert parse_action(f"{alias}: ```x```").kind == expected

    def test_unknown_kind_passes_through(self):
        # Custom executors register their own language tags.
        action = parse_action("Datalog: ```path(a, b).```")
        assert action.kind == "datalog"
        assert action.is_code

    def test_no_action_head_raises(self):
        with pytest.raises(ActionParseError):
            parse_action("I think the answer might be Italy")

    def test_empty_payload_raises(self):
        with pytest.raises(ActionParseError):
            parse_action("SQL: ``` ```")

    def test_trailing_period_stripped(self):
        assert parse_action("Answer: ```42```.").payload == "42"

    def test_is_code_flag(self):
        assert parse_action("SQL: ```x```").is_code
        assert not parse_action("Answer: ```x```").is_code


class TestFormatAction:
    def test_sql(self):
        text = format_action(Action(ActionKind.SQL, "SELECT 1"))
        assert text == "ReAcTable: SQL: ```SELECT 1```."

    def test_answer(self):
        text = format_action(Action(ActionKind.ANSWER, "Italy"))
        assert text == "ReAcTable: Answer: ```Italy```."

    def test_custom_language(self):
        text = format_action(Action("datalog", "p(x)."))
        assert text.startswith("ReAcTable: Datalog:")

    def test_roundtrip(self):
        original = Action(ActionKind.PYTHON, "T1['x'] = 1")
        assert parse_action(format_action(original)) == original
