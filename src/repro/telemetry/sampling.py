"""Tail-based trace sampling: keep what matters, bound what doesn't.

Head sampling (decide at request start) throws away exactly the traces
an operator needs — the rare failures.  Tail sampling decides *after*
the request completes, when the outcome is known:

* every **error** trace (a response outcome outside the SLO-good set),
* every **deadline** trace (``deadline_exceeded``), and
* every **SLO-violating** trace (the caller judged it against a latency
  objective)

is retained in full, unconditionally.  OK traces are sampled at a
seeded-deterministic rate so the retained set stays representative
without wall-clock randomness: the keep/drop decision is a pure
function of ``(trace_id, seed)``, immune to ``PYTHONHASHSEED`` and
reproducible across runs.

Memory is bounded by two independent ring buffers (one for retained
failure traces, one for sampled OK traces), each capped at
``capacity``.  Separate rings mean a flood of sampled OK traffic can
never evict a failure trace — the retention guarantee survives the
cap; only *older* failures roll off once more than ``capacity``
failures have been kept.

Stored trace records carry their spans and events in the exact dict
forms :mod:`repro.telemetry.export` writes, so a sampled trace can be
re-serialised as JSONL or converted with ``to_chrome_trace`` without a
round-trip through disk.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from itertools import count

from repro.telemetry.slo import GOOD_OUTCOMES

__all__ = [
    "TailSampler",
    "RETAIN_ERROR",
    "RETAIN_DEADLINE",
    "RETAIN_SLO",
    "SAMPLED",
    "DROPPED",
]

#: Decision labels (also the ``sampling.decisions`` counter label values).
RETAIN_ERROR = "retain_error"
RETAIN_DEADLINE = "retain_deadline"
RETAIN_SLO = "retain_slo"
SAMPLED = "sampled"
DROPPED = "dropped"

_RETAIN = (RETAIN_ERROR, RETAIN_DEADLINE, RETAIN_SLO)

# Knuth multiplicative-hash constants: spread sequential trace ids over
# [0, 2^32) without Python's seed-dependent hash().
_MIX_A = 2654435761
_MIX_B = 40503
_MIX_C = 0x9E3779B9
_SPACE = 2 ** 32


def _unit(trace_id: int, seed: int) -> float:
    """Deterministic value in [0, 1) from ``(trace_id, seed)``."""
    mixed = (trace_id * _MIX_A + seed * _MIX_B + _MIX_C) % _SPACE
    mixed = (mixed ^ (mixed >> 16)) * _MIX_A % _SPACE
    return (mixed ^ (mixed >> 13)) % _SPACE / _SPACE


def _record_dicts(items) -> list[dict]:
    """Normalise Span/TraceEvent objects (or ready dicts) to dicts."""
    records = []
    for item in items or ():
        records.append(item if isinstance(item, dict) else item.to_dict())
    return records


class TailSampler:
    """Outcome-aware trace retention with dual ring buffers."""

    def __init__(self, *, ok_rate: float = 0.1, capacity: int = 256,
                 seed: int = 0, registry=None):
        if not 0.0 <= ok_rate <= 1.0:
            raise ValueError("ok_rate must be in [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.ok_rate = ok_rate
        self.capacity = capacity
        self.seed = seed
        self._lock = threading.Lock()
        self._seq = count(1).__next__
        # Failure traces and sampled-OK traces never compete for slots.
        self._retained: deque[dict] = deque(maxlen=capacity)
        self._sampled: deque[dict] = deque(maxlen=capacity)
        self._counts = {decision: 0 for decision in
                        (*_RETAIN, SAMPLED, DROPPED)}
        self._decisions = None
        if registry is not None:
            self._decisions = registry.counter(
                "sampling.decisions",
                "tail-sampling decisions by kind")

    # --- decisions ----------------------------------------------------------

    def decide(self, trace_id: int, *, outcome: str,
               slo_violation: bool = False) -> str:
        """The decision alone (pure; no state is touched)."""
        if outcome == "deadline_exceeded":
            return RETAIN_DEADLINE
        if outcome not in GOOD_OUTCOMES:
            return RETAIN_ERROR
        if slo_violation:
            return RETAIN_SLO
        if _unit(trace_id, self.seed) < self.ok_rate:
            return SAMPLED
        return DROPPED

    def record_trace(self, trace_id: int, *, outcome: str,
                     tenant: str = "default", latency: float = 0.0,
                     slo_violation: bool = False, spans=(),
                     events=(), **extra) -> str:
        """Judge one completed trace; keep it if the decision says so.

        ``spans`` and ``events`` accept live ``Span``/``TraceEvent``
        objects or their exported dict forms.  Returns the decision
        label.  Dropped traces cost nothing beyond the counter bump —
        span/event conversion only happens for kept traces.
        """
        decision = self.decide(trace_id, outcome=outcome,
                               slo_violation=slo_violation)
        if self._decisions is not None:
            self._decisions.inc(decision=decision)
        keep = decision != DROPPED
        record = None
        if keep:
            record = {
                "trace_id": trace_id,
                "decision": decision,
                "outcome": outcome,
                "tenant": tenant,
                "latency": round(latency, 6),
                "spans": _record_dicts(spans),
                "events": _record_dicts(events),
            }
            record.update(extra)
        with self._lock:
            self._counts[decision] += 1
            if keep:
                record["seq"] = self._seq()
                ring = (self._retained if decision in _RETAIN
                        else self._sampled)
                ring.append(record)
        return decision

    # --- reads --------------------------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        """Lifetime decision counts (includes rolled-off traces)."""
        with self._lock:
            return dict(self._counts)

    def retained(self) -> list[dict]:
        """Currently held failure traces, oldest first."""
        with self._lock:
            return list(self._retained)

    def sampled_ok(self) -> list[dict]:
        """Currently held sampled-OK traces, oldest first."""
        with self._lock:
            return list(self._sampled)

    def tail(self, limit: int | None = None) -> list[dict]:
        """The most recent kept traces across both rings, by arrival.

        This is the ``/traces`` payload: failure and OK traces
        interleaved in completion order, newest last.
        """
        with self._lock:
            merged = sorted((*self._retained, *self._sampled),
                            key=lambda record: record["seq"])
        if limit is not None and limit >= 0:
            merged = merged[len(merged) - min(limit, len(merged)):]
        return merged

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained) + len(self._sampled)

    # --- export -------------------------------------------------------------

    def to_ndjson(self, limit: int | None = None) -> str:
        """Kept traces as NDJSON, one trace object per line."""
        return "\n".join(json.dumps(record, sort_keys=True, default=str)
                         for record in self.tail(limit))

    @staticmethod
    def as_trace(record: dict) -> dict:
        """One kept record in the loaded-trace shape exporters accept.

        The result plugs straight into
        :func:`repro.telemetry.export.to_chrome_trace` (events gain the
        ``"type": "event"`` marker the JSONL loader would add).
        """
        events = []
        for event in record["events"]:
            tagged = dict(event)
            tagged.setdefault("type", "event")
            events.append(tagged)
        meta = {
            "type": "meta",
            "format": "repro-trace",
            "version": 1,
            "spans": len(record["spans"]),
            "events": len(events),
            "trace_id": record["trace_id"],
            "decision": record["decision"],
            "outcome": record["outcome"],
            "tenant": record["tenant"],
        }
        return {"meta": meta,
                "spans": [dict(span) for span in record["spans"]],
                "events": events}

    def publish(self, registry) -> None:
        """Mirror ring occupancy into gauges for ``/metrics``."""
        held = registry.gauge(
            "sampling.ring_occupancy",
            "kept traces currently held, by ring")
        held.set(float(len(self._retained)), ring="retained")
        held.set(float(len(self._sampled)), ring="sampled")
