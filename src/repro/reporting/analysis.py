"""Error analysis: break an evaluation down by outcome, template, domain.

Section 4.3 of the paper analyses *why* ReAcTable behaves the way it does
(iteration counts, executor contributions).  This module provides the
companion tooling for this reproduction: run an agent over a benchmark
and classify every question's outcome, then slice by question template,
table domain and iteration count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.generators import Benchmark
from repro.evalkit.runner import evaluate_answer

__all__ = ["QuestionOutcome", "AnalysisReport", "analyze_agent"]

OUTCOMES = ("correct", "correct_after_recovery", "wrong_answer",
            "forced_correct", "forced_wrong", "empty")


@dataclass
class QuestionOutcome:
    """Classified result for one question."""

    uid: str
    template_id: str
    domain: str
    iterations: int
    outcome: str              # one of OUTCOMES
    predicted: list[str]
    gold: list[str]


@dataclass
class AnalysisReport:
    """The aggregated analysis."""

    dataset: str
    outcomes: list[QuestionOutcome] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        correct = sum(1 for o in self.outcomes
                      if o.outcome.startswith("correct")
                      or o.outcome == "forced_correct")
        return correct / len(self.outcomes)

    def by_outcome(self) -> dict[str, int]:
        return dict(Counter(o.outcome for o in self.outcomes))

    def by_template(self) -> dict[str, tuple[int, float]]:
        """template_id -> (count, accuracy)."""
        return self._slice(lambda o: o.template_id)

    def by_domain(self) -> dict[str, tuple[int, float]]:
        return self._slice(lambda o: o.domain)

    def by_iterations(self) -> dict[int, tuple[int, float]]:
        return self._slice(lambda o: o.iterations)

    def _slice(self, key) -> dict:
        groups: dict = {}
        for outcome in self.outcomes:
            groups.setdefault(key(outcome), []).append(outcome)
        return {
            group_key: (
                len(items),
                sum(1 for o in items
                    if o.outcome in ("correct",
                                     "correct_after_recovery",
                                     "forced_correct")) / len(items),
            )
            for group_key, items in sorted(groups.items(),
                                           key=lambda kv: str(kv[0]))
        }

    def hardest_templates(self, k: int = 3) -> list[str]:
        """The k templates with the lowest accuracy (min 3 questions)."""
        eligible = [(acc, name) for name, (count, acc)
                    in self.by_template().items() if count >= 3]
        return [name for _, name in sorted(eligible)[:k]]

    def render(self) -> str:
        lines = [f"Error analysis ({self.dataset}, "
                 f"{len(self.outcomes)} questions, "
                 f"accuracy {self.accuracy:.1%})", ""]
        lines.append("outcomes:")
        for outcome, count in sorted(self.by_outcome().items()):
            lines.append(f"  {outcome:<24} {count:>5}")
        lines.append("")
        lines.append(f"{'template':<24} {'n':>5} {'accuracy':>9}")
        for template, (count, acc) in self.by_template().items():
            lines.append(f"{template:<24} {count:>5} {acc:>8.1%}")
        lines.append("")
        lines.append(f"{'domain':<24} {'n':>5} {'accuracy':>9}")
        for domain, (count, acc) in self.by_domain().items():
            lines.append(f"{domain:<24} {count:>5} {acc:>8.1%}")
        return "\n".join(lines)


def _classify(result, correct: bool) -> str:
    recovered = bool(getattr(result, "handling_events", ()))
    forced = getattr(result, "forced", False)
    if not result.answer:
        return "empty"
    if forced:
        return "forced_correct" if correct else "forced_wrong"
    if correct:
        return "correct_after_recovery" if recovered else "correct"
    return "wrong_answer"


def analyze_agent(agent, benchmark: Benchmark, *,
                  limit: int | None = None) -> AnalysisReport:
    """Run ``agent`` over ``benchmark`` and classify every outcome."""
    report = AnalysisReport(dataset=benchmark.name)
    examples = benchmark.examples[:limit] if limit else benchmark.examples
    for example in examples:
        result = agent.run(example.table, example.question)
        correct = evaluate_answer(benchmark.name, result.answer,
                                  example.gold_answer)
        report.outcomes.append(QuestionOutcome(
            uid=example.uid,
            template_id=example.template_id,
            domain=example.metadata.get("domain", "?"),
            iterations=getattr(result, "iterations", 0),
            outcome=_classify(result, correct),
            predicted=result.answer,
            gold=example.gold_answer,
        ))
    return report
