"""Columnar fast paths: lazy dtypes, cached lookups, cache invalidation."""

from repro.table import DataFrame
from repro.table.frame import Column
from repro.table.schema import ColumnType


class TestLazyDtype:
    def test_inference_is_deferred(self):
        column = Column("a", [1, 2, 3])
        assert column._dtype is None
        assert column.dtype is ColumnType.INTEGER
        assert column._dtype is ColumnType.INTEGER  # memoised

    def test_slice_propagates_known_dtype(self):
        column = Column("a", [1, 2, 3])
        _ = column.dtype
        assert column[:2]._dtype is ColumnType.INTEGER

    def test_slice_of_unknown_dtype_stays_lazy(self):
        column = Column("a", [1, 2, 3])
        assert column[:2]._dtype is None

    def test_take_propagates_dtype_without_reinference(self):
        frame = DataFrame({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        _ = frame.column("a").dtype
        taken = frame.take([0, 2])
        assert taken.column("a")._dtype is ColumnType.INTEGER

    def test_select_reuses_column_objects(self):
        frame = DataFrame({"a": [1], "b": [2]})
        assert frame.select(["b"]).column("b") is frame.column("b")


class TestLookupCaches:
    def test_lowered_names_cached(self):
        frame = DataFrame({"Name": ["x"], "Score": [1]})
        lowered = frame.lowered_names()
        assert lowered == {"name": "Name", "score": "Score"}
        assert frame.lowered_names() is lowered

    def test_lowered_names_first_match_wins(self):
        frame = DataFrame({"a": [1], "A": [2]})
        assert frame.lowered_names()["a"] == "a"

    def test_suffix_names(self):
        frame = DataFrame({"t.a": [1], "u.a": [2], "u.b": [3]})
        suffixes = frame.suffix_names()
        assert suffixes["a"] == ["t.a", "u.a"]
        assert suffixes["b"] == ["u.b"]
        assert frame.suffix_names() is suffixes

    def test_setitem_invalidates_lookup_caches(self):
        frame = DataFrame({"A": [1]})
        frame.lowered_names()
        frame.suffix_names()
        frame["t.B"] = [2]
        assert "t.b" in frame.lowered_names()
        assert frame.suffix_names()["b"] == ["t.B"]

    def test_case_insensitive_column_lookup(self):
        frame = DataFrame({"Name": ["x"]})
        assert frame.column("name").name == "Name"


class TestDigestCache:
    def test_digest_cached_until_mutation(self):
        frame = DataFrame({"a": [1, 2]})
        first = frame.content_digest()
        assert frame.content_digest() == first
        frame["a"] = [3, 4]
        assert frame.content_digest() != first

    def test_name_excluded_from_digest(self):
        left = DataFrame({"a": [1]}, name="T0")
        right = DataFrame({"a": [1]}, name="T9")
        assert left.content_digest() == right.content_digest()


class TestToRows:
    def test_zero_copy_tuples(self):
        frame = DataFrame({"a": [1, 2], "b": ["x", "y"]})
        assert frame.to_rows() == [(1, "x"), (2, "y")]

    def test_no_columns(self):
        assert DataFrame().to_rows() == []
