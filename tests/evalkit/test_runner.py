"""Tests for the experiment runner."""

import pytest

from repro.core import ReActTableAgent
from repro.evalkit import EvalReport, evaluate_agent, evaluate_answer
from repro.llm import SimulatedTQAModel


class TestEvaluateAnswer:
    def test_wikitq_routing(self):
        assert evaluate_answer("wikitq", ["3.0"], ["3"])

    def test_tabfact_routing(self):
        assert evaluate_answer("tabfact", ["yes, correct"], ["yes"])

    def test_fetaqa_threshold(self):
        gold = ["Harvey beat Royds by 1463 votes."]
        assert evaluate_answer("fetaqa",
                               ["Harvey beat Royds by 1463 votes."],
                               gold)
        assert not evaluate_answer("fetaqa", ["unrelated text"], gold)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            evaluate_answer("squad", ["x"], ["x"])


class TestEvaluateAgent:
    def test_report_structure(self, wikitq_small):
        model = SimulatedTQAModel(wikitq_small.bank, seed=2)
        report = evaluate_agent(ReActTableAgent(model), wikitq_small)
        assert report.num_questions == len(wikitq_small)
        assert 0.0 <= report.accuracy <= 1.0
        assert sum(report.iteration_histogram.values()) == \
            report.num_questions

    def test_limit(self, wikitq_small):
        model = SimulatedTQAModel(wikitq_small.bank, seed=2)
        report = evaluate_agent(ReActTableAgent(model), wikitq_small,
                                limit=5)
        assert report.num_questions == 5

    def test_iteration_accuracy_bounded(self, wikitq_small):
        model = SimulatedTQAModel(wikitq_small.bank, seed=2)
        report = evaluate_agent(ReActTableAgent(model), wikitq_small)
        for value in report.iteration_accuracy().values():
            assert 0.0 <= value <= 1.0

    def test_fetaqa_rouge_collected(self, fetaqa_small):
        model = SimulatedTQAModel(fetaqa_small.bank, seed=2)
        report = evaluate_agent(ReActTableAgent(model), fetaqa_small)
        rouge = report.rouge()
        assert set(rouge) == {"rouge1", "rouge2", "rougeL"}
        assert all(0.0 <= v <= 1.0 for v in rouge.values())

    def test_empty_report_defaults(self):
        report = EvalReport(dataset="wikitq", num_questions=0,
                            num_correct=0)
        assert report.accuracy == 0.0
        assert report.rouge()["rouge1"] == 0.0
