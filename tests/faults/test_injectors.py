"""Tests for the model and executor fault injectors."""

import pytest

from repro.errors import (
    PythonExecutionError,
    SandboxViolationError,
    SQLExecutionError,
    TransientModelError,
)
from repro.executors.base import CodeExecutor, ExecutionOutcome
from repro.faults import FaultConfig, FaultPlan, FaultyExecutor, FaultyModel
from repro.llm.base import Completion, LanguageModel
from repro.table import DataFrame


class EchoModel(LanguageModel):
    """Returns a fixed batch; records calls for pass-through asserts."""

    name = "echo"
    supports_logprobs = True

    def __init__(self, text="ReAcTable: Answer: ```42```."):
        self.text = text
        self.calls = 0

    def complete(self, prompt, *, temperature=0.0, n=1):
        self.calls += 1
        return [Completion(self.text, -1.0) for _ in range(n)]


class EchoExecutor(CodeExecutor):
    """Returns the last table unchanged; records calls."""

    language = "sql"

    def __init__(self, language="sql"):
        self.language = language
        self.calls = 0

    def execute(self, code, tables):
        self.calls += 1
        return ExecutionOutcome(table=tables[-1],
                                executed_against=tables[-1].name)


def plan_for(kind: str, seed: int = 1) -> FaultPlan:
    """A plan that injects exactly ``kind`` on every call."""
    return FaultPlan(FaultConfig(**{kind: 1.0}), seed=seed)


@pytest.fixture
def frame():
    return DataFrame({"a": [1, 2, 3]}, name="T1")


class TestFaultyModelPassThrough:
    def test_rate_zero_delegates_untouched(self):
        inner = EchoModel()
        model = FaultyModel(inner, FaultPlan(FaultConfig(), seed=1))
        batch = model.complete("p", n=2)
        assert inner.calls == 1
        assert [c.text for c in batch] == [inner.text, inner.text]
        assert [c.logprob for c in batch] == [-1.0, -1.0]

    def test_identity_delegated(self):
        model = FaultyModel(EchoModel(), FaultPlan(FaultConfig()))
        assert model.name == "echo"
        assert model.supports_logprobs is True

    def test_fork_forks_inner_and_plan(self):
        model = FaultyModel(EchoModel(),
                            FaultPlan(FaultConfig.uniform(0.5), seed=1))
        forked = model.fork(9)
        assert isinstance(forked, FaultyModel)
        assert forked.plan.seed == 9
        assert forked.plan.config is model.plan.config


class TestFaultyModelKinds:
    def test_transient_raises_before_backend(self):
        inner = EchoModel()
        seen = []
        model = FaultyModel(inner, plan_for("model_transient"),
                            on_fault=lambda *a: seen.append(a))
        with pytest.raises(TransientModelError):
            model.complete("p")
        assert inner.calls == 0
        assert seen == [("model", "transient", 0)]

    def test_latency_sleeps_then_delegates(self):
        slept = []
        inner = EchoModel()
        plan = FaultPlan(FaultConfig(model_latency=1.0,
                                     latency_seconds=0.7), seed=1)
        model = FaultyModel(inner, plan, sleep=slept.append)
        batch = model.complete("p")
        assert slept == [0.7]
        assert inner.calls == 1
        assert batch[0].text == inner.text

    def test_truncate_halves_each_completion(self):
        inner = EchoModel(text="0123456789")
        model = FaultyModel(inner, plan_for("model_truncate"))
        assert model.complete("p")[0].text == "01234"

    def test_truncate_keeps_at_least_one_char(self):
        inner = EchoModel(text="x")
        model = FaultyModel(inner, plan_for("model_truncate"))
        assert model.complete("p")[0].text == "x"

    def test_garbage_replaces_text_keeps_logprob(self):
        model = FaultyModel(EchoModel(), plan_for("model_garbage"))
        completion = model.complete("p")[0]
        assert "\x00" in completion.text
        assert completion.logprob == -1.0

    def test_wrong_n_returns_short_batch(self):
        model = FaultyModel(EchoModel(), plan_for("model_wrong_n"))
        assert len(model.complete("p", n=3)) == 2
        assert model.complete("p", n=1) == []

    def test_call_counter_advances_schedule(self):
        # ~Half the calls fault under a 0.5 schedule; the counter (plus
        # salt) must advance so verdicts vary call to call.
        inner = EchoModel()
        plan = FaultPlan(FaultConfig(model_transient=0.5), seed=3)
        model = FaultyModel(inner, plan)
        verdicts = []
        for _ in range(40):
            try:
                model.complete("p")
                verdicts.append(False)
            except TransientModelError:
                verdicts.append(True)
        assert any(verdicts) and not all(verdicts)


class TestFaultyExecutor:
    def test_rate_zero_delegates_untouched(self, frame):
        inner = EchoExecutor()
        executor = FaultyExecutor(inner, FaultPlan(FaultConfig()))
        outcome = executor.execute("SELECT 1", [frame])
        assert inner.calls == 1
        assert outcome.table is frame

    def test_site_and_describe_delegate(self):
        executor = FaultyExecutor(EchoExecutor("python"),
                                  FaultPlan(FaultConfig()))
        assert executor.site == "executor:python"
        assert executor.language == "python"
        assert "python" in executor.describe()

    def test_error_kind_matches_language(self, frame):
        sql = FaultyExecutor(EchoExecutor("sql"),
                             plan_for("executor_error"))
        with pytest.raises(SQLExecutionError):
            sql.execute("SELECT 1", [frame])
        py = FaultyExecutor(EchoExecutor("python"),
                            plan_for("executor_error"))
        with pytest.raises(PythonExecutionError):
            py.execute("x = 1", [frame])

    def test_sandbox_violation(self, frame):
        seen = []
        executor = FaultyExecutor(EchoExecutor(),
                                  plan_for("executor_sandbox"),
                                  on_fault=lambda *a: seen.append(a))
        with pytest.raises(SandboxViolationError):
            executor.execute("SELECT 1", [frame])
        assert seen == [("executor:sql", "sandbox", 0)]

    def test_corrupt_drops_last_row_keeps_name(self, frame):
        inner = EchoExecutor()
        executor = FaultyExecutor(inner, plan_for("executor_corrupt"))
        outcome = executor.execute("SELECT 1", [frame])
        assert inner.calls == 1          # the code really ran
        assert outcome.table.num_rows == frame.num_rows - 1
        assert outcome.table.name == frame.name

    def test_corrupt_empty_table_survives(self):
        empty = DataFrame({"a": []}, name="T1")
        executor = FaultyExecutor(EchoExecutor(),
                                  plan_for("executor_corrupt"))
        assert executor.execute("SELECT 1",
                                [empty]).table.num_rows == 0
