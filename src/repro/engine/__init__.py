"""The sans-IO chain engine and its drivers.

One step core — :class:`ChainEngine` — owns the paper's reasoning loop
(prompt assembly, action parsing, the Section 3.3 error-forcing ladder,
iteration caps, transcript bookkeeping) as a pure state machine that
yields typed effects instead of performing I/O.  Everything that used to
re-implement the loop is now a driver over this core:

* :class:`repro.core.ReActTableAgent` — the trivial sync driver
  (:func:`run_chain`);
* the three voting schemes — branch-forking drivers that
  :meth:`ChainEngine.clone` engine state;
* the Codex-CoT baseline — :func:`drive` over :class:`CoTEngine`;
* the chaos harness — injects at the effect boundary
  (:class:`repro.faults.FaultyEffectHandler`);
* :class:`BatchScheduler` — runs many engines concurrently, coalescing
  pending model calls into batched ``complete_batch`` round-trips.

See ``docs/architecture.md`` §10 for the effect-flow diagram.
"""

from repro.engine.chain_of_table import (
    ChainOfTableEngine,
    ChainOfTablePromptBuilder,
)
from repro.engine.commented import CommentedCodeEngine
from repro.engine.core import HARD_ITERATION_CAP, ChainEngine
from repro.engine.cot import CoTEngine
from repro.engine.driver import EffectHandler, drive, run_chain
from repro.engine.effects import Execute, ExecResult, ModelCall, ModelResult
from repro.engine.result import AgentResult
from repro.engine.scheduler import BatchScheduler

__all__ = [
    "HARD_ITERATION_CAP",
    "AgentResult",
    "ChainEngine",
    "ChainOfTableEngine",
    "ChainOfTablePromptBuilder",
    "CommentedCodeEngine",
    "CoTEngine",
    "ModelCall",
    "Execute",
    "ModelResult",
    "ExecResult",
    "EffectHandler",
    "run_chain",
    "drive",
    "BatchScheduler",
]
