"""Chaos recovery: accuracy and termination under injected faults.

Not a paper experiment — this measures the hardened recovery stack
(`repro.faults` injection + taxonomy-filtered retries + circuit breaker +
degradation ladder) by sweeping per-call fault rates over a WikiTQ slice
served through the worker pool.  Shape assertions: **every** request must
terminate with a classified outcome at every rate (no unhandled
exceptions escape the ladder), the zero-rate run must be bit-identical to
the same evaluation without the fault wrappers installed (injection at
rate 0 is a pure pass-through), injected-fault counts must grow with the
rate, and accuracy under the heaviest rate must degrade gracefully —
stay above half the clean accuracy — rather than collapse.
"""

from harness import MODEL_SEED, benchmark_for, scale, serving_spec_for

from repro.faults import FaultConfig, FaultyAgentSpec
from repro.reporting import save_result
from repro.retry import ExponentialBackoff
from repro.serving import (
    OUTCOMES,
    BatchEvaluator,
    BreakerConfig,
    RetryPolicy,
    ServingMetrics,
)

FAULT_RATES = (0.0, 0.05, 0.20)
WORKERS = 4
SIZE = max(20, scale(120) // 2)
#: Near-zero base keeps the ladder's backoff path exercised but fast.
BACKOFF = ExponentialBackoff(base=0.001, max_delay=0.01)
POLICY = RetryPolicy(max_retries=2, backoff=BACKOFF)
BREAKERS = BreakerConfig(failure_threshold=5, cooldown=0.25)


def _evaluate(bench, rate: float):
    """One swept configuration: returns (report, responses, metrics)."""
    spec = serving_spec_for(bench)
    metrics = ServingMetrics()
    if rate > 0.0:
        spec = FaultyAgentSpec(
            spec, FaultConfig.uniform(rate, latency_seconds=0.002),
            model_retries=2, backoff=BACKOFF,
            on_fault=lambda site, kind, index: metrics.record_fault(
                site, kind))
    evaluator = BatchEvaluator(spec, workers=WORKERS, seed=MODEL_SEED,
                               policy=POLICY, metrics=metrics,
                               breakers=BREAKERS)
    report = evaluator.evaluate(bench)
    return report, evaluator.last_responses, metrics


def run_experiment() -> dict:
    bench = benchmark_for("wikitq", size=SIZE)
    rows = []
    for rate in FAULT_RATES:
        report, responses, metrics = _evaluate(bench, rate)
        snapshot = metrics.snapshot()
        rows.append({
            "rate": rate,
            "accuracy": report.accuracy,
            "answered": sum(1 for r in responses
                            if not r.outcome.startswith("error")),
            "unclassified": sum(1 for r in responses
                                if r.outcome not in OUTCOMES),
            "total": len(responses),
            "faults": snapshot["faults_injected"],
            "retries": snapshot["retries"],
            "degraded": snapshot["degraded"],
            "errors": snapshot["errors"],
        })

    # The rate-0 sweep entry wrapped the spec in nothing; re-run with the
    # faulty wrapper at rate 0 to confirm installed-but-idle injection is
    # bit-identical to the bare spec.
    wrapped = FaultyAgentSpec(serving_spec_for(bench),
                              FaultConfig.uniform(0.0), model_retries=2,
                              backoff=BACKOFF)
    wrapped_eval = BatchEvaluator(wrapped, workers=WORKERS,
                                  seed=MODEL_SEED, policy=POLICY,
                                  breakers=BREAKERS)
    wrapped_report = wrapped_eval.evaluate(bench)
    bare = rows[0]
    rows[0]["passthrough_identical"] = (
        abs(wrapped_report.accuracy - bare["accuracy"]) < 1e-12
        and [(r.uid, r.answer, r.iterations, r.forced)
             for r in wrapped_eval.last_responses]
        == [(r.uid, r.answer, r.iterations, r.forced)
            for r in _evaluate(bench, 0.0)[1]])
    return {"rows": rows}


def test_chaos_recovery(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = measured["rows"]

    lines = [
        "Chaos recovery (WikiTQ slice through the worker pool)",
        "=" * 54,
        f"n={rows[0]['total']} workers={WORKERS} "
        f"retries={POLICY.max_retries} model_retries=2",
        f"{'rate':>6} {'accuracy':>9} {'answered':>9} {'faults':>7} "
        f"{'retries':>8} {'degraded':>9} {'errors':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['rate']:>6.2f} {row['accuracy']:>9.3f} "
            f"{row['answered']:>4}/{row['total']:<4} "
            f"{row['faults']:>7} {row['retries']:>8} "
            f"{row['degraded']:>9} {row['errors']:>7}")
    lines.append(f"rate-0 injection pass-through identical: "
                 f"{rows[0]['passthrough_identical']}")
    text = "\n".join(lines)
    print("\n" + text)
    save_result("chaos_recovery", text)

    for row in rows:
        assert row["unclassified"] == 0, \
            f"rate {row['rate']}: every response must carry a " \
            f"classified outcome"
        assert row["answered"] + row["errors"] >= row["total"], \
            f"rate {row['rate']}: every request must terminate"
    assert rows[0]["passthrough_identical"], \
        "rate-0 fault injection must be a pure pass-through"
    assert rows[0]["faults"] == 0
    assert rows[-1]["faults"] > rows[1]["faults"] > 0, \
        "injected-fault counts must grow with the configured rate"
    assert rows[-1]["accuracy"] >= rows[0]["accuracy"] / 2, \
        "accuracy under 20% faults must degrade gracefully, not collapse"
