"""Tests for failure harvesting (``repro.reflect.harvest``)."""

import pytest

from repro.core.actions import Action, ActionKind
from repro.core.prompt import Transcript, TranscriptStep
from repro.core.voting import VotingResult
from repro.engine.core import HARD_ITERATION_CAP
from repro.engine.result import AgentResult
from repro.errors import (
    ExecutionError,
    ServingTimeoutError,
    TransientModelError,
)
from repro.reflect import (
    CATEGORIES,
    FailureReport,
    describe,
    harvest_exception,
    harvest_result,
)
from repro.table import DataFrame


def make_result(*, answer=("42",), forced=False, iterations=2,
                handling_events=(), steps=()):
    table = DataFrame({"a": [1]}, name="T0")
    transcript = Transcript(t0=table, question="q")
    transcript.steps = list(steps)
    return AgentResult(answer=list(answer), transcript=transcript,
                       iterations=iterations, forced=forced,
                       handling_events=list(handling_events))


class TestHarvestException:
    def test_deadline(self):
        report = harvest_exception(
            ServingTimeoutError("attempt deadline exceeded"),
            question="q", attempts=3)
        assert report.category == "deadline"
        assert report.attempts == 3
        assert "deadline" in report.detail

    def test_executor_error(self):
        report = harvest_exception(ExecutionError("bad SQL"))
        assert report.category == "executor_error"
        assert "ExecutionError" in report.detail

    def test_transient_exhausted(self):
        report = harvest_exception(TransientModelError("flaky"))
        assert report.category == "transient_exhausted"

    def test_unknown_exception(self):
        report = harvest_exception(RuntimeError("boom"))
        assert report.category == "exception"
        assert "RuntimeError: boom" in report.detail

    def test_every_category_is_declared(self):
        for exc in (ServingTimeoutError("t"), ExecutionError("e"),
                    TransientModelError("m"), RuntimeError("r")):
            assert harvest_exception(exc).category in CATEGORIES


class TestHarvestResult:
    def test_clean_result_returns_none(self):
        assert harvest_result(make_result()) is None

    def test_none_result_returns_none(self):
        assert harvest_result(None) is None

    def test_forced_answer(self):
        step = TranscriptStep(Action(ActionKind.SQL, "SELECT 1"))
        report = harvest_result(make_result(
            forced=True, handling_events=["gave up after error"],
            steps=[step]))
        assert report.category == "forced_answer"
        assert report.detail == "gave up after error"
        assert "SELECT 1" in report.offending_action
        assert "SELECT 1" in report.transcript_tail

    def test_iteration_cap(self):
        report = harvest_result(make_result(
            forced=True, iterations=HARD_ITERATION_CAP))
        assert report.category == "iteration_cap"

    def test_empty_answer(self):
        report = harvest_result(make_result(answer=("",)))
        assert report.category == "empty_answer"

    def test_minority_vote(self):
        result = VotingResult(answer=["a"], votes={"a": 2, "b": 2, "c": 1},
                              num_chains=5, iterations=2)
        report = harvest_result(result, question="q")
        assert report.category == "vote_minority"
        assert report.votes == (("a", 2), ("b", 2), ("c", 1))
        assert "2 of 5" in report.detail

    def test_majority_vote_is_clean(self):
        result = VotingResult(answer=["a"], votes={"a": 3, "b": 1},
                              num_chains=4, iterations=2)
        assert harvest_result(result) is None

    def test_transcript_tail_keeps_last_steps_only(self):
        steps = [TranscriptStep(Action(ActionKind.SQL, f"SELECT {i}"))
                 for i in range(6)]
        report = harvest_result(make_result(forced=True, steps=steps))
        assert "SELECT 5" in report.transcript_tail
        assert "SELECT 0" not in report.transcript_tail

    def test_detail_is_truncated_and_single_line(self):
        report = harvest_exception(RuntimeError("x\n" * 500))
        assert "\n" not in report.detail
        assert len(report.detail) <= 300


class TestDescribe:
    def test_first_line_carries_the_category_phrase(self):
        report = FailureReport(category="forced_answer", detail="bad step")
        first = describe(report).splitlines()[0]
        assert "previous attempt failed (forced_answer)" in first
        assert "bad step" in first

    def test_votes_and_attempts_render(self):
        report = FailureReport(category="vote_minority",
                               votes=(("", 1), ("x", 2)), attempts=2)
        text = describe(report)
        assert "(empty)=1" in text and "x=2" in text
        assert "Attempts already spent: 2" in text

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_category_roundtrips_through_prompt_parsing(self, category):
        from repro.core.prompt import _FAILURE_CATEGORY

        text = describe(FailureReport(category=category, detail="d"))
        match = _FAILURE_CATEGORY.search(text)
        assert match is not None and match.group(1) == category
