"""Lint the event loop: no blocking calls inside the async serving core.

``src/repro/aio/`` is cooperative — one blocked coroutine stalls every
request on the loop.  The dangerous calls are easy to write and silent
in tests (a 4 ms ``time.sleep`` passes every assertion and destroys tail
latency in production), so this lint greps the package for known
blocking primitives:

* ``time.sleep(`` — blocks the loop thread; use ``asyncio.sleep``;
* ``queue.Queue`` / ``.get(timeout`` / ``threading.Condition`` /
  ``.wait(`` — thread-blocking synchronisation; use asyncio primitives;
* synchronous ``.complete(`` / ``.complete_batch(`` model calls — the
  loop would block for a whole round-trip; await the
  :class:`repro.aio.adapter.AsyncLanguageModel` protocol instead
  (``aio/adapter.py`` itself is exempt: it *is* the sync bridge, and
  it either runs inline against compute-only models or offloads via
  ``asyncio.to_thread``);
* ``requests.`` / ``urllib.request`` / ``socket.create_connection`` —
  blocking network I/O.

Heuristics are line-based and deliberately simple, like the repo's other
lints; ``# lint: allow-blocking`` on the line silences a finding that is
genuinely safe (none are today).

Runs standalone (``python tools/lint_async.py``, exits non-zero on a
violation) and as a tier-1 test via ``tests/test_lint_async.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

AIO = Path(__file__).resolve().parent.parent / "src" / "repro" / "aio"

#: ``(pattern, message)`` — a match anywhere on a code line is a finding.
_BLOCKING_PATTERNS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\btime\.sleep\("),
     "time.sleep() blocks the event loop (use asyncio.sleep)"),
    (re.compile(r"\bqueue\.Queue\b"),
     "queue.Queue blocks consumer threads (use asyncio queues/futures)"),
    (re.compile(r"\bthreading\.(Lock|RLock|Condition|Event|Semaphore)\b"),
     "threading synchronisation blocks the loop (single-threaded loop "
     "code needs none; cross-thread handoff goes through "
     "call_soon_threadsafe)"),
    (re.compile(r"\.get\(\s*timeout\s*="),
     "blocking .get(timeout=...) (await an asyncio primitive instead)"),
    (re.compile(r"\brequests\.(get|post|request|Session)\b"),
     "blocking HTTP I/O (use an async client or asyncio.to_thread)"),
    (re.compile(r"\burllib\.request\b"),
     "blocking HTTP I/O (use an async client or asyncio.to_thread)"),
    (re.compile(r"\bsocket\.create_connection\b"),
     "blocking socket I/O (use asyncio streams)"),
]

#: Synchronous model-boundary calls: ``await``-less ``.complete*(``.
_SYNC_COMPLETE = re.compile(r"\.complete(?:_batch)?\(")

#: Files allowed to touch the sync model protocol (the bridge itself).
_SYNC_BRIDGE_FILES = {"adapter.py"}

_SUPPRESS = "# lint: allow-blocking"


def _sync_model_call(line: str) -> bool:
    """A ``.complete*(`` call not awaited and not an async def/header."""
    if not _SYNC_COMPLETE.search(line):
        return False
    before = line[:_SYNC_COMPLETE.search(line).start()]
    # ``await x.complete(...)`` and ``async def complete...`` are the
    # async protocol; ``self.inner.complete`` only appears in the bridge.
    return "await" not in before and "def " not in before


def scan_file(path: Path) -> list[str]:
    violations = []
    try:
        relpath = path.relative_to(AIO.parent.parent.parent).as_posix()
    except ValueError:          # outside the repo (test fixtures)
        relpath = path.name
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("#") or _SUPPRESS in line:
            continue
        for pattern, message in _BLOCKING_PATTERNS:
            if pattern.search(line):
                violations.append(f"{relpath}:{number}: {message}")
        if path.name not in _SYNC_BRIDGE_FILES and _sync_model_call(line):
            violations.append(
                f"{relpath}:{number}: synchronous model completion call "
                f"on the event loop (await the AsyncLanguageModel "
                f"protocol)")
    return violations


def find_violations(root: Path = AIO) -> list[str]:
    """Blocking-call violations in the async core, one line each."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(scan_file(path))
    return violations


def main() -> int:
    violations = find_violations()
    for line in violations:
        print(f"lint_async: {line}", file=sys.stderr)
    if violations:
        print(f"lint_async: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_async: no blocking calls inside the async serving core")
    return 0


if __name__ == "__main__":
    sys.exit(main())
