"""Tests for the Python sandbox policy (AST validation, step limiter)."""

import pytest

from repro.errors import SandboxViolationError
from repro.executors import StepLimiter, validate_code


class TestValidateCode:
    def test_plain_code_allowed(self):
        validate_code("x = 1 + 2\ny = [i for i in range(3)]")

    def test_function_definitions_allowed(self):
        validate_code("def f(a):\n    return a * 2")

    def test_lambdas_allowed(self):
        validate_code("f = lambda x: x + 1")

    def test_imports_pass_static_check(self):
        # Import policy is enforced at runtime by the executor's
        # __import__ hook, not by the AST pass.
        validate_code("import re")

    def test_star_import_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_code("from math import *")

    @pytest.mark.parametrize("code", [
        "x.__class__",
        "().__class__.__bases__",
        "x.__dict__",
    ])
    def test_dunder_attribute_rejected(self, code):
        with pytest.raises(SandboxViolationError):
            validate_code(code)

    @pytest.mark.parametrize("name", [
        "open", "eval", "exec", "compile", "input", "globals",
        "locals", "vars", "getattr", "setattr", "delattr",
        "breakpoint", "type",
    ])
    def test_forbidden_builtins_rejected(self, name):
        with pytest.raises(SandboxViolationError):
            validate_code(f"{name}('x')")

    def test_global_statement_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_code("def f():\n    global x\n    x = 1")

    def test_syntax_error_wrapped(self):
        with pytest.raises(SandboxViolationError) as exc_info:
            validate_code("def broken(:")
        assert "syntax" in str(exc_info.value).lower()

    def test_returns_ast(self):
        import ast
        assert isinstance(validate_code("x = 1"), ast.Module)


class TestStepLimiter:
    def test_short_code_passes(self):
        def work():
            return sum(range(100))

        with StepLimiter(max_steps=10_000):
            total = work()
        assert total == 4950

    def test_budget_exceeded_raises(self):
        # sys.settrace only traces frames entered *after* it is set, so
        # the runaway loop must live in a fresh call frame.
        def runaway():
            x = 0
            while True:
                x += 1

        with pytest.raises(SandboxViolationError):
            with StepLimiter(max_steps=50):
                runaway()

    def test_previous_trace_restored(self):
        import sys
        before = sys.gettrace()
        with StepLimiter(max_steps=1000):
            pass
        assert sys.gettrace() is before
