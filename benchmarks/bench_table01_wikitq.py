"""Table 1 — WikiTQ accuracy: ReAcTable configurations vs baselines.

Paper shape: ReAcTable with s-vote (68.0%) beats every baseline, including
fine-tuned ones; plain ReAcTable (65.8%) is on par with Dater (65.9%); all
three voting schemes improve on no voting.
"""

from harness import accuracy_suite, benchmark_for

from repro.reporting import ComparisonTable, save_result
from repro.reporting.paper import TABLE1_WIKITQ


def run_experiment() -> dict[str, float | None]:
    return accuracy_suite(benchmark_for("wikitq"))


def test_table01_wikitq(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = ComparisonTable("Table 1: WikiTQ accuracy")
    table.section("approaches requiring training (published)")
    for name, value in TABLE1_WIKITQ["baselines_training"].items():
        table.row(name, value)
    table.section("approaches without training (published)")
    for name, value in TABLE1_WIKITQ["baselines_no_training"].items():
        table.row(name, value)
    table.section("ReAcTable (this reproduction)")
    paper_rows = TABLE1_WIKITQ["reactable"]
    keys = {"ReAcTable": "greedy", "with s-vote": "s-vote",
            "with t-vote": "t-vote", "with e-vote": "e-vote"}
    for label, config in keys.items():
        table.row(label, paper_rows[label], measured[config])
    table.print()
    save_result("table01_wikitq", table.render())

    # Shape assertions (not absolute numbers).
    greedy, svote = measured["greedy"], measured["s-vote"]
    assert svote > greedy, "s-vote must improve on no voting"
    assert greedy > TABLE1_WIKITQ["baselines_training"]["Tapex"], \
        "ReAcTable must beat the weakest fine-tuned baseline"
    assert svote > max(TABLE1_WIKITQ["baselines_no_training"].values()), \
        "s-vote must beat the training-free baselines"
    for config in ("t-vote", "e-vote"):
        assert measured[config] > greedy - 0.05, \
            f"{config} should be at or above the greedy configuration"
