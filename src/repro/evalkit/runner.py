"""Experiment runner: evaluate an agent over a benchmark.

Produces an :class:`EvalReport` with overall accuracy (or ROUGE for
FeTaQA), the per-iteration histogram and accuracy breakdown (Figure 4 /
Table 6), and counts of exception-handling events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.generators import Benchmark
from repro.evalkit.rouge import rouge_suite
from repro.evalkit.tabfact import tabfact_match
from repro.evalkit.wikitq import wikitq_match

__all__ = ["evaluate_answer", "EvalReport", "make_report",
           "record_result", "evaluate_agent"]


def evaluate_answer(dataset: str, predicted: list[str],
                    gold: list[str]) -> bool:
    """Dataset-appropriate binary verdict for one prediction.

    WikiTQ uses the official denotation evaluator; TabFact uses verdict
    string matching; FeTaQA counts a prediction "correct" at ROUGE-L f1 >=
    0.5 (only used for accuracy-style summaries — Table 3 reports the raw
    ROUGE scores via :func:`evaluate_agent`).
    """
    if dataset == "wikitq":
        return wikitq_match(predicted, gold)
    if dataset == "tabfact":
        return tabfact_match(predicted, gold)
    if dataset == "fetaqa":
        if not predicted or not gold:
            return False
        return rouge_suite(predicted[0], gold[0])["rougeL"] >= 0.5
    raise ValueError(f"unknown dataset {dataset!r}")


@dataclass
class EvalReport:
    """Aggregated evaluation results for one (agent, benchmark) pair."""

    dataset: str
    num_questions: int
    num_correct: int
    iteration_histogram: dict[int, int] = field(default_factory=dict)
    iteration_correct: dict[int, int] = field(default_factory=dict)
    rouge_totals: dict[str, float] = field(default_factory=dict)
    handling_events: int = 0
    forced_answers: int = 0

    @property
    def accuracy(self) -> float:
        if self.num_questions == 0:
            return 0.0
        return self.num_correct / self.num_questions

    def iteration_accuracy(self) -> dict[int, float]:
        """Accuracy per iteration-count bucket (the Table 6 breakdown)."""
        return {
            count: self.iteration_correct.get(count, 0) / total
            for count, total in sorted(self.iteration_histogram.items())
            if total
        }

    def rouge(self) -> dict[str, float]:
        """Mean ROUGE-1/2/L F1 over the benchmark (Table 3)."""
        if self.num_questions == 0:
            return {key: 0.0 for key in ("rouge1", "rouge2", "rougeL")}
        return {
            key: value / self.num_questions
            for key, value in self.rouge_totals.items()
        }


def make_report(dataset: str, num_questions: int) -> EvalReport:
    """An empty report ready for :func:`record_result` accumulation."""
    return EvalReport(dataset=dataset, num_questions=num_questions,
                      num_correct=0,
                      rouge_totals={"rouge1": 0.0, "rouge2": 0.0,
                                    "rougeL": 0.0})


def record_result(report: EvalReport, dataset: str, example,
                  result) -> bool:
    """Score one ``result`` against ``example`` and accumulate it.

    ``result`` is anything with ``answer`` (list of strings) and
    optionally ``iterations`` / ``handling_events`` / ``forced`` — agent
    results, voting results, and serving responses all qualify.  The
    bookkeeping counters (histogram, handling events, forced answers,
    ROUGE totals) are recorded *before* the verdict is computed, so a
    scorer error (e.g. a ``ValueError`` on an unknown dataset) cannot
    lose this question's partial counters.  Returns the verdict.
    """
    iterations = getattr(result, "iterations", 0)
    report.iteration_histogram[iterations] = (
        report.iteration_histogram.get(iterations, 0) + 1)
    report.handling_events += len(
        getattr(result, "handling_events", ()) or ())
    if getattr(result, "forced", False):
        report.forced_answers += 1
    if dataset == "fetaqa":
        candidate = result.answer[0] if result.answer else ""
        reference = example.gold_answer[0] if example.gold_answer else ""
        for key, value in rouge_suite(candidate, reference).items():
            report.rouge_totals[key] += value
    correct = evaluate_answer(dataset, result.answer, example.gold_answer)
    if correct:
        report.num_correct += 1
        report.iteration_correct[iterations] = (
            report.iteration_correct.get(iterations, 0) + 1)
    return correct


def evaluate_agent(agent, benchmark: Benchmark, *,
                   limit: int | None = None) -> EvalReport:
    """Run ``agent`` over (a prefix of) ``benchmark`` and score it.

    ``agent`` is anything with ``run(table, question)`` returning an
    object with ``answer`` (list of strings) and ``iterations`` — both the
    plain agents and the voting wrappers qualify.
    """
    examples = benchmark.examples[:limit] if limit else benchmark.examples
    report = make_report(benchmark.name, len(examples))
    for example in examples:
        result = agent.run(example.table, example.question)
        record_result(report, benchmark.name, example, result)
    return report
