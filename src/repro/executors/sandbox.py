"""AST-level validation for generated Python code.

The Python executor runs LLM-generated code.  Even with a simulated model
the executor is a real ``exec`` call, so the sandbox enforces a conservative
policy before execution:

* no dunder attribute access (``x.__class__`` etc.);
* no calls to introspection/IO builtins (``open``, ``eval``, ``exec``,
  ``getattr``, ``globals``...);
* imports restricted to an allow-list (checked at runtime by the executor's
  ``__import__`` hook — the AST pass only rejects ``from x import *``);
* a bounded statement budget at runtime (via ``sys.settrace``) so infinite
  loops cannot hang the agent.
"""

from __future__ import annotations

import ast
import sys

from repro.errors import SandboxViolationError

__all__ = ["validate_code", "StepLimiter", "SAFE_BUILTINS"]

_FORBIDDEN_CALLS = frozenset({
    "open", "eval", "exec", "compile", "input", "globals", "locals",
    "vars", "getattr", "setattr", "delattr", "breakpoint", "exit",
    "quit", "help", "memoryview", "object", "super", "type",
})

_ALLOWED_BUILTIN_NAMES = (
    "abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
    "float", "format", "frozenset", "hash", "int", "isinstance",
    "issubclass", "iter", "len", "list", "map", "max", "min", "next",
    "ord", "chr", "pow", "print", "range", "repr", "reversed", "round",
    "set", "slice", "sorted", "str", "sum", "tuple", "zip",
    "ValueError", "TypeError", "KeyError", "IndexError", "ZeroDivisionError",
    "ArithmeticError", "AttributeError", "Exception", "StopIteration",
    "RuntimeError", "OverflowError",
)


def _build_safe_builtins() -> dict:
    import builtins
    return {name: getattr(builtins, name) for name in _ALLOWED_BUILTIN_NAMES}


#: The builtins namespace handed to generated code (import added at runtime).
SAFE_BUILTINS = _build_safe_builtins()


def validate_code(code: str) -> ast.Module:
    """Parse and validate generated Python; returns the AST on success.

    Raises :class:`SandboxViolationError` (a ``PythonExecutionError``) if
    the code violates the sandbox policy, and plain ``SyntaxError`` is
    wrapped in the same error type so the agent's generic exception path
    handles both.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        raise SandboxViolationError(
            f"syntax error in generated Python: {exc}", code=code) from exc
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr.startswith("__"):
            raise SandboxViolationError(
                f"dunder attribute access forbidden: {node.attr}", code=code)
        if isinstance(node, ast.Name) and node.id in _FORBIDDEN_CALLS:
            raise SandboxViolationError(
                f"use of {node.id!r} is forbidden in the sandbox", code=code)
        if isinstance(node, ast.ImportFrom) and any(
                alias.name == "*" for alias in node.names):
            raise SandboxViolationError(
                "star imports are forbidden in the sandbox", code=code)
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            raise SandboxViolationError(
                "global/nonlocal declarations are forbidden", code=code)
    return tree


class StepLimiter:
    """Context manager bounding the number of traced lines executed.

    Uses ``sys.settrace`` so a generated ``while True`` loop aborts with
    :class:`SandboxViolationError` instead of hanging the benchmark run.
    """

    def __init__(self, max_steps: int = 2_000_000):
        self.max_steps = max_steps
        self._steps = 0
        self._previous = None

    def _trace(self, frame, event, arg):
        if event == "line":
            self._steps += 1
            if self._steps > self.max_steps:
                raise SandboxViolationError(
                    f"step budget of {self.max_steps} lines exceeded")
        return self._trace

    def __enter__(self) -> "StepLimiter":
        self._previous = sys.gettrace()
        sys.settrace(self._trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        sys.settrace(self._previous)
