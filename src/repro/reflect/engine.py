"""The reflect engine: one Reflexion cycle over the sans-IO chain engine.

A cycle has two model-facing phases, both performed through the standard
:class:`~repro.engine.driver.EffectHandler` seam so deadline enforcement,
fault injection and per-span token attribution all apply unchanged:

1. **Reflect** — build a reflection-request prompt from the
   :class:`~repro.reflect.harvest.FailureReport` (plus any prior
   reflections recalled from :class:`~repro.reflect.memory.\
ReflectionMemory`), and perform it as a single ``ModelCall`` inside a
   ``reflection`` span.  The completion text is the verbal reflection; it
   is committed to memory before the re-run.
2. **Re-run** — rebuild the spec's chain engines and drive them with the
   engine's ``prompt_hook`` installed, so every assembled prompt carries
   the reflections block prepended ahead of the few-shot demonstrations.
   Greedy runners re-run one chain; s-vote runners re-run all *n* chains
   and re-tally.  Runners without a chain-engine seam (tree/execution
   voters, which re-sample per step) raise
   :class:`~repro.errors.ReflectionUnsupportedError` — the ladder skips
   the rung.

Everything is keyed off the caller's seed: the spec builds a fresh seeded
runner, the reflection text is a deterministic function of (model seed,
question, failure category, prior-reflection count), and the re-run
consumes the model's draws exactly like a first-class attempt — so a
reflected response is reproducible bit-for-bit.
"""

from __future__ import annotations

from repro.core.prompt import (
    _QUESTION_MARKER,
    _REFLECTION_HEADER,
    _REFLECTION_SUFFIX,
    _TABLE_MARKER,
)
from repro.engine.core import ChainEngine
from repro.engine.driver import EffectHandler, drive, run_chain
from repro.engine.effects import ModelCall
from repro.errors import ExecutionError, ReflectionUnsupportedError
from repro.perf.encode_cache import encode_head_row_cached
from repro.reflect.harvest import FailureReport, describe
from repro.reflect.memory import ReflectionMemory
from repro.table.frame import DataFrame
from repro.telemetry.spans import span

__all__ = ["ReflectEngine", "inject_reflections", "reflection_prompt"]


def inject_reflections(prompt: str, reflections: tuple[str, ...]) -> str:
    """Prepend the reflections block ahead of a fully-built prompt.

    The block lands *before* the few-shot demonstrations, so
    ``parse_prompt``'s last-marker scan still finds the live question and
    counts the ``Reflection k:`` lines as preamble.
    """
    if not reflections:
        return prompt
    lines = [_REFLECTION_HEADER]
    lines.extend(f"Reflection {index}: {text}"
                 for index, text in enumerate(reflections, start=1))
    return "\n".join(lines) + "\n\n" + prompt


def reflection_prompt(table: DataFrame, question: str,
                      report: FailureReport,
                      prior: tuple[str, ...] = (), *,
                      max_prompt_rows: int | None = 50) -> str:
    """The reflection-request prompt: table, question, evidence, ask."""
    parts = [
        _TABLE_MARKER,
        encode_head_row_cached(table, max_rows=max_prompt_rows),
        f'{_QUESTION_MARKER}{question}". Generate SQL or Python code '
        "step-by-step given the question and table to answer the "
        "question correctly.",
        describe(report),
        "Write one short reflection diagnosing the failure and a plan to "
        "answer correctly next time.",
        _REFLECTION_SUFFIX,
    ]
    return inject_reflections("\n".join(parts), prior)


class ReflectEngine:
    """Drive one reflect-and-re-run cycle against a spec's runner."""

    def __init__(self, spec, *, memory: ReflectionMemory | None = None):
        self.spec = spec
        self.memory = memory if memory is not None else ReflectionMemory()

    def run(self, table: DataFrame, question: str, *, seed: int,
            report: FailureReport, deadline: float | None = None,
            index: int = 1):
        """One full cycle; returns the re-run's result.

        ``seed`` seeds the fresh runner (reflection call and re-run
        share its model, so fault plans and deadline checks cover both);
        ``deadline`` is the absolute cutoff on the handler seam;
        ``index`` is the 1-based reflection number within the request,
        recorded on the ``reflect_run`` span.
        """
        runner = self.spec.build(seed)
        supported = (hasattr(runner, "engine_for")
                     or (hasattr(runner, "chain_engines")
                         and hasattr(runner, "tally")))
        if not supported:
            raise ReflectionUnsupportedError(
                f"runner {type(runner).__name__} exposes no chain-engine "
                f"seam to re-run with reflections")
        # Honour the runner's exception envelope: ensemble/CoT-family
        # branches expect non-execution errors contained, not raised.
        handler = EffectHandler(runner.model, runner.registry,
                                deadline=deadline,
                                catch=getattr(runner, "handler_catch",
                                              (ExecutionError,)))
        with span("reflect_run", index=index, category=report.category):
            prior = self.memory.recall(table, question)
            reflection = self._reflect(handler, table, question, report,
                                       prior)
            self.memory.remember(table, question, reflection)
            reflections = prior + (reflection,)

            def hook(prompt: str) -> str:
                return inject_reflections(prompt, reflections)

            return self._rerun(runner, table, question, hook, handler)

    # --- phases -------------------------------------------------------------

    def _reflect(self, handler: EffectHandler, table: DataFrame,
                 question: str, report: FailureReport,
                 prior: tuple[str, ...]) -> str:
        """Generate the verbal reflection through the effect seam."""
        prompt = reflection_prompt(table, question, report, prior)
        call = ModelCall(prompt=prompt, temperature=0.0, n=1, iteration=0)
        with span("reflection", category=report.category):
            reply = handler.model_call(call)
        text = reply.completions[0].text.strip() if reply.completions else ""
        return text or (f"The previous attempt failed "
                        f"({report.category}); take smaller, verified "
                        f"steps this time.")

    @staticmethod
    def _drive(engine, handler: EffectHandler):
        # run_chain assumes the strict alternating chain shape; CoT-family
        # engines (one completion, several execute effects) take the
        # generic pump instead — the same dispatch the agents use.
        if isinstance(engine, ChainEngine):
            return run_chain(engine, handler)
        return drive(engine, handler)

    def _rerun(self, runner, table: DataFrame, question: str, hook,
               handler: EffectHandler):
        """Re-run the chain(s) with the reflections hook installed."""
        if hasattr(runner, "chain_engines"):
            engines = runner.chain_engines(table, question)
            for engine in engines:
                engine.prompt_hook = hook
            method = ("ensemble" if hasattr(runner, "strategies")
                      else "s-vote")
            with span("vote_run", method=method, n=runner.n):
                results = [self._drive(engine, handler)
                           for engine in engines]
            return runner.tally(results)
        engine = runner.engine_for(table, question)
        engine.prompt_hook = hook
        with span("agent_run", trace_id=None) as root:
            if root is not None:
                root.set(question=question[:120])
            return self._drive(engine, handler)
