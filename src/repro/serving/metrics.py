"""Serving metrics: throughput, latency percentiles, cache and queue health.

One :class:`ServingMetrics` instance is shared by a pool's workers (it is
thread-safe) and aggregates everything a deployment dashboard would plot:
questions/sec, p50/p95 latency, cache hit rate, queue depth high-water
mark, timeout/retry counts, and the forced-answer (degradation) rate —
plus the fault-tolerance counters: injected faults by kind, circuit
breaker transitions and rejections, backoff time, and terminal outcome
classifications (see :data:`repro.serving.request.OUTCOMES`).
Snapshots export as plain dicts or JSON.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path

__all__ = ["percentile", "ServingMetrics"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1])."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class ServingMetrics:
    """Thread-safe aggregator over a serving run."""

    def __init__(self, *, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.timeouts = 0
        self.retries = 0
        self.degraded = 0
        self.forced_answers = 0
        self.errors = 0
        self.max_queue_depth = 0
        self.faults_injected = 0
        self.fault_kinds: dict[str, int] = {}
        self.breaker_opened = 0
        self.breaker_closed = 0
        self.breaker_rejections = 0
        self.backoffs = 0
        self.backoff_seconds = 0.0
        self.outcomes: dict[str, int] = {}
        self._latencies: list[float] = []
        self._first_submit: float | None = None
        self._last_complete: float | None = None

    # --- recording (called by the pool and its workers) --------------------

    def record_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
            if self._first_submit is None:
                self._first_submit = self._clock()

    def record_coalesced(self) -> None:
        with self._lock:
            self.submitted += 1
            self.coalesced += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_fault(self, site: str, kind: str) -> None:
        """Account one injected fault (the chaos harness's hook)."""
        with self._lock:
            self.faults_injected += 1
            key = f"{site}:{kind}"
            self.fault_kinds[key] = self.fault_kinds.get(key, 0) + 1

    def record_breaker_transition(self, old_state: str,
                                  new_state: str) -> None:
        """Account one circuit-breaker state change."""
        with self._lock:
            if new_state == "open":
                self.breaker_opened += 1
            elif new_state == "closed" and old_state != "closed":
                self.breaker_closed += 1

    def record_breaker_rejection(self) -> None:
        with self._lock:
            self.breaker_rejections += 1

    def record_backoff(self, seconds: float) -> None:
        """Account one between-attempt backoff sleep."""
        with self._lock:
            self.backoffs += 1
            self.backoff_seconds += seconds

    def record_response(self, response) -> None:
        """Account one completed :class:`TQAResponse`."""
        with self._lock:
            self.completed += 1
            self._latencies.append(response.latency)
            self._last_complete = self._clock()
            if response.degraded:
                self.degraded += 1
            if response.forced:
                self.forced_answers += 1
            if response.error:
                self.errors += 1
            outcome = response.outcome or "unclassified"
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    # --- derived rates ------------------------------------------------------

    @property
    def throughput(self) -> float:
        """Completed responses per second of wall-clock serving time."""
        with self._lock:
            if (self.completed == 0 or self._first_submit is None
                    or self._last_complete is None):
                return 0.0
            elapsed = self._last_complete - self._first_submit
            if elapsed <= 0:
                return 0.0
            return self.completed / elapsed

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def forced_answer_rate(self) -> float:
        return self.forced_answers / self.completed if self.completed else 0.0

    # --- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-ready dict with every counter and derived rate."""
        with self._lock:
            latencies = list(self._latencies)
            counters = {
                "submitted": self.submitted,
                "completed": self.completed,
                "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "timeouts": self.timeouts,
                "retries": self.retries,
                "degraded": self.degraded,
                "forced_answers": self.forced_answers,
                "errors": self.errors,
                "max_queue_depth": self.max_queue_depth,
                "faults_injected": self.faults_injected,
                "fault_kinds": dict(sorted(self.fault_kinds.items())),
                "breaker_opened": self.breaker_opened,
                "breaker_closed": self.breaker_closed,
                "breaker_rejections": self.breaker_rejections,
                "backoffs": self.backoffs,
                "backoff_seconds": round(self.backoff_seconds, 6),
                "outcomes": dict(sorted(self.outcomes.items())),
            }
        return {
            **counters,
            "throughput_qps": round(self.throughput, 4),
            "latency_p50": round(percentile(latencies, 0.50), 6),
            "latency_p95": round(percentile(latencies, 0.95), 6),
            "latency_mean": round(sum(latencies) / len(latencies), 6)
            if latencies else 0.0,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "forced_answer_rate": round(self.forced_answer_rate, 4),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the snapshot as JSON to ``path``."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path
