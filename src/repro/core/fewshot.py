"""Few-shot demonstration selection (the paper's §5.4 future work).

The paper uses *static*, hand-picked demonstrations and names "automatic
selection of few-shot examples" as an open direction.  This module
implements the standard retrieval approach: render every training example
into a Figure-2-style worked demonstration (by executing its gold plan),
then, per test question, select the *k* most similar demonstrations by
token overlap.

Relevant demonstrations measurably help: the simulated model profiles
expose a ``demo_affinity`` parameter (0 for the stock paper profiles)
that adds a similarity-scaled bonus to the step logit — mirroring the
established empirical finding that in-context examples matching the task
format improve accuracy.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from repro.core.actions import Action, ActionKind, format_action
from repro.core.prompt import _QUESTION_MARKER, _TABLE_MARKER
from repro.datasets.spec import TQAExample
from repro.executors.registry import ExecutorRegistry
from repro.perf.encode_cache import encode_head_row_cached

__all__ = [
    "question_similarity",
    "render_demonstration",
    "FewShotSelector",
]

_WORD_RE = re.compile(r"[a-z0-9]+")
_STOPWORDS = frozenset({
    "the", "a", "an", "of", "in", "on", "at", "is", "are", "was",
    "were", "do", "does", "did", "to", "and", "or", "for", "by",
    "with", "from", "which", "what", "who", "how", "many", "much",
})


def _content_words(text: str) -> set[str]:
    return {
        word for word in _WORD_RE.findall(text.lower())
        if word not in _STOPWORDS
    }


def question_similarity(left: str, right: str) -> float:
    """Jaccard similarity over content words, in [0, 1]."""
    a, b = _content_words(left), _content_words(right)
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def render_demonstration(example: TQAExample, *,
                         registry: ExecutorRegistry | None = None,
                         max_rows: int | None = 12) -> str:
    """Render one training example as a worked Figure-2 transcript.

    Executes the gold plan through the real executors so the rendered
    intermediate tables are genuine.
    """
    trace = example.plan.execute(example.table, registry)
    lines = [
        _TABLE_MARKER,
        encode_head_row_cached(trace.tables[0], max_rows=max_rows),
        f'{_QUESTION_MARKER}{example.question}". '
        "Generate SQL or Python code step-by-step given the question "
        "and table to answer the question correctly.",
    ]
    for index, (step, code) in enumerate(
            zip(example.plan.code_steps, trace.code)):
        kind = (ActionKind.SQL if step.language == "sql"
                else ActionKind.PYTHON)
        lines.append(format_action(Action(kind, code)))
        lines.append(f"Intermediate table (T{index + 1}):")
        lines.append(encode_head_row_cached(trace.tables[index + 1],
                                            max_rows=max_rows))
    answer = "|".join(trace.answer)
    lines.append(format_action(Action(ActionKind.ANSWER, answer)))
    return "\n".join(lines)


class FewShotSelector:
    """Select the k most similar training demonstrations per question."""

    def __init__(self, pool: Sequence[TQAExample], *, k: int = 2,
                 registry: ExecutorRegistry | None = None,
                 max_rows: int | None = 12):
        if k < 0:
            raise ValueError("k must be non-negative")
        self.pool = list(pool)
        self.k = k
        self._rendered: dict[str, str] = {}
        self._registry = registry
        self._max_rows = max_rows

    def __len__(self) -> int:
        return len(self.pool)

    def select(self, question: str,
               k: int | None = None) -> list[TQAExample]:
        """The k pool examples most similar to ``question``."""
        k = self.k if k is None else k
        scored = sorted(
            self.pool,
            key=lambda example: question_similarity(question,
                                                    example.question),
            reverse=True,
        )
        return scored[:k]

    def _demo_text(self, example: TQAExample) -> str:
        if example.uid not in self._rendered:
            self._rendered[example.uid] = render_demonstration(
                example, registry=self._registry,
                max_rows=self._max_rows)
        return self._rendered[example.uid]

    def few_shot_text(self, question: str, k: int | None = None) -> str:
        """The concatenated demonstration block for one question."""
        return "\n\n".join(
            self._demo_text(example)
            for example in self.select(question, k))
