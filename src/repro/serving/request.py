"""Serving requests, responses, and the bounded request queue.

A :class:`TQARequest` is one (table, question) unit of work with a
per-request seed — the serving layer's determinism contract is that the
response depends only on the request content, the seed, and the agent
configuration, never on which worker answers it or in what order.

:class:`RequestQueue` is the thread-safe bounded FIFO between producers
(:meth:`WorkerPool.submit <repro.serving.pool.WorkerPool.submit>`) and the
worker threads.  :class:`PendingResponse` is the hand-rolled future a
submit returns; it supports listener fan-out so duplicate in-flight
requests can be coalesced onto one computation.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import QueueClosedError
from repro.table.frame import DataFrame

__all__ = ["TQARequest", "TQAResponse", "PendingResponse", "RequestQueue",
           "OUTCOMES"]

#: The degradation ladder's terminal classifications, in ladder order.
#: Every response carries exactly one: ``ok`` (first attempt succeeded),
#: ``retried`` (a re-seeded attempt succeeded), ``reflected`` (the
#: reflexion rung improved on what the attempts produced — see
#: :class:`repro.serving.policy.ReflectionRung`), ``degraded`` (all
#: attempts failed; the answer is the forced-direct fallback),
#: ``deadline_exceeded`` (every rung, including degradation, was cut off
#: by the request deadline), ``error_transient`` / ``error_permanent``
#: (even the fallback failed; classification per the failure taxonomy),
#: ``rejected`` (admission control shed the request before any work —
#: the async server's backpressure answer), plus ``cached`` for answers
#: served from the :class:`~repro.serving.cache.AnswerCache`.
OUTCOMES = ("ok", "retried", "reflected", "degraded", "deadline_exceeded",
            "error_transient", "error_permanent", "rejected", "cached")


@dataclass(frozen=True)
class TQARequest:
    """One unit of serving work: answer ``question`` over ``table``.

    ``seed`` selects the model randomness for this request; two requests
    with equal content and equal seeds must produce equal responses.
    ``tenant`` names the submitting party for the async server's
    weighted-fair queueing; it never enters the cache fingerprint (the
    answer does not depend on who asked).
    """

    table: DataFrame
    question: str
    seed: int = 0
    uid: str = ""
    tenant: str = "default"


@dataclass
class TQAResponse:
    """The serving layer's answer to one :class:`TQARequest`.

    Duck-compatible with :class:`repro.core.agent.AgentResult` where the
    evaluation kit is concerned (``answer`` / ``iterations`` / ``forced``
    / ``handling_events``), plus serving metadata.
    """

    uid: str
    answer: list[str]
    iterations: int = 0
    forced: bool = False
    handling_events: list[str] = field(default_factory=list)
    #: Answer came straight from the :class:`AnswerCache`.
    cached: bool = False
    #: Request was merged onto an identical in-flight computation.
    coalesced: bool = False
    #: All attempts failed; the answer is the degraded forced-direct one.
    degraded: bool = False
    #: Attempts actually run (1 = first try succeeded; 0 = cache hit).
    attempts: int = 1
    #: Reflexion cycles spent by the reflect rung (0 when disabled).
    reflections: int = 0
    #: Wall-clock seconds from dispatch (or submit, for coalesced
    #: requests) to completion.
    latency: float = 0.0
    #: Description of the last attempt failure, if any.
    error: str = ""
    #: Terminal classification on the degradation ladder (one of
    #: :data:`OUTCOMES`; ``""`` only for hand-built responses).
    outcome: str = ""

    @property
    def answer_text(self) -> str:
        return "|".join(self.answer)

    def replica(self, uid: str, *, coalesced: bool = False,
                latency: float = 0.0) -> "TQAResponse":
        """A copy of this response re-addressed to another request."""
        return TQAResponse(
            uid=uid, answer=list(self.answer),
            iterations=self.iterations, forced=self.forced,
            handling_events=list(self.handling_events),
            cached=self.cached or coalesced, coalesced=coalesced,
            degraded=self.degraded, attempts=0 if coalesced
            else self.attempts,
            reflections=0 if coalesced else self.reflections,
            latency=latency, error=self.error,
            outcome=self.outcome)


class PendingResponse:
    """A minimal future: set once by a worker, awaited by the submitter.

    ``add_listener`` subscribes another pending response to be resolved
    with a re-addressed copy when this one completes — the mechanism
    behind in-flight request coalescing.
    """

    def __init__(self):
        self._event = threading.Event()
        self._response: TQAResponse | None = None
        self._lock = threading.Lock()
        self._listeners: list[tuple["PendingResponse", str]] = []

    def set(self, response: TQAResponse) -> None:
        """Resolve with ``response`` and fan out to listeners."""
        with self._lock:
            self._response = response
            listeners = list(self._listeners)
            self._listeners.clear()
        self._event.set()
        for listener, uid in listeners:
            listener.set(response.replica(uid, coalesced=True))

    def add_listener(self, listener: "PendingResponse", uid: str) -> None:
        """Resolve ``listener`` (re-addressed to ``uid``) when this does."""
        with self._lock:
            if self._response is None:
                self._listeners.append((listener, uid))
                return
            response = self._response
        listener.set(response.replica(uid, coalesced=True))

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> TQAResponse:
        """Block until resolved; raises ``TimeoutError`` on timeout."""
        if not self._event.wait(timeout):
            raise TimeoutError("response not ready")
        assert self._response is not None
        return self._response


class RequestQueue:
    """A thread-safe bounded FIFO with close semantics.

    ``put`` blocks while the queue is full; ``get`` blocks while it is
    empty.  After :meth:`close`, ``put`` raises immediately and ``get``
    raises once the backlog drains — the worker-shutdown signal.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._high_water = 0

    @property
    def depth(self) -> int:
        """Current number of queued items."""
        with self._lock:
            return len(self._items)

    @property
    def high_water(self) -> int:
        """Largest depth ever observed."""
        with self._lock:
            return self._high_water

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item, timeout: float | None = None) -> None:
        with self._not_full:
            if self._closed:
                raise QueueClosedError("queue is closed")
            while len(self._items) >= self.capacity:
                if not self._not_full.wait(timeout):
                    raise TimeoutError("queue full")
                if self._closed:
                    raise QueueClosedError("queue is closed")
            self._items.append(item)
            self._high_water = max(self._high_water, len(self._items))
            self._not_empty.notify()

    def get(self, timeout: float | None = None):
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosedError("queue is closed")
                if not self._not_empty.wait(timeout):
                    raise TimeoutError("queue empty")
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Refuse new items and wake every blocked producer/consumer."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
