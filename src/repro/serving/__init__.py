"""Concurrent TQA serving: queue → worker pool → cache → batched eval.

This package turns the single-question agent into a servable system:
bounded request queueing (:mod:`~repro.serving.request`), a pool of
concurrent per-request agents (:mod:`~repro.serving.pool`), a
content-fingerprinted LRU/TTL answer cache (:mod:`~repro.serving.cache`),
per-request timeout/retry with graceful degradation and deterministic
backoff (:mod:`~repro.serving.policy`), a per-backend circuit breaker
(:mod:`~repro.serving.breaker`), serving metrics
(:mod:`~repro.serving.metrics`), and a batched evaluation façade
(:mod:`~repro.serving.batch`) that reruns any benchmark through the pool.

Every request terminates with a classified outcome on the degradation
ladder (see :data:`~repro.serving.request.OUTCOMES`); the chaos harness
(:mod:`repro.faults`) injects deterministic faults against each of these
boundaries to prove it.
"""

from repro.serving.batch import BatchEvaluator
from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.serving.cache import AnswerCache, CachedAnswer, request_fingerprint
from repro.serving.metrics import ServingMetrics, percentile
from repro.serving.policy import DeadlineModel, RetryPolicy
from repro.serving.pool import WorkerPool
from repro.serving.request import (
    OUTCOMES,
    PendingResponse,
    RequestQueue,
    TQARequest,
    TQAResponse,
)
from repro.serving.spec import AgentSpec

__all__ = [
    "TQARequest",
    "TQAResponse",
    "OUTCOMES",
    "PendingResponse",
    "RequestQueue",
    "AnswerCache",
    "CachedAnswer",
    "request_fingerprint",
    "RetryPolicy",
    "DeadlineModel",
    "BreakerConfig",
    "CircuitBreaker",
    "ServingMetrics",
    "percentile",
    "AgentSpec",
    "WorkerPool",
    "BatchEvaluator",
]
